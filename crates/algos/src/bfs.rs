//! BFS levels via the min-level algebra.
//!
//! Each round relaxes every edge (`level[t] ← min(level[t],
//! level[s] + 1)`), so the run converges after `eccentricity(source)`
//! rounds. This is the SpMV-style (topology-driven) BFS — not
//! work-optimal against a frontier queue, but it exercises the identical
//! PCPM pipeline and inherits its memory behavior, which is the point of
//! the programming-model generalisation.

use crate::propagate::{propagation_engine, run_to_fixpoint};
use pcpm_core::algebra::MinLevel;
use pcpm_core::backend::BackendKind;
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::Csr;

/// Level of unreachable nodes in the result.
pub const UNREACHED: u32 = u32::MAX;

/// Computes BFS hop counts from `source` along edge direction.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_algos::bfs_levels;
/// use pcpm_core::PcpmConfig;
///
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// let levels = bfs_levels(&g, 0, &PcpmConfig::default()).unwrap();
/// assert_eq!(&levels[..3], &[0, 1, 1]);
/// assert_eq!(levels[3], pcpm_algos::bfs::UNREACHED);
/// ```
pub fn bfs_levels(graph: &Csr, source: u32, cfg: &PcpmConfig) -> Result<Vec<u32>, PcpmError> {
    bfs_levels_on(graph, source, cfg, BackendKind::Pcpm)
}

/// As [`bfs_levels`], through any backend dataplane.
pub fn bfs_levels_on(
    graph: &Csr,
    source: u32,
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<Vec<u32>, PcpmError> {
    if source >= graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: source as usize,
        });
    }
    let mut engine = propagation_engine::<MinLevel>(graph, cfg, None, backend)?;
    bfs_levels_with_engine(graph, source, &mut engine)
}

/// As [`bfs_levels`], but on a caller-supplied min-level engine already
/// prepared over `graph` (e.g. rehydrated from a snapshot), so a serving
/// layer can answer many BFS queries without re-preparing.
pub fn bfs_levels_with_engine(
    graph: &Csr,
    source: u32,
    engine: &mut pcpm_core::Engine<MinLevel>,
) -> Result<Vec<u32>, PcpmError> {
    if source >= graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: source as usize,
        });
    }
    if engine.num_src() != graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: engine.num_src() as usize,
        });
    }
    let mut init = vec![UNREACHED; graph.num_nodes() as usize];
    init[source as usize] = 0;
    let r = run_to_fixpoint(engine, init, graph.num_nodes().max(1) as usize)?;
    debug_assert!(r.converged);
    Ok(r.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::rmat;
    use pcpm_graph::gen::RmatConfig;
    use std::collections::VecDeque;

    fn oracle(graph: &Csr, source: u32) -> Vec<u32> {
        let mut level = vec![UNREACHED; graph.num_nodes() as usize];
        level[source as usize] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for &t in graph.neighbors(v) {
                if level[t as usize] == UNREACHED {
                    level[t as usize] = level[v as usize] + 1;
                    q.push_back(t);
                }
            }
        }
        level
    }

    #[test]
    fn matches_queue_bfs_on_random_graphs() {
        let g = rmat(&RmatConfig::graph500(9, 8, 44)).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(256);
        for source in [0u32, 17, 300] {
            assert_eq!(bfs_levels(&g, source, &cfg).unwrap(), oracle(&g, source));
        }
    }

    #[test]
    fn respects_edge_direction() {
        let g = Csr::from_edges(3, &[(1, 0), (1, 2)]).unwrap();
        let levels = bfs_levels(&g, 0, &PcpmConfig::default()).unwrap();
        assert_eq!(levels, vec![0, UNREACHED, UNREACHED]);
    }

    #[test]
    fn chain_levels_are_distances() {
        let edges: Vec<_> = (0..99).map(|v| (v, v + 1)).collect();
        let g = Csr::from_edges(100, &edges).unwrap();
        let levels = bfs_levels(&g, 0, &PcpmConfig::default().with_partition_bytes(64)).unwrap();
        for (v, &l) in levels.iter().enumerate() {
            assert_eq!(l as usize, v);
        }
    }

    #[test]
    fn out_of_range_source_rejected() {
        let g = Csr::from_edges(3, &[(0, 1)]).unwrap();
        assert!(bfs_levels(&g, 9, &PcpmConfig::default()).is_err());
    }
}
