//! Connected components via partition-centric min-label propagation.

use crate::propagate::{propagation_engine, run_to_fixpoint};
use pcpm_core::algebra::MinLabel;
use pcpm_core::backend::BackendKind;
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::Csr;

/// Computes (weakly) connected components: each node receives the
/// smallest node ID in its component.
///
/// Direction is ignored — the propagation runs over the undirected
/// closure, so the result matches union-find on the edge set.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_algos::connected_components;
/// use pcpm_core::PcpmConfig;
///
/// // Two components: {0, 1, 2} and {3, 4}.
/// let g = Csr::from_edges(5, &[(0, 1), (2, 1), (4, 3)]).unwrap();
/// let labels = connected_components(&g, &PcpmConfig::default()).unwrap();
/// assert_eq!(labels, vec![0, 0, 0, 3, 3]);
/// ```
pub fn connected_components(graph: &Csr, cfg: &PcpmConfig) -> Result<Vec<u32>, PcpmError> {
    connected_components_on(graph, cfg, BackendKind::Pcpm)
}

/// As [`connected_components`], through any backend dataplane.
pub fn connected_components_on(
    graph: &Csr,
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<Vec<u32>, PcpmError> {
    let undirected = graph.symmetrize();
    let mut engine = propagation_engine::<MinLabel>(&undirected, cfg, None, backend)?;
    let init: Vec<u32> = (0..graph.num_nodes()).collect();
    // Min-label over an undirected graph converges within the largest
    // component's diameter, bounded by n rounds.
    let r = run_to_fixpoint(&mut engine, init, graph.num_nodes().max(1) as usize)?;
    debug_assert!(r.converged);
    Ok(r.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::erdos_renyi;

    /// Union-find oracle.
    fn oracle(graph: &Csr) -> Vec<u32> {
        let n = graph.num_nodes() as usize;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut root = v;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = v;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for (s, t) in graph.edges() {
            let (rs, rt) = (find(&mut parent, s), find(&mut parent, t));
            if rs != rt {
                parent[rs.max(rt) as usize] = rs.min(rt);
            }
        }
        (0..n as u32).map(|v| find(&mut parent, v)).collect()
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        for seed in 0..5 {
            // Sparse enough to leave several components.
            let g = erdos_renyi(400, 260, seed).unwrap();
            let cfg = PcpmConfig::default().with_partition_bytes(128);
            let got = connected_components(&g, &cfg).unwrap();
            assert_eq!(got, oracle(&g), "seed {seed}");
        }
    }

    #[test]
    fn isolated_nodes_are_their_own_component() {
        let g = Csr::from_edges(4, &[(1, 2)]).unwrap();
        let labels = connected_components(&g, &PcpmConfig::default()).unwrap();
        assert_eq!(labels, vec![0, 1, 1, 3]);
    }

    #[test]
    fn direction_is_ignored() {
        // Only a back-edge connects 2 to the rest.
        let g = Csr::from_edges(3, &[(2, 0), (0, 1)]).unwrap();
        let labels = connected_components(&g, &PcpmConfig::default()).unwrap();
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(connected_components(&g, &PcpmConfig::default())
            .unwrap()
            .is_empty());
    }
}
