//! HITS (hubs and authorities) on two PCPM engines.
//!
//! `a ← normalize(Aᵀh)`, `h ← normalize(A·a)`. The authority update is
//! the engine's native direction; the hub update runs a second engine
//! built on the transpose. Both reuse their layouts across all
//! iterations, amortizing pre-processing exactly like PageRank does.

use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::Csr;

/// Result of a HITS run.
#[derive(Clone, Debug)]
pub struct HitsResult {
    /// Authority score per node (L2-normalized).
    pub authorities: Vec<f32>,
    /// Hub score per node (L2-normalized).
    pub hubs: Vec<f32>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs HITS for `iterations` rounds (or until the L1 change of the
/// authority vector drops below `tolerance`, when given).
pub fn hits(
    graph: &Csr,
    cfg: &PcpmConfig,
    iterations: usize,
    tolerance: Option<f64>,
) -> Result<HitsResult, PcpmError> {
    hits_on(graph, cfg, iterations, tolerance, BackendKind::Pcpm)
}

/// As [`hits`], through any backend dataplane (both directions run the
/// same kind).
pub fn hits_on(
    graph: &Csr,
    cfg: &PcpmConfig,
    iterations: usize,
    tolerance: Option<f64>,
    backend: BackendKind,
) -> Result<HitsResult, PcpmError> {
    cfg.validate()?;
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Ok(HitsResult {
            authorities: vec![],
            hubs: vec![],
            iterations: 0,
        });
    }
    let transpose = graph.transpose();
    let mut fwd = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .backend(backend)
        .build()?; // Aᵀ·x
                   // The transpose engine shares fwd's pool (built and stepped inside
                   // fwd.run below), so a thread-pinned run owns exactly one pool.
    let mut bwd_cfg = *cfg;
    bwd_cfg.threads = None;
    let norm = |v: &mut [f32]| {
        let s: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        let s = (s.sqrt() as f32).max(f32::MIN_POSITIVE);
        v.iter_mut().for_each(|x| *x /= s);
    };
    let mut hubs = vec![1.0f32 / (n as f32).sqrt(); n];
    let mut auth = vec![0.0f32; n];
    let mut iters = 0;
    let mut prev_auth = auth.clone();
    fwd.run(|fwd| -> Result<(), PcpmError> {
        let mut bwd = Engine::<PlusF32>::builder(&transpose)
            .config(bwd_cfg)
            .backend(backend)
            .build()?; // A·x
        while iters < iterations {
            fwd.step(&hubs, &mut auth)?;
            norm(&mut auth);
            bwd.step(&auth, &mut hubs)?;
            norm(&mut hubs);
            iters += 1;
            if let Some(tol) = tolerance {
                let delta: f64 = auth
                    .iter()
                    .zip(&prev_auth)
                    .map(|(&a, &b)| f64::from((a - b).abs()))
                    .sum();
                if delta < tol {
                    break;
                }
                prev_auth.copy_from_slice(&auth);
            }
        }
        Ok(())
    })?;
    Ok(HitsResult {
        authorities: auth,
        hubs,
        iterations: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::rmat;
    use pcpm_graph::gen::RmatConfig;

    fn oracle(graph: &Csr, iterations: usize) -> (Vec<f64>, Vec<f64>) {
        let n = graph.num_nodes() as usize;
        let mut hubs = vec![1.0 / (n as f64).sqrt(); n];
        let mut auth = vec![0.0f64; n];
        let norm = |v: &mut [f64]| {
            let s = v
                .iter()
                .map(|&x| x * x)
                .sum::<f64>()
                .sqrt()
                .max(f64::MIN_POSITIVE);
            v.iter_mut().for_each(|x| *x /= s);
        };
        for _ in 0..iterations {
            auth.iter_mut().for_each(|x| *x = 0.0);
            for (s, t) in graph.edges() {
                auth[t as usize] += hubs[s as usize];
            }
            norm(&mut auth);
            let mut h = vec![0.0f64; n];
            for (s, t) in graph.edges() {
                h[s as usize] += auth[t as usize];
            }
            hubs = h;
            norm(&mut hubs);
        }
        (auth, hubs)
    }

    #[test]
    fn matches_serial_oracle() {
        let g = rmat(&RmatConfig::graph500(8, 8, 99)).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(256);
        let r = hits(&g, &cfg, 15, None).unwrap();
        let (auth, hubs) = oracle(&g, 15);
        for (v, (&a, &b)) in r.authorities.iter().zip(&auth).enumerate() {
            assert!((f64::from(a) - b).abs() < 1e-3, "auth {v}: {a} vs {b}");
        }
        for (v, (&a, &b)) in r.hubs.iter().zip(&hubs).enumerate() {
            assert!((f64::from(a) - b).abs() < 1e-3, "hub {v}: {a} vs {b}");
        }
    }

    #[test]
    fn bipartite_pattern_separates_hubs_from_authorities() {
        // 0,1 point at 2,3: the former are pure hubs, the latter pure
        // authorities.
        let g = Csr::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let r = hits(&g, &PcpmConfig::default(), 20, None).unwrap();
        assert!(r.hubs[0] > 0.5 && r.hubs[1] > 0.5);
        assert!(r.authorities[2] > 0.5 && r.authorities[3] > 0.5);
        assert!(r.authorities[0] < 1e-6 && r.hubs[2] < 1e-6);
    }

    #[test]
    fn vectors_are_normalized() {
        let g = rmat(&RmatConfig::graph500(7, 6, 12)).unwrap();
        let r = hits(&g, &PcpmConfig::default(), 10, None).unwrap();
        let l2 = |v: &[f32]| {
            v.iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
                .sqrt()
        };
        assert!((l2(&r.authorities) - 1.0).abs() < 1e-4);
        assert!((l2(&r.hubs) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tolerance_stops_early() {
        let g = rmat(&RmatConfig::graph500(7, 6, 13)).unwrap();
        let r = hits(&g, &PcpmConfig::default(), 500, Some(1e-9)).unwrap();
        assert!(r.iterations < 500);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let r = hits(&g, &PcpmConfig::default(), 5, None).unwrap();
        assert!(r.authorities.is_empty());
    }
}
