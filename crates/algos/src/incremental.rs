//! Delta-PageRank: Gauss-Southwell-style residual pushing seeded from
//! the vertices an [`UpdateBatch`] touched.
//!
//! After a batch of edge changes, the old PageRank vector is already an
//! (approximate) fixed point of the *old* transition matrix; the only
//! residual lives where columns changed — the sources whose adjacency
//! moved. Seeding a residual vector there and pushing it outward
//! converges to the new graph's fixed point while visiting only the
//! neighborhood the change actually reaches, instead of re-iterating the
//! whole graph. This is the streaming analogue of
//! [`pagerank_warm_start`](pcpm_core::pagerank::pagerank_warm_start):
//! warm-start still pays a full scatter→gather per iteration, the push
//! solver pays per *affected* edge.
//!
//! The solver targets the paper's dangling convention (mass of
//! out-degree-zero nodes is dropped): configurations with
//! `redistribute_dangling` are rejected, because redistribution makes
//! every column dense and point-local pushing inapplicable.

use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_core::update::UpdateBatch;
use pcpm_core::PcpmConfig;
use pcpm_graph::Csr;
use std::collections::VecDeque;
use std::time::Duration;

/// Default per-node residual threshold multiplier when the config sets
/// no tolerance: the push loop drains residuals below
/// `tolerance / num_nodes`.
const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Incrementally re-solves PageRank on `graph` (the *post-update*
/// structure) from `previous` (the converged ranks of the pre-update
/// graph), seeded by the changed edges in `batch`.
///
/// `batch` must describe exactly the applied difference between the two
/// graphs (canonical batches from `pcpm_stream::DeltaGraph::apply`
/// qualify). The result converges to the same fixed point a cold
/// [`pagerank_on`](pcpm_core::pagerank::pagerank_on) run reaches: with
/// the default tolerances the vectors agree within `1e-6`.
///
/// In the returned [`PrResult`], `iterations` counts residual *pushes*
/// (one vertex relaxation each — not whole-graph sweeps) and
/// `last_delta` is the residual L1 mass left when the solver stopped.
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::erdos_renyi;
/// use pcpm_core::{pagerank::pagerank, PcpmConfig, UpdateBatch};
/// use pcpm_algos::incremental_pagerank;
/// use pcpm_graph::Csr;
///
/// let g = erdos_renyi(100, 700, 3).unwrap();
/// let cfg = PcpmConfig::default().with_iterations(200).with_tolerance(1e-10);
/// let cold = pagerank(&g, &cfg).unwrap();
/// // Insert one edge and re-solve incrementally.
/// let mut edges: Vec<_> = g.edges().collect();
/// edges.push((0, 99));
/// edges.sort_unstable();
/// edges.dedup();
/// let g2 = Csr::from_edges(100, &edges).unwrap();
/// let batch = UpdateBatch::from_parts(vec![(0, 99)], vec![]);
/// let warm = incremental_pagerank(&g2, &batch, &cold.scores, &cfg).unwrap();
/// assert!(warm.converged);
/// ```
pub fn incremental_pagerank(
    graph: &Csr,
    batch: &UpdateBatch,
    previous: &[f32],
    cfg: &PcpmConfig,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    if cfg.redistribute_dangling {
        return Err(PcpmError::BadConfig(
            "incremental_pagerank implements the paper's dangling-drop convention only",
        ));
    }
    let n = graph.num_nodes() as usize;
    if previous.len() != n {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: previous.len(),
        });
    }
    if let Some(max) = batch.max_node() {
        if max as usize >= n {
            return Err(PcpmError::DimensionMismatch {
                expected: n,
                got: max as usize + 1,
            });
        }
    }
    let t0 = pcpm_core::telemetry::stopwatch();
    if n == 0 {
        return Ok(finish(vec![], 0, true, 0.0, t0.elapsed()));
    }

    let d = cfg.damping;
    let mut p: Vec<f64> = previous.iter().map(|&v| f64::from(v)).collect();
    let mut r = vec![0.0f64; n];

    // Seed: for every changed source s, retract its old column's
    // contribution and add the new one. The old adjacency of s is
    // recovered from the new one: (new − inserts(s)) ∪ deletes(s).
    for &s in &batch.touched_sources() {
        let new_nbrs = graph.neighbors(s);
        let ins = per_source(batch.inserts(), s);
        let del = per_source(batch.deletes(), s);
        // Applied batches guarantee inserts ⊆ new adjacency, but stay
        // defensive: a malformed batch must not underflow.
        let old_deg = (new_nbrs.len() + del.len()).saturating_sub(ins.len());
        if !new_nbrs.is_empty() {
            let w = d * p[s as usize] / new_nbrs.len() as f64;
            for &t in new_nbrs {
                r[t as usize] += w;
            }
        }
        if old_deg > 0 {
            let w = d * p[s as usize] / old_deg as f64;
            for &t in new_nbrs.iter().filter(|t| !contains(ins, s, **t)) {
                r[t as usize] -= w;
            }
            for &(_, t) in del {
                r[t as usize] -= w;
            }
        }
    }

    // Gauss-Southwell-style drain: relax any vertex whose residual
    // exceeds the per-node threshold, FIFO order.
    let eps = cfg.tolerance.unwrap_or(DEFAULT_TOLERANCE) / n as f64;
    let cap: u64 = 500 * (n as u64 + batch.len() as u64) + 10_000;
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];
    for (v, &rv) in r.iter().enumerate() {
        if rv.abs() > eps {
            queue.push_back(v as u32);
            queued[v] = true;
        }
    }
    let mut pushes: u64 = 0;
    while let Some(v) = queue.pop_front() {
        queued[v as usize] = false;
        let rv = r[v as usize];
        if rv.abs() <= eps {
            continue;
        }
        if pushes >= cap {
            // Terminal safety net; geometric contraction (d < 1) makes
            // this unreachable for valid inputs.
            break;
        }
        pushes += 1;
        p[v as usize] += rv;
        r[v as usize] = 0.0;
        let nbrs = graph.neighbors(v);
        if !nbrs.is_empty() {
            let w = d * rv / nbrs.len() as f64;
            for &t in nbrs {
                let rt = &mut r[t as usize];
                *rt += w;
                if rt.abs() > eps && !queued[t as usize] {
                    queued[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
    }
    let remaining: f64 = r.iter().map(|x| x.abs()).sum();
    let converged = queue.is_empty();
    let scores: Vec<f32> = p.iter().map(|&v| v as f32).collect();
    Ok(finish(
        scores,
        pushes as usize,
        converged,
        remaining,
        t0.elapsed(),
    ))
}

/// The sorted sub-slice of `(src, dst)` pairs with source `s`.
fn per_source(edges: &[(u32, u32)], s: u32) -> &[(u32, u32)] {
    let lo = edges.partition_point(|&(es, _)| es < s);
    let hi = edges.partition_point(|&(es, _)| es <= s);
    &edges[lo..hi]
}

fn contains(edges: &[(u32, u32)], s: u32, t: u32) -> bool {
    edges.binary_search(&(s, t)).is_ok()
}

fn finish(
    scores: Vec<f32>,
    pushes: usize,
    converged: bool,
    last_delta: f64,
    elapsed: Duration,
) -> PrResult {
    PrResult {
        scores,
        iterations: pushes,
        converged,
        last_delta,
        timings: PhaseTimings {
            scatter: Duration::ZERO,
            gather: Duration::ZERO,
            apply: elapsed,
        },
        preprocess: Duration::ZERO,
        compression_ratio: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_core::pagerank::pagerank_on;
    use pcpm_core::BackendKind;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    fn cfg() -> PcpmConfig {
        PcpmConfig::default()
            .with_iterations(500)
            .with_tolerance(1e-10)
            .with_partition_bytes(64 * 4)
    }

    /// Builds an *applied-diff* batch: inserts filtered to edges not
    /// already present, deletes taken as the first edge of each source.
    fn make_batch(g: &Csr, inserts: &[(u32, u32)], del_sources: &[u32]) -> UpdateBatch {
        let ins: Vec<(u32, u32)> = inserts
            .iter()
            .copied()
            .filter(|&(s, t)| g.neighbors(s).binary_search(&t).is_err())
            .collect();
        let del: Vec<(u32, u32)> = del_sources
            .iter()
            .filter_map(|&s| g.neighbors(s).first().map(|&t| (s, t)))
            .collect();
        UpdateBatch::from_parts(ins, del)
    }

    /// Applies a batch to an edge list, returning the new graph.
    fn apply(g: &Csr, batch: &UpdateBatch) -> Csr {
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.retain(|e| batch.deletes().binary_search(e).is_err());
        edges.extend_from_slice(batch.inserts());
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edges(g.num_nodes(), &edges).unwrap()
    }

    fn assert_matches_cold(g2: &Csr, warm: &PrResult, tol: f64) {
        let cold = pagerank_on(g2, &cfg(), BackendKind::Pcpm).unwrap();
        assert!(cold.converged && warm.converged);
        for (v, (&a, &b)) in warm.scores.iter().zip(&cold.scores).enumerate() {
            assert!(
                (f64::from(a) - f64::from(b)).abs() < tol,
                "node {v}: warm {a} vs cold {b}"
            );
        }
    }

    #[test]
    fn matches_cold_start_within_1e6_on_rmat() {
        // The acceptance bar: incremental == cold within 1e-6.
        let g = rmat(&RmatConfig::graph500(9, 8, 71)).unwrap();
        let cold = pagerank_on(&g, &cfg(), BackendKind::Pcpm).unwrap();
        let batch = make_batch(&g, &[(5, 40), (77, 300), (301, 2)], &[3, 9, 200]);
        assert!(!batch.is_empty());
        let g2 = apply(&g, &batch);
        let warm = incremental_pagerank(&g2, &batch, &cold.scores, &cfg()).unwrap();
        assert_matches_cold(&g2, &warm, 1e-6);
    }

    #[test]
    fn degree_transitions_through_zero() {
        // 3 -> dangling (its only edge deleted) and 2 un-dangles.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (3, 0)]).unwrap();
        let cold = pagerank_on(&g, &cfg(), BackendKind::Pcpm).unwrap();
        let batch = UpdateBatch::from_parts(vec![(2, 3)], vec![(3, 0)]);
        let g2 = apply(&g, &batch);
        let warm = incremental_pagerank(&g2, &batch, &cold.scores, &cfg()).unwrap();
        assert_matches_cold(&g2, &warm, 1e-6);
    }

    #[test]
    fn empty_batch_is_a_fixed_point_noop() {
        let g = erdos_renyi(80, 500, 9).unwrap();
        let cold = pagerank_on(&g, &cfg(), BackendKind::Pcpm).unwrap();
        let warm = incremental_pagerank(&g, &UpdateBatch::default(), &cold.scores, &cfg()).unwrap();
        assert!(warm.converged);
        // No seeds -> no pushes beyond residual noise of the cold stop.
        for (&a, &b) in warm.scores.iter().zip(&cold.scores) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn chained_batches_track_the_cold_solution() {
        let g0 = rmat(&RmatConfig::graph500(8, 6, 17)).unwrap();
        let mut g = g0.clone();
        let mut scores = pagerank_on(&g, &cfg(), BackendKind::Pcpm).unwrap().scores;
        for round in 0u32..4 {
            let s = round * 7 + 1;
            let batch = make_batch(&g, &[(s, (s * 31 + round) % 256), (round, 200)], &[s]);
            let g2 = apply(&g, &batch);
            let warm = incremental_pagerank(&g2, &batch, &scores, &cfg()).unwrap();
            assert!(warm.converged, "round {round}");
            scores = warm.scores;
            g = g2;
        }
        let cold = pagerank_on(&g, &cfg(), BackendKind::Pcpm).unwrap();
        for (v, (&a, &b)) in scores.iter().zip(&cold.scores).enumerate() {
            assert!((a - b).abs() < 1e-6, "node {v}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = erdos_renyi(10, 40, 1).unwrap();
        let scores = vec![0.1f32; 10];
        let mut bad = cfg();
        bad.redistribute_dangling = true;
        assert!(incremental_pagerank(&g, &UpdateBatch::default(), &scores, &bad).is_err());
        assert!(incremental_pagerank(&g, &UpdateBatch::default(), &[0.1; 3], &cfg()).is_err());
        let oob = UpdateBatch::from_parts(vec![(0, 99)], vec![]);
        assert!(incremental_pagerank(&g, &oob, &scores, &cfg()).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let r = incremental_pagerank(&g, &UpdateBatch::default(), &[], &cfg()).unwrap();
        assert!(r.scores.is_empty() && r.converged);
    }
}
