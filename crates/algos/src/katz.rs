//! Katz centrality on the PCPM engine.
//!
//! `x ← α·Aᵀx + β·1`, converging to `β(I − αAᵀ)⁻¹·1` for
//! `α < 1/λ_max(A)`. Another straight SpMV iteration, so it inherits the
//! partition-centric memory behavior unchanged.

use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::Csr;
use rayon::prelude::*;

/// Parameters for Katz centrality.
#[derive(Clone, Copy, Debug)]
pub struct KatzConfig {
    /// Attenuation factor `α`; must keep `α·λ_max < 1` to converge. A
    /// safe generic choice is `1 / (max_in_degree + 1)`.
    pub alpha: f32,
    /// Base score `β` added to every node each round.
    pub beta: f32,
    /// Maximum iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl KatzConfig {
    /// A conservative configuration guaranteed to converge on `graph`:
    /// `α = 1 / (max_in_degree + 1)` bounds `α·λ_max < 1`.
    pub fn conservative(graph: &Csr) -> Self {
        let max_in = graph.in_degrees().into_iter().max().unwrap_or(0);
        Self {
            alpha: 1.0 / (max_in as f32 + 1.0),
            beta: 1.0,
            max_iters: 200,
            tolerance: 1e-7,
        }
    }
}

/// Computes Katz centrality; returns the score vector and the number of
/// iterations run.
pub fn katz_centrality(
    graph: &Csr,
    cfg: &PcpmConfig,
    katz: &KatzConfig,
) -> Result<(Vec<f32>, usize), PcpmError> {
    katz_centrality_on(graph, cfg, katz, BackendKind::Pcpm)
}

/// As [`katz_centrality`], through any backend dataplane.
pub fn katz_centrality_on(
    graph: &Csr,
    cfg: &PcpmConfig,
    katz: &KatzConfig,
    backend: BackendKind,
) -> Result<(Vec<f32>, usize), PcpmError> {
    cfg.validate()?;
    // NaNs must be rejected too, hence the explicit finite checks.
    if !katz.alpha.is_finite()
        || katz.alpha <= 0.0
        || !katz.tolerance.is_finite()
        || katz.tolerance <= 0.0
    {
        return Err(PcpmError::BadConfig("alpha and tolerance must be positive"));
    }
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .backend(backend)
        .build()?;
    let mut x = vec![katz.beta; n];
    let mut ax = vec![0.0f32; n];
    let mut iters = 0;
    engine.run(|engine| -> Result<(), PcpmError> {
        while iters < katz.max_iters {
            engine.step(&x, &mut ax)?;
            let delta: f64 = x
                .par_iter_mut()
                .zip(&ax)
                .map(|(xv, &s)| {
                    let new = katz.alpha * s + katz.beta;
                    let d = f64::from((new - *xv).abs());
                    *xv = new;
                    d
                })
                .sum();
            iters += 1;
            if delta < katz.tolerance {
                break;
            }
        }
        Ok(())
    })?;
    Ok((x, iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    fn oracle(graph: &Csr, katz: &KatzConfig) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let mut x = vec![f64::from(katz.beta); n];
        for _ in 0..katz.max_iters {
            let mut ax = vec![0.0f64; n];
            for (s, t) in graph.edges() {
                ax[t as usize] += x[s as usize];
            }
            let mut delta = 0.0;
            for v in 0..n {
                let new = f64::from(katz.alpha) * ax[v] + f64::from(katz.beta);
                delta += (new - x[v]).abs();
                x[v] = new;
            }
            if delta < katz.tolerance {
                break;
            }
        }
        x
    }

    #[test]
    fn matches_serial_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 91)).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(512);
        let katz = KatzConfig::conservative(&g);
        let (got, iters) = katz_centrality(&g, &cfg, &katz).unwrap();
        assert!(iters < katz.max_iters, "did not converge");
        let want = oracle(&g, &katz);
        let scale = want.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        for (v, (&a, &b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (f64::from(a) - b).abs() < 1e-3 * scale,
                "node {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn high_in_degree_nodes_score_higher() {
        // Star into node 0.
        let g = Csr::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        let (scores, _) =
            katz_centrality(&g, &PcpmConfig::default(), &KatzConfig::conservative(&g)).unwrap();
        for leaf in 1..5 {
            assert!(scores[0] > scores[leaf]);
        }
    }

    #[test]
    fn isolated_nodes_get_exactly_beta() {
        let g = Csr::from_edges(3, &[(0, 1)]).unwrap();
        let katz = KatzConfig::conservative(&g);
        let (scores, _) = katz_centrality(&g, &PcpmConfig::default(), &katz).unwrap();
        assert_eq!(scores[2], katz.beta);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = erdos_renyi(10, 30, 1).unwrap();
        let mut katz = KatzConfig::conservative(&g);
        katz.alpha = 0.0;
        assert!(katz_centrality(&g, &PcpmConfig::default(), &katz).is_err());
    }
}
