//! Graph algorithms built on the PCPM engine.
//!
//! The paper's closing section proposes PCPM as "an efficient programming
//! model for other graph algorithms". This crate realizes that: every
//! algorithm here runs the same partition-centric scatter → gather
//! pipeline (PNG layout, MSB-demarcated bins, branch-avoiding gather) —
//! only the gather algebra and the apply step differ.
//!
//! - [`propagate::propagation_engine`] + [`propagate::run_to_fixpoint`]
//!   — the generic iterate-to-fixpoint driver over any
//!   [`pcpm_core::algebra::Algebra`] and any
//!   [`pcpm_core::BackendKind`];
//! - [`components::connected_components`] — min-label propagation over the
//!   undirected closure;
//! - [`bfs::bfs_levels`] — hop counts from a source (min-level algebra);
//! - [`sssp::sssp`] — Bellman-Ford-style shortest paths over the
//!   `(min, +)` semiring with edge weights riding in the destID bins;
//! - [`ppr::personalized_pagerank`] — random walk with restart to a seed
//!   set;
//! - [`wpr::weighted_pagerank`] — PageRank with edge-weight-proportional
//!   transition probabilities (the §3.5 weighted extension, end to end);
//! - [`incremental::incremental_pagerank`] — delta-PageRank for
//!   streaming graphs: Gauss-Southwell residual pushing seeded from the
//!   vertices an edge-update batch touched;
//! - [`katz::katz_centrality`] — attenuated path counting (`α·Aᵀx + β`);
//! - [`hits::hits`] — hubs and authorities via paired forward/transpose
//!   engines.
//!
//! Every algorithm also has an `*_on` variant taking a
//! [`pcpm_core::BackendKind`], running the identical apply/convergence
//! logic over the PCPM, pull, push or edge-centric dataplane — the
//! backend-agnostic programming model of the paper's §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod components;
pub mod hits;
pub mod incremental;
pub mod katz;
pub mod ppr;
pub mod propagate;
pub mod sssp;
pub mod wpr;

pub use bfs::{bfs_levels, bfs_levels_on, bfs_levels_with_engine};
pub use components::{connected_components, connected_components_on};
pub use hits::{hits, hits_on, HitsResult};
pub use incremental::incremental_pagerank;
pub use katz::{katz_centrality, katz_centrality_on, KatzConfig};
pub use ppr::{
    personalized_pagerank, personalized_pagerank_many,
    personalized_pagerank_many_with_unified_engine, personalized_pagerank_on,
    personalized_pagerank_with_unified_engine,
};
#[allow(deprecated)]
pub use propagate::PropagationEngine;
pub use propagate::{propagation_engine, run_to_fixpoint, FixpointResult};
pub use sssp::{sssp, sssp_on, sssp_with_engine};
pub use wpr::{weighted_pagerank, weighted_pagerank_on, weighted_pagerank_with_unified_engine};
