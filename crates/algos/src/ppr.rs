//! Personalized PageRank (random walk with restart) on the PCPM engine.
//!
//! Identical pipeline to global PageRank, with two changes in the apply
//! step: the teleport mass `(1 - d)` returns to a *seed set* instead of
//! being spread uniformly, and dangling mass restarts at the seeds as
//! well (the standard RWR convention, which keeps the vector a proper
//! probability distribution).

use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::time::Instant;

/// Computes personalized PageRank for a non-empty seed set.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_algos::personalized_pagerank;
/// use pcpm_core::PcpmConfig;
///
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]).unwrap();
/// let cfg = PcpmConfig::default().with_iterations(50);
/// let ppr = personalized_pagerank(&g, &[3], &cfg).unwrap();
/// // Mass concentrates near the seed.
/// assert!(ppr.scores[3] > ppr.scores[1]);
/// ```
pub fn personalized_pagerank(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
) -> Result<PrResult, PcpmError> {
    personalized_pagerank_on(graph, seeds, cfg, BackendKind::Pcpm)
}

/// As [`personalized_pagerank`], through any backend dataplane.
pub fn personalized_pagerank_on(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .backend(backend)
        .build()?;
    personalized_pagerank_with_unified_engine(graph, seeds, cfg, &mut engine)
}

/// As [`personalized_pagerank`], but on a caller-supplied engine already
/// prepared over `graph` (e.g. rehydrated from a snapshot). The engine
/// outlives the call unchanged except for its step statistics, so a
/// serving layer can run many PPR queries against one prepared engine.
pub fn personalized_pagerank_with_unified_engine(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
    engine: &mut Engine<PlusF32>,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    if seeds.is_empty() {
        return Err(PcpmError::BadConfig("seed set must be non-empty"));
    }
    let n = graph.num_nodes() as usize;
    for &s in seeds {
        if s >= graph.num_nodes() {
            return Err(PcpmError::DimensionMismatch {
                expected: n,
                got: s as usize,
            });
        }
    }
    if engine.num_src() != graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    let damping = cfg.damping as f32;
    let seed_share = 1.0 / seeds.len() as f32;
    let mut teleport = vec![0.0f32; n];
    for &s in seeds {
        teleport[s as usize] += seed_share;
    }
    let out_deg = graph.out_degrees();
    let inv_deg: Vec<f32> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
        .collect();

    let mut pr: Vec<f32> = teleport.clone();
    let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
    let mut sums = vec![0.0f32; n];
    let mut timings = PhaseTimings::default();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut last_delta = f64::INFINITY;

    engine.run(|engine| -> Result<(), PcpmError> {
        for _ in 0..cfg.iterations {
            timings += engine.step(&x, &mut sums)?;
            let t0 = Instant::now();
            // Dangling mass restarts at the seeds.
            let dangling: f64 = pr
                .par_iter()
                .zip(&out_deg)
                .filter(|(_, &d)| d == 0)
                .map(|(&p, _)| f64::from(p))
                .sum();
            let restart = (1.0 - f64::from(damping)) + f64::from(damping) * dangling;
            let delta: f64 = pr
                .par_iter_mut()
                .zip(&sums)
                .zip(&teleport)
                .map(|((p, &s), &t)| {
                    let new = (restart as f32) * t + damping * s;
                    let d = f64::from((new - *p).abs());
                    *p = new;
                    d
                })
                .sum();
            x.par_iter_mut()
                .zip(&pr)
                .zip(&inv_deg)
                .for_each(|((xv, &p), &i)| *xv = p * i);
            timings.apply += t0.elapsed();
            iterations += 1;
            last_delta = delta;
            if let Some(tol) = cfg.tolerance {
                if delta < tol {
                    converged = true;
                    break;
                }
            }
        }
        Ok(())
    })?;

    let report = engine.report();
    Ok(PrResult {
        scores: pr,
        iterations,
        converged,
        last_delta,
        timings,
        preprocess: report.preprocess,
        compression_ratio: report.compression_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::rmat;
    use pcpm_graph::gen::RmatConfig;

    /// Serial RWR oracle with the same conventions.
    fn oracle(graph: &Csr, seeds: &[u32], cfg: &PcpmConfig) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let d = cfg.damping;
        let out_deg = graph.out_degrees();
        let mut teleport = vec![0.0f64; n];
        for &s in seeds {
            teleport[s as usize] += 1.0 / seeds.len() as f64;
        }
        let mut pr = teleport.clone();
        for _ in 0..cfg.iterations {
            let mut sums = vec![0.0f64; n];
            for (s, t) in graph.edges() {
                sums[t as usize] += pr[s as usize] / f64::from(out_deg[s as usize]);
            }
            let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| pr[v]).sum();
            let restart = (1.0 - d) + d * dangling;
            for v in 0..n {
                pr[v] = restart * teleport[v] + d * sums[v];
            }
        }
        pr
    }

    #[test]
    fn matches_serial_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 31)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(15)
            .with_partition_bytes(256);
        let seeds = [3u32, 100, 101];
        let got = personalized_pagerank(&g, &seeds, &cfg).unwrap();
        let want = oracle(&g, &seeds, &cfg);
        let scale = want.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        for (v, (&a, &b)) in got.scores.iter().zip(&want).enumerate() {
            assert!(
                (f64::from(a) - b).abs() < 2e-3 * scale,
                "node {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn mass_is_conserved() {
        let g = rmat(&RmatConfig::graph500(8, 6, 32)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(30);
        let r = personalized_pagerank(&g, &[0, 1], &cfg).unwrap();
        assert!((r.mass() - 1.0).abs() < 1e-3, "mass {}", r.mass());
    }

    #[test]
    fn mass_localizes_near_seed() {
        // Two cliques bridged by one edge: seeding in clique A must give
        // clique A most of the mass.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 5, b + 5));
                }
            }
        }
        edges.push((0, 5));
        edges.push((5, 0));
        let g = Csr::from_edges(10, &edges).unwrap();
        let cfg = PcpmConfig::default().with_iterations(60);
        let r = personalized_pagerank(&g, &[2], &cfg).unwrap();
        let mass_a: f32 = r.scores[..5].iter().sum();
        let mass_b: f32 = r.scores[5..].iter().sum();
        assert!(mass_a > 2.0 * mass_b, "A {mass_a} vs B {mass_b}");
    }

    #[test]
    fn empty_or_invalid_seeds_rejected() {
        let g = Csr::from_edges(3, &[(0, 1)]).unwrap();
        assert!(personalized_pagerank(&g, &[], &PcpmConfig::default()).is_err());
        assert!(personalized_pagerank(&g, &[9], &PcpmConfig::default()).is_err());
    }

    #[test]
    fn uniform_seed_set_equals_global_pagerank_with_restart_dangling() {
        // Seeding every node uniformly + dangling-to-seeds equals global
        // PageRank with dangling redistribution.
        let g = rmat(&RmatConfig::graph500(8, 8, 33)).unwrap();
        let mut cfg = PcpmConfig::default().with_iterations(25);
        let seeds: Vec<u32> = (0..g.num_nodes()).collect();
        let ppr = personalized_pagerank(&g, &seeds, &cfg).unwrap();
        cfg.redistribute_dangling = true;
        let global = pcpm_core::pagerank::pagerank(&g, &cfg).unwrap();
        for (v, (&a, &b)) in ppr.scores.iter().zip(&global.scores).enumerate() {
            assert!((a - b).abs() < 1e-6, "node {v}: {a} vs {b}");
        }
    }
}
