//! Personalized PageRank (random walk with restart) on the PCPM engine.
//!
//! Identical pipeline to global PageRank, with two changes in the apply
//! step: the teleport mass `(1 - d)` returns to a *seed set* instead of
//! being spread uniformly, and dangling mass restarts at the seeds as
//! well (the standard RWR convention, which keeps the vector a proper
//! probability distribution).

use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;

/// Computes personalized PageRank for a non-empty seed set.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_algos::personalized_pagerank;
/// use pcpm_core::PcpmConfig;
///
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]).unwrap();
/// let cfg = PcpmConfig::default().with_iterations(50);
/// let ppr = personalized_pagerank(&g, &[3], &cfg).unwrap();
/// // Mass concentrates near the seed.
/// assert!(ppr.scores[3] > ppr.scores[1]);
/// ```
pub fn personalized_pagerank(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
) -> Result<PrResult, PcpmError> {
    personalized_pagerank_on(graph, seeds, cfg, BackendKind::Pcpm)
}

/// As [`personalized_pagerank`], through any backend dataplane.
pub fn personalized_pagerank_on(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .backend(backend)
        .build()?;
    personalized_pagerank_with_unified_engine(graph, seeds, cfg, &mut engine)
}

/// As [`personalized_pagerank`], but on a caller-supplied engine already
/// prepared over `graph` (e.g. rehydrated from a snapshot). The engine
/// outlives the call unchanged except for its step statistics, so a
/// serving layer can run many PPR queries against one prepared engine.
pub fn personalized_pagerank_with_unified_engine(
    graph: &Csr,
    seeds: &[u32],
    cfg: &PcpmConfig,
    engine: &mut Engine<PlusF32>,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    if seeds.is_empty() {
        return Err(PcpmError::BadConfig("seed set must be non-empty"));
    }
    let n = graph.num_nodes() as usize;
    for &s in seeds {
        if s >= graph.num_nodes() {
            return Err(PcpmError::DimensionMismatch {
                expected: n,
                got: s as usize,
            });
        }
    }
    if engine.num_src() != graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    let damping = cfg.damping as f32;
    let seed_share = 1.0 / seeds.len() as f32;
    let mut teleport = vec![0.0f32; n];
    for &s in seeds {
        teleport[s as usize] += seed_share;
    }
    let out_deg = graph.out_degrees();
    let inv_deg: Vec<f32> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
        .collect();

    let mut pr: Vec<f32> = teleport.clone();
    let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
    let mut sums = vec![0.0f32; n];
    let mut timings = PhaseTimings::default();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut last_delta = f64::INFINITY;

    engine.run(|engine| -> Result<(), PcpmError> {
        for _ in 0..cfg.iterations {
            timings += engine.step(&x, &mut sums)?;
            let t0 = pcpm_core::telemetry::stopwatch();
            // Dangling mass restarts at the seeds.
            let dangling: f64 = pr
                .par_iter()
                .zip(&out_deg)
                .filter(|(_, &d)| d == 0)
                .map(|(&p, _)| f64::from(p))
                .sum();
            let restart = (1.0 - f64::from(damping)) + f64::from(damping) * dangling;
            let delta: f64 = pr
                .par_iter_mut()
                .zip(&sums)
                .zip(&teleport)
                .map(|((p, &s), &t)| {
                    let new = (restart as f32) * t + damping * s;
                    let d = f64::from((new - *p).abs());
                    *p = new;
                    d
                })
                .sum();
            x.par_iter_mut()
                .zip(&pr)
                .zip(&inv_deg)
                .for_each(|((xv, &p), &i)| *xv = p * i);
            timings.apply += t0.elapsed();
            iterations += 1;
            last_delta = delta;
            if let Some(tol) = cfg.tolerance {
                if delta < tol {
                    converged = true;
                    break;
                }
            }
        }
        Ok(())
    })?;

    let report = engine.report();
    Ok(PrResult {
        scores: pr,
        iterations,
        converged,
        last_delta,
        timings,
        preprocess: report.preprocess,
        compression_ratio: report.compression_ratio,
    })
}

/// Computes personalized PageRank for a *batch* of seed sets in one
/// pass over the engine's bin streams per iteration.
///
/// Builds a PCPM engine and delegates to
/// [`personalized_pagerank_many_with_unified_engine`].
pub fn personalized_pagerank_many(
    graph: &Csr,
    seed_sets: &[Vec<u32>],
    cfg: &PcpmConfig,
) -> Result<Vec<PrResult>, PcpmError> {
    cfg.validate()?;
    let mut engine = Engine::<PlusF32>::builder(graph).config(*cfg).build()?;
    personalized_pagerank_many_with_unified_engine(graph, seed_sets, cfg, &mut engine)
}

/// The batched (SpMM) personalized-PageRank driver: each iteration runs
/// one [`Engine::step_many`] over every still-active query, so on the
/// PCPM dataplane the destID bin stream is scanned once per iteration
/// for the whole batch instead of once per query.
///
/// Per-query results (`scores`, `iterations`, `converged`, `last_delta`)
/// are **bit-identical** to running
/// [`personalized_pagerank_with_unified_engine`] sequentially on the
/// same engine: the batched gather applies updates in the same order per
/// query, the apply arithmetic is unchanged, and a query that meets the
/// tolerance is frozen (dropped from later batches) exactly where the
/// sequential loop would have stopped. Only the wall-clock `timings`
/// differ — they report the shared batch cost, identically on every
/// result.
pub fn personalized_pagerank_many_with_unified_engine(
    graph: &Csr,
    seed_sets: &[Vec<u32>],
    cfg: &PcpmConfig,
    engine: &mut Engine<PlusF32>,
) -> Result<Vec<PrResult>, PcpmError> {
    cfg.validate()?;
    let n = graph.num_nodes() as usize;
    for seeds in seed_sets {
        if seeds.is_empty() {
            return Err(PcpmError::BadConfig("seed set must be non-empty"));
        }
        for &s in seeds {
            if s >= graph.num_nodes() {
                return Err(PcpmError::DimensionMismatch {
                    expected: n,
                    got: s as usize,
                });
            }
        }
    }
    if engine.num_src() != graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    if seed_sets.is_empty() {
        return Ok(Vec::new());
    }
    let q_count = seed_sets.len();
    let damping = cfg.damping as f32;
    let out_deg = graph.out_degrees();
    let inv_deg: Vec<f32> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
        .collect();

    let teleports: Vec<Vec<f32>> = seed_sets
        .iter()
        .map(|seeds| {
            let share = 1.0 / seeds.len() as f32;
            let mut t = vec![0.0f32; n];
            for &s in seeds {
                t[s as usize] += share;
            }
            t
        })
        .collect();
    let mut prs: Vec<Vec<f32>> = teleports.clone();
    let mut xs: Vec<Vec<f32>> = prs
        .iter()
        .map(|pr| pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect())
        .collect();
    let mut sums: Vec<Vec<f32>> = (0..q_count).map(|_| vec![0.0f32; n]).collect();
    let mut timings = PhaseTimings::default();
    let mut iterations = vec![0usize; q_count];
    let mut converged = vec![false; q_count];
    let mut last_delta = vec![f64::INFINITY; q_count];
    let mut done = vec![false; q_count];

    engine.run(|engine| -> Result<(), PcpmError> {
        for _ in 0..cfg.iterations {
            if done.iter().all(|&d| d) {
                break;
            }
            let x_refs: Vec<&[f32]> = xs
                .iter()
                .zip(&done)
                .filter(|(_, &d)| !d)
                .map(|(x, _)| x.as_slice())
                .collect();
            let mut y_refs: Vec<&mut [f32]> = sums
                .iter_mut()
                .zip(&done)
                .filter(|(_, &d)| !d)
                .map(|(s, _)| s.as_mut_slice())
                .collect();
            timings += engine.step_many(&x_refs, &mut y_refs)?;
            let t0 = pcpm_core::telemetry::stopwatch();
            for qi in 0..q_count {
                if done[qi] {
                    continue;
                }
                // Identical apply arithmetic to the sequential driver —
                // this is what keeps batched ranks bit-identical.
                let dangling: f64 = prs[qi]
                    .par_iter()
                    .zip(&out_deg)
                    .filter(|(_, &d)| d == 0)
                    .map(|(&p, _)| f64::from(p))
                    .sum();
                let restart = (1.0 - f64::from(damping)) + f64::from(damping) * dangling;
                let delta: f64 = prs[qi]
                    .par_iter_mut()
                    .zip(&sums[qi])
                    .zip(&teleports[qi])
                    .map(|((p, &s), &t)| {
                        let new = (restart as f32) * t + damping * s;
                        let d = f64::from((new - *p).abs());
                        *p = new;
                        d
                    })
                    .sum();
                xs[qi]
                    .par_iter_mut()
                    .zip(&prs[qi])
                    .zip(&inv_deg)
                    .for_each(|((xv, &p), &i)| *xv = p * i);
                iterations[qi] += 1;
                last_delta[qi] = delta;
                if let Some(tol) = cfg.tolerance {
                    if delta < tol {
                        converged[qi] = true;
                        done[qi] = true;
                    }
                }
            }
            timings.apply += t0.elapsed();
        }
        Ok(())
    })?;

    let report = engine.report();
    Ok(prs
        .into_iter()
        .enumerate()
        .map(|(qi, scores)| PrResult {
            scores,
            iterations: iterations[qi],
            converged: converged[qi],
            last_delta: last_delta[qi],
            timings,
            preprocess: report.preprocess,
            compression_ratio: report.compression_ratio,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::rmat;
    use pcpm_graph::gen::RmatConfig;

    /// Serial RWR oracle with the same conventions.
    fn oracle(graph: &Csr, seeds: &[u32], cfg: &PcpmConfig) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let d = cfg.damping;
        let out_deg = graph.out_degrees();
        let mut teleport = vec![0.0f64; n];
        for &s in seeds {
            teleport[s as usize] += 1.0 / seeds.len() as f64;
        }
        let mut pr = teleport.clone();
        for _ in 0..cfg.iterations {
            let mut sums = vec![0.0f64; n];
            for (s, t) in graph.edges() {
                sums[t as usize] += pr[s as usize] / f64::from(out_deg[s as usize]);
            }
            let dangling: f64 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| pr[v]).sum();
            let restart = (1.0 - d) + d * dangling;
            for v in 0..n {
                pr[v] = restart * teleport[v] + d * sums[v];
            }
        }
        pr
    }

    #[test]
    fn matches_serial_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 31)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(15)
            .with_partition_bytes(256);
        let seeds = [3u32, 100, 101];
        let got = personalized_pagerank(&g, &seeds, &cfg).unwrap();
        let want = oracle(&g, &seeds, &cfg);
        let scale = want.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        for (v, (&a, &b)) in got.scores.iter().zip(&want).enumerate() {
            assert!(
                (f64::from(a) - b).abs() < 2e-3 * scale,
                "node {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn mass_is_conserved() {
        let g = rmat(&RmatConfig::graph500(8, 6, 32)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(30);
        let r = personalized_pagerank(&g, &[0, 1], &cfg).unwrap();
        assert!((r.mass() - 1.0).abs() < 1e-3, "mass {}", r.mass());
    }

    #[test]
    fn mass_localizes_near_seed() {
        // Two cliques bridged by one edge: seeding in clique A must give
        // clique A most of the mass.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 5, b + 5));
                }
            }
        }
        edges.push((0, 5));
        edges.push((5, 0));
        let g = Csr::from_edges(10, &edges).unwrap();
        let cfg = PcpmConfig::default().with_iterations(60);
        let r = personalized_pagerank(&g, &[2], &cfg).unwrap();
        let mass_a: f32 = r.scores[..5].iter().sum();
        let mass_b: f32 = r.scores[5..].iter().sum();
        assert!(mass_a > 2.0 * mass_b, "A {mass_a} vs B {mass_b}");
    }

    #[test]
    fn empty_or_invalid_seeds_rejected() {
        let g = Csr::from_edges(3, &[(0, 1)]).unwrap();
        assert!(personalized_pagerank(&g, &[], &PcpmConfig::default()).is_err());
        assert!(personalized_pagerank(&g, &[9], &PcpmConfig::default()).is_err());
        let cfg = PcpmConfig::default();
        assert!(personalized_pagerank_many(&g, &[vec![0], vec![]], &cfg).is_err());
        assert!(personalized_pagerank_many(&g, &[vec![0], vec![9]], &cfg).is_err());
        assert!(personalized_pagerank_many(&g, &[], &cfg)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batched_ppr_bit_identical_to_sequential() {
        use pcpm_core::format::BinFormatKind;
        let g = rmat(&RmatConfig::graph500(9, 8, 31)).unwrap();
        let seed_sets: Vec<Vec<u32>> = vec![
            vec![3],
            vec![100, 101],
            vec![7, 3],
            vec![250],
            vec![0, 1, 2],
        ];
        for format in BinFormatKind::ALL {
            let cfg = PcpmConfig::default()
                .with_iterations(20)
                .with_partition_bytes(256)
                .with_bin_format(format);
            let batched = personalized_pagerank_many(&g, &seed_sets, &cfg).unwrap();
            for (seeds, got) in seed_sets.iter().zip(&batched) {
                let want = personalized_pagerank(&g, seeds, &cfg).unwrap();
                assert_eq!(got.scores, want.scores, "format {format} seeds {seeds:?}");
                assert_eq!(got.iterations, want.iterations);
                assert_eq!(got.converged, want.converged);
                assert_eq!(got.last_delta, want.last_delta);
            }
        }
    }

    #[test]
    fn batched_ppr_freezes_converged_queries_where_sequential_stops() {
        // With a tolerance, different seed sets converge at different
        // iterations; each batched query must stop exactly where its
        // sequential run does and keep bit-identical scores.
        let g = rmat(&RmatConfig::graph500(8, 8, 77)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(100)
            .with_tolerance(1e-6);
        let seed_sets: Vec<Vec<u32>> = vec![vec![0], (0..g.num_nodes()).collect(), vec![5, 6, 7]];
        let batched = personalized_pagerank_many(&g, &seed_sets, &cfg).unwrap();
        let mut iter_counts = std::collections::HashSet::new();
        for (seeds, got) in seed_sets.iter().zip(&batched) {
            let want = personalized_pagerank(&g, seeds, &cfg).unwrap();
            assert!(got.converged, "seeds {seeds:?} should converge");
            assert_eq!(got.iterations, want.iterations, "seeds {seeds:?}");
            assert_eq!(got.scores, want.scores, "seeds {seeds:?}");
            iter_counts.insert(got.iterations);
        }
        assert!(
            iter_counts.len() > 1,
            "test should exercise divergent convergence points, got {iter_counts:?}"
        );
    }

    #[test]
    fn uniform_seed_set_equals_global_pagerank_with_restart_dangling() {
        // Seeding every node uniformly + dangling-to-seeds equals global
        // PageRank with dangling redistribution.
        let g = rmat(&RmatConfig::graph500(8, 8, 33)).unwrap();
        let mut cfg = PcpmConfig::default().with_iterations(25);
        let seeds: Vec<u32> = (0..g.num_nodes()).collect();
        let ppr = personalized_pagerank(&g, &seeds, &cfg).unwrap();
        cfg.redistribute_dangling = true;
        let global = pcpm_core::pagerank::pagerank(&g, &cfg).unwrap();
        for (v, (&a, &b)) in ppr.scores.iter().zip(&global.scores).enumerate() {
            assert!((a - b).abs() < 1e-6, "node {v}: {a} vs {b}");
        }
    }
}
