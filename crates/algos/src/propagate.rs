//! Generic fixpoint propagation over an [`Algebra`], on the unified
//! [`Engine`].
//!
//! One [`Engine::step`] is exactly one propagation round: scatter the
//! current vertex states, gather under the chosen algebra. The
//! [`run_to_fixpoint`] driver combines each gathered value with the
//! vertex's previous state (monotone algebras like `min` converge in at
//! most the graph diameter) — on *any* backend, since it only drives the
//! step method.

use pcpm_core::algebra::Algebra;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::{Csr, EdgeWeights};
use rayon::prelude::*;

/// Outcome of a fixpoint run.
#[derive(Clone, Debug)]
pub struct FixpointResult<T> {
    /// Final per-vertex state.
    pub state: Vec<T>,
    /// Propagation rounds executed.
    pub rounds: usize,
    /// Whether a fixpoint was reached before the round cap.
    pub converged: bool,
}

/// Builds a propagation engine for `graph` under the algebra `A`:
/// [`Engine::builder`] with the algorithm-friendly defaults filled in.
pub fn propagation_engine<A: Algebra>(
    graph: &Csr,
    cfg: &PcpmConfig,
    weights: Option<&EdgeWeights>,
    backend: BackendKind,
) -> Result<Engine<A>, PcpmError> {
    let mut builder = Engine::<A>::builder(graph).config(*cfg).backend(backend);
    if let Some(w) = weights {
        builder = builder.weights(w);
    }
    builder.build()
}

/// Iterates `state[v] ← combine(state[v], step(state)[v])` until no
/// vertex changes or `max_rounds` is hit.
pub fn run_to_fixpoint<A: Algebra>(
    engine: &mut Engine<A>,
    mut state: Vec<A::T>,
    max_rounds: usize,
) -> Result<FixpointResult<A::T>, PcpmError> {
    let mut incoming = vec![A::identity(); state.len()];
    let mut rounds = 0;
    let mut converged = false;
    engine.run(|engine| -> Result<(), PcpmError> {
        while rounds < max_rounds {
            engine.step(&state, &mut incoming)?;
            rounds += 1;
            let changed = state
                .par_iter_mut()
                .zip(&incoming)
                .map(|(s, &inc)| {
                    let new = A::combine(*s, inc);
                    let changed = new != *s;
                    *s = new;
                    changed as u64
                })
                .sum::<u64>();
            if changed == 0 {
                converged = true;
                break;
            }
        }
        Ok(())
    })?;
    Ok(FixpointResult {
        state,
        rounds,
        converged,
    })
}

/// A reusable PCPM pipeline for a fixed graph and algebra.
#[deprecated(
    since = "0.2.0",
    note = "use `propagation_engine` / `Engine::builder` and `run_to_fixpoint`"
)]
pub struct PropagationEngine<A: Algebra> {
    engine: Engine<A>,
}

#[allow(deprecated)]
impl<A: Algebra> PropagationEngine<A> {
    /// Builds the PNG layout and bins for `graph`; `weights` enables the
    /// algebra's weighted extension (e.g. `(min, +)` for SSSP).
    pub fn new(
        graph: &Csr,
        cfg: &PcpmConfig,
        weights: Option<&EdgeWeights>,
    ) -> Result<Self, PcpmError> {
        Ok(Self {
            engine: propagation_engine(graph, cfg, weights, BackendKind::Pcpm)?,
        })
    }

    /// The PNG compression ratio of the built layout.
    pub fn compression_ratio(&self) -> f64 {
        self.engine.report().compression_ratio.unwrap_or(1.0)
    }

    /// One propagation round: `y[t] = ⊕_{(s,t) ∈ E} extend(x[s])`, with
    /// `y` initialized to the algebra's identity.
    pub fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<(), PcpmError> {
        self.engine.step(x, y).map(|_| ())
    }

    /// Iterates to a fixpoint (see [`run_to_fixpoint`]).
    pub fn run_to_fixpoint(
        &mut self,
        state: Vec<A::T>,
        max_rounds: usize,
    ) -> Result<FixpointResult<A::T>, PcpmError> {
        run_to_fixpoint(&mut self.engine, state, max_rounds)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pcpm_core::algebra::{MinLabel, OrBool, PlusF32};

    fn chain(n: u32) -> Csr {
        let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
        Csr::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn plus_step_is_transposed_spmv() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 1)]).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(8);
        let mut eng = PropagationEngine::<PlusF32>::new(&g, &cfg, None).unwrap();
        let mut y = vec![0.0f32; 3];
        eng.step(&[1.0, 10.0, 100.0], &mut y).unwrap();
        assert_eq!(y, vec![0.0, 101.0, 1.0]);
    }

    #[test]
    fn min_label_fixpoint_on_chain() {
        let g = chain(10).symmetrize();
        let cfg = PcpmConfig::default().with_partition_bytes(16);
        let mut eng = PropagationEngine::<MinLabel>::new(&g, &cfg, None).unwrap();
        let init: Vec<u32> = (0..10).collect();
        let r = eng.run_to_fixpoint(init, 100).unwrap();
        assert!(r.converged);
        assert!(r.state.iter().all(|&l| l == 0), "{:?}", r.state);
        // A 10-node chain needs ~9 rounds for label 0 to reach the end.
        assert!(r.rounds >= 9 && r.rounds <= 11, "rounds {}", r.rounds);
    }

    #[test]
    fn fixpoint_agrees_on_every_backend() {
        let g = chain(24).symmetrize();
        let cfg = PcpmConfig::default().with_partition_bytes(16);
        let init: Vec<u32> = (0..24).collect();
        let mut results = Vec::new();
        for kind in BackendKind::ALL {
            let mut engine = propagation_engine::<MinLabel>(&g, &cfg, None, kind).unwrap();
            let r = run_to_fixpoint(&mut engine, init.clone(), 100).unwrap();
            assert!(r.converged, "{}", kind.name());
            results.push(r.state);
        }
        for other in &results[1..] {
            assert_eq!(&results[0], other);
        }
    }

    #[test]
    fn reachability_with_or_bool() {
        // 0 -> 1 -> 2, 3 isolated.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(8);
        let mut eng = PropagationEngine::<OrBool>::new(&g, &cfg, None).unwrap();
        let mut init = vec![false; 4];
        init[0] = true;
        let r = eng.run_to_fixpoint(init, 10).unwrap();
        assert!(r.converged);
        assert_eq!(r.state, vec![true, true, true, false]);
    }

    #[test]
    fn round_cap_reports_non_convergence() {
        let g = chain(50).symmetrize();
        let cfg = PcpmConfig::default().with_partition_bytes(16);
        let mut eng = PropagationEngine::<MinLabel>::new(&g, &cfg, None).unwrap();
        let init: Vec<u32> = (0..50).collect();
        let r = eng.run_to_fixpoint(init, 3).unwrap();
        assert!(!r.converged);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = chain(4);
        let cfg = PcpmConfig::default();
        let mut eng = PropagationEngine::<MinLabel>::new(&g, &cfg, None).unwrap();
        let mut y = vec![0u32; 4];
        assert!(eng.step(&[0u32; 2], &mut y).is_err());
    }
}
