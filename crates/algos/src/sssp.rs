//! Single-source shortest paths over the `(min, +)` semiring.
//!
//! Bellman-Ford-style relaxation through the PCPM pipeline: the edge
//! weights ride alongside the destination IDs in the bins (§3.5), the
//! gather relaxes `dist[t] ← min(dist[t], dist[s] + w(s,t))`, and the
//! fixpoint driver stops when no distance changes. Non-negative weights
//! guarantee convergence within `n - 1` rounds.

use crate::propagate::{propagation_engine, run_to_fixpoint};
use pcpm_core::algebra::MinPlusF32;
use pcpm_core::backend::BackendKind;
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_graph::{Csr, EdgeWeights};

/// Computes shortest-path distances from `source`; unreachable nodes get
/// `f32::INFINITY`.
///
/// # Examples
///
/// ```
/// use pcpm_graph::{Csr, EdgeWeights};
/// use pcpm_algos::sssp;
/// use pcpm_core::PcpmConfig;
///
/// // 0 -2-> 1 -3-> 2 and a direct 0 -10-> 2.
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
/// let w = EdgeWeights::new(&g, vec![2.0, 10.0, 3.0]).unwrap();
/// let dist = sssp(&g, &w, 0, &PcpmConfig::default()).unwrap();
/// assert_eq!(dist, vec![0.0, 2.0, 5.0]);
/// ```
pub fn sssp(
    graph: &Csr,
    weights: &EdgeWeights,
    source: u32,
    cfg: &PcpmConfig,
) -> Result<Vec<f32>, PcpmError> {
    sssp_on(graph, weights, source, cfg, BackendKind::Pcpm)
}

/// As [`sssp`], through any backend dataplane.
pub fn sssp_on(
    graph: &Csr,
    weights: &EdgeWeights,
    source: u32,
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<Vec<f32>, PcpmError> {
    if source >= graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: source as usize,
        });
    }
    if weights.as_slice().iter().any(|&w| w < 0.0) {
        return Err(PcpmError::BadConfig(
            "sssp requires non-negative edge weights",
        ));
    }
    let mut engine = propagation_engine::<MinPlusF32>(graph, cfg, Some(weights), backend)?;
    sssp_with_engine(graph, source, &mut engine)
}

/// As [`sssp`], but on a caller-supplied `(min, +)` engine already
/// prepared over `graph` *with its edge weights baked into the bins*
/// (e.g. rehydrated from a weighted snapshot). Weight non-negativity
/// must have been checked when the engine was built.
pub fn sssp_with_engine(
    graph: &Csr,
    source: u32,
    engine: &mut pcpm_core::Engine<MinPlusF32>,
) -> Result<Vec<f32>, PcpmError> {
    if source >= graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: source as usize,
        });
    }
    if engine.num_src() != graph.num_nodes() {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: engine.num_src() as usize,
        });
    }
    let mut init = vec![f32::INFINITY; graph.num_nodes() as usize];
    init[source as usize] = 0.0;
    let r = run_to_fixpoint(engine, init, graph.num_nodes().max(1) as usize)?;
    debug_assert!(r.converged);
    Ok(r.state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::erdos_renyi;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Dijkstra oracle (f64 accumulation, ordered by bit-exact f32 sums
    /// is unnecessary — we compare with tolerance).
    fn oracle(graph: &Csr, weights: &EdgeWeights, source: u32) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let mut dist = vec![f64::INFINITY; n];
        dist[source as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, source)));
        while let Some(Reverse((du_bits, u))) = heap.pop() {
            let du = f64::from_bits(du_bits);
            if du > dist[u as usize] {
                continue;
            }
            let base = graph.offsets()[u as usize];
            for (i, &t) in graph.neighbors(u).iter().enumerate() {
                let alt = du + f64::from(weights.get(base + i as u64));
                if alt < dist[t as usize] {
                    dist[t as usize] = alt;
                    heap.push(Reverse((alt.to_bits(), t)));
                }
            }
        }
        dist
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        let g = erdos_renyi(300, 2400, 21).unwrap();
        let w = EdgeWeights::random(&g, 4);
        let cfg = PcpmConfig::default().with_partition_bytes(128);
        let got = sssp(&g, &w, 0, &cfg).unwrap();
        let want = oracle(&g, &w, 0);
        for (v, (&a, &b)) in got.iter().zip(&want).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "node {v} should be unreachable");
            } else {
                assert!((f64::from(a) - b).abs() < 1e-4, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let g = Csr::from_edges(3, &[(0, 1)]).unwrap();
        let w = EdgeWeights::ones(&g);
        let dist = sssp(&g, &w, 0, &PcpmConfig::default()).unwrap();
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
        assert!(dist[2].is_infinite());
    }

    #[test]
    fn negative_weights_rejected() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        let w = EdgeWeights::new(&g, vec![-1.0]).unwrap();
        assert!(sssp(&g, &w, 0, &PcpmConfig::default()).is_err());
    }

    #[test]
    fn unit_weights_equal_bfs_levels() {
        let g = erdos_renyi(200, 1200, 8).unwrap();
        let w = EdgeWeights::ones(&g);
        let cfg = PcpmConfig::default().with_partition_bytes(128);
        let dist = sssp(&g, &w, 5, &cfg).unwrap();
        let levels = crate::bfs::bfs_levels(&g, 5, &cfg).unwrap();
        for (v, (&d, &l)) in dist.iter().zip(&levels).enumerate() {
            if l == crate::bfs::UNREACHED {
                assert!(d.is_infinite(), "node {v}");
            } else {
                assert_eq!(d as u32, l, "node {v}");
            }
        }
    }
}
