//! Weighted PageRank: transition probability proportional to edge weight.
//!
//! The §3.5 weighted extension end to end: weights ride in the destID
//! bins, the gather multiplies them into the updates, and the apply step
//! scales each vertex by its total outgoing weight instead of its
//! out-degree.

use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{BackendKind, Engine};
use pcpm_core::config::PcpmConfig;
use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::{Csr, EdgeWeights};
use rayon::prelude::*;

/// Runs PageRank where a surfer follows edge `(u, v)` with probability
/// `w(u,v) / Σ_t w(u,t)`. Weights must be non-negative; nodes whose
/// outgoing weight sums to zero are treated as dangling.
pub fn weighted_pagerank(
    graph: &Csr,
    weights: &EdgeWeights,
    cfg: &PcpmConfig,
) -> Result<PrResult, PcpmError> {
    weighted_pagerank_on(graph, weights, cfg, BackendKind::Pcpm)
}

/// As [`weighted_pagerank`], through any backend dataplane (the weights
/// ride in whatever auxiliary stream the backend builds).
pub fn weighted_pagerank_on(
    graph: &Csr,
    weights: &EdgeWeights,
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<PrResult, PcpmError> {
    // Reject bad weights before paying for the engine prepare.
    validate_weights(weights)?;
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .weights(weights)
        .backend(backend)
        .build()?;
    weighted_pagerank_with_unified_engine(graph, weights, cfg, &mut engine)
}

fn validate_weights(weights: &EdgeWeights) -> Result<(), PcpmError> {
    if weights.as_slice().iter().any(|&w| w < 0.0) {
        return Err(PcpmError::BadConfig(
            "weighted pagerank requires non-negative weights",
        ));
    }
    Ok(())
}

/// As [`weighted_pagerank_on`], on a pre-built unified engine (prepared
/// with the same `weights`) — lets callers keep the engine around to
/// read its [`ExecutionReport`](pcpm_core::ExecutionReport) afterwards
/// or amortize pre-processing.
pub fn weighted_pagerank_with_unified_engine(
    graph: &Csr,
    weights: &EdgeWeights,
    cfg: &PcpmConfig,
    engine: &mut Engine<PlusF32>,
) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    validate_weights(weights)?;
    let n = graph.num_nodes() as usize;
    if engine.num_src() as usize != n || engine.num_dst() as usize != n {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    // An engine that was demonstrably prepared *without* weights would
    // silently compute unweighted ranks — refuse instead.
    if engine.prepared_weighted() == Some(false) {
        return Err(PcpmError::BadConfig(
            "weighted pagerank needs an engine built with .weights(..)",
        ));
    }
    let damping = cfg.damping as f32;
    let base = if n == 0 {
        0.0
    } else {
        ((1.0 - cfg.damping) / n as f64) as f32
    };

    // Total outgoing weight per node (the weighted out-degree).
    let mut out_weight = vec![0.0f64; n];
    for v in 0..graph.num_nodes() {
        out_weight[v as usize] = weights.row(graph, v).iter().map(|&w| f64::from(w)).sum();
    }
    let inv_weight: Vec<f32> = out_weight
        .iter()
        .map(|&w| if w > 0.0 { (1.0 / w) as f32 } else { 0.0 })
        .collect();

    let mut pr = vec![1.0 / n.max(1) as f32; n];
    let mut x: Vec<f32> = pr.iter().zip(&inv_weight).map(|(&p, &i)| p * i).collect();
    let mut sums = vec![0.0f32; n];
    let mut timings = PhaseTimings::default();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut last_delta = f64::INFINITY;

    engine.run(|engine| -> Result<(), PcpmError> {
        for _ in 0..cfg.iterations {
            timings += engine.step(&x, &mut sums)?;
            let t0 = pcpm_core::telemetry::stopwatch();
            let bonus = if cfg.redistribute_dangling {
                let mass: f64 = pr
                    .par_iter()
                    .zip(&inv_weight)
                    .filter(|(_, &i)| i == 0.0)
                    .map(|(&p, _)| f64::from(p))
                    .sum();
                (cfg.damping * mass / n as f64) as f32
            } else {
                0.0
            };
            let delta: f64 = pr
                .par_iter_mut()
                .zip(&sums)
                .map(|(p, &s)| {
                    let new = base + damping * s + bonus;
                    let d = f64::from((new - *p).abs());
                    *p = new;
                    d
                })
                .sum();
            x.par_iter_mut()
                .zip(&pr)
                .zip(&inv_weight)
                .for_each(|((xv, &p), &i)| *xv = p * i);
            timings.apply += t0.elapsed();
            iterations += 1;
            last_delta = delta;
            if let Some(tol) = cfg.tolerance {
                if delta < tol {
                    converged = true;
                    break;
                }
            }
        }
        Ok(())
    })?;

    let report = engine.report();
    Ok(PrResult {
        scores: pr,
        iterations,
        converged,
        last_delta,
        timings,
        preprocess: report.preprocess,
        compression_ratio: report.compression_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    fn oracle(graph: &Csr, weights: &EdgeWeights, cfg: &PcpmConfig) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let d = cfg.damping;
        let mut out_w = vec![0.0f64; n];
        for v in 0..graph.num_nodes() {
            out_w[v as usize] = weights.row(graph, v).iter().map(|&w| f64::from(w)).sum();
        }
        let mut pr = vec![1.0 / n as f64; n];
        for _ in 0..cfg.iterations {
            let mut sums = vec![0.0f64; n];
            let mut idx = 0usize;
            for v in 0..graph.num_nodes() {
                for &t in graph.neighbors(v) {
                    if out_w[v as usize] > 0.0 {
                        sums[t as usize] +=
                            pr[v as usize] * f64::from(weights.as_slice()[idx]) / out_w[v as usize];
                    }
                    idx += 1;
                }
            }
            for v in 0..n {
                pr[v] = (1.0 - d) / n as f64 + d * sums[v];
            }
        }
        pr
    }

    #[test]
    fn matches_serial_weighted_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 55)).unwrap();
        let w = EdgeWeights::random(&g, 9);
        let cfg = PcpmConfig::default()
            .with_iterations(12)
            .with_partition_bytes(512);
        let got = weighted_pagerank(&g, &w, &cfg).unwrap();
        let want = oracle(&g, &w, &cfg);
        let scale = want.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        for (v, (&a, &b)) in got.scores.iter().zip(&want).enumerate() {
            assert!(
                (f64::from(a) - b).abs() < 2e-3 * scale,
                "node {v}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn unit_weights_reduce_to_plain_pagerank() {
        let g = erdos_renyi(300, 2400, 14).unwrap();
        let w = EdgeWeights::ones(&g);
        let cfg = PcpmConfig::default().with_iterations(10);
        let weighted = weighted_pagerank(&g, &w, &cfg).unwrap();
        let plain = pcpm_core::pagerank::pagerank(&g, &cfg).unwrap();
        for (v, (&a, &b)) in weighted.scores.iter().zip(&plain.scores).enumerate() {
            assert!((a - b).abs() < 1e-6, "node {v}: {a} vs {b}");
        }
    }

    #[test]
    fn heavier_edges_attract_more_rank() {
        // 0 splits its rank between 1 (weight 9) and 2 (weight 1).
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 0), (2, 0)]).unwrap();
        let w = EdgeWeights::new(&g, vec![9.0, 1.0, 1.0, 1.0]).unwrap();
        let r = weighted_pagerank(&g, &w, &PcpmConfig::default().with_iterations(50)).unwrap();
        assert!(r.scores[1] > 2.0 * r.scores[2], "{:?}", r.scores);
    }

    #[test]
    fn negative_weights_rejected() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        let w = EdgeWeights::new(&g, vec![-0.5]).unwrap();
        assert!(weighted_pagerank(&g, &w, &PcpmConfig::default()).is_err());
    }

    #[test]
    fn unweighted_engine_rejected() {
        // Passing an engine built WITHOUT .weights(..) must error, not
        // silently return unweighted ranks.
        let g = erdos_renyi(50, 200, 4).unwrap();
        let w = EdgeWeights::random(&g, 1);
        let cfg = PcpmConfig::default().with_iterations(3);
        let mut unweighted = Engine::<PlusF32>::builder(&g).config(cfg).build().unwrap();
        assert!(matches!(
            weighted_pagerank_with_unified_engine(&g, &w, &cfg, &mut unweighted),
            Err(PcpmError::BadConfig(_))
        ));
        let mut weighted = Engine::<PlusF32>::builder(&g)
            .config(cfg)
            .weights(&w)
            .build()
            .unwrap();
        assert!(weighted_pagerank_with_unified_engine(&g, &w, &cfg, &mut weighted).is_ok());
    }

    #[test]
    fn zero_weight_rows_are_dangling() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = EdgeWeights::new(&g, vec![1.0, 0.0]).unwrap();
        let r = weighted_pagerank(&g, &w, &PcpmConfig::default().with_iterations(10)).unwrap();
        // Node 1's only out-edge has zero weight: node 2 receives only
        // teleport mass.
        let teleport_only = (1.0 - 0.85) / 3.0;
        assert!(
            (r.scores[2] - teleport_only as f32).abs() < 1e-6,
            "{:?}",
            r.scores
        );
    }
}
