//! [`Backend`] implementations for the baseline kernels, plugging the
//! PDPR, BVGAS, edge-centric and grid dataplanes into the unified
//! [`Engine`] so every algorithm in `pcpm-algos` can run on them.
//!
//! These baselines are `f32` PageRank kernels, so they implement
//! `Backend<PlusF32>` only (the algebra-generic pull / push /
//! edge-centric dataplanes live in `pcpm_core::backend`). None of them
//! support edge weights; `prepare` rejects a weighted spec rather than
//! silently dropping the weights.
//!
//! # Examples
//!
//! ```
//! use pcpm_graph::gen::erdos_renyi;
//! use pcpm_baselines::backend_impls::bvgas_engine;
//! use pcpm_core::PcpmConfig;
//!
//! let g = erdos_renyi(100, 600, 1).unwrap();
//! let mut engine = bvgas_engine(&g, &PcpmConfig::default().with_partition_bytes(64 * 4)).unwrap();
//! let x = vec![1.0f32; 100];
//! let mut y = vec![0.0f32; 100];
//! engine.step(&x, &mut y).unwrap();
//! assert_eq!(engine.report().backend, "bvgas");
//! ```

use crate::bvgas::BvgasRunner;
use crate::edge_centric::EdgeCentricRunner;
use crate::grid::GridRunner;
use crate::pdpr::PdprRunner;
use pcpm_core::algebra::PlusF32;
use pcpm_core::backend::{Backend, BackendMetrics, Engine, PrepareSpec};
use pcpm_core::error::PcpmError;
use pcpm_core::pr::PhaseTimings;
use pcpm_core::PcpmConfig;
use pcpm_graph::Csr;
use std::time::{Duration, Instant};

fn reject_weights(spec: &PrepareSpec<'_>, kernel: &'static str) -> Result<(), PcpmError> {
    if spec.weights.is_some() {
        return Err(PcpmError::BadConfig(kernel));
    }
    Ok(())
}

/// PDPR's pull dataplane behind the [`Backend`] trait.
pub struct PdprBackend {
    runner: PdprRunner,
}

impl Backend<PlusF32> for PdprBackend {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        reject_weights(spec, "the pdpr baseline does not support edge weights")?;
        Ok(Self {
            runner: PdprRunner::new(spec.graph),
        })
    }

    fn step(&mut self, x: &[f32], y: &mut [f32]) -> Result<PhaseTimings, PcpmError> {
        let t0 = Instant::now();
        self.runner.propagate_once(x, y);
        Ok(PhaseTimings {
            scatter: Duration::ZERO,
            gather: t0.elapsed(),
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "pdpr",
            preprocess: self.runner.transpose_time(),
            aux_memory_bytes: self.runner.aux_memory_bytes(),
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

/// BVGAS (Algorithm 5) behind the [`Backend`] trait.
pub struct BvgasBackend {
    runner: BvgasRunner,
    graph: Csr,
    updates: Vec<f32>,
}

impl Backend<PlusF32> for BvgasBackend {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        reject_weights(spec, "the bvgas baseline does not support edge weights")?;
        let runner = BvgasRunner::new(spec.graph, &spec.cfg)?;
        Ok(Self {
            runner,
            graph: spec.graph.clone(),
            updates: vec![0.0f32; spec.graph.num_edges() as usize],
        })
    }

    fn step(&mut self, x: &[f32], y: &mut [f32]) -> Result<PhaseTimings, PcpmError> {
        let (scatter, gather) = self
            .runner
            .propagate_once(&self.graph, x, &mut self.updates, y);
        Ok(PhaseTimings {
            scatter,
            gather,
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "bvgas",
            preprocess: self.runner.preprocess_time(),
            aux_memory_bytes: self.runner.aux_memory_bytes()
                + (self.updates.len() * 4) as u64
                + self.graph.memory_bytes(),
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

/// The edge-centric runner (destination-bin-sorted COO) behind the
/// [`Backend`] trait.
pub struct EdgeCentricRunnerBackend {
    runner: EdgeCentricRunner,
}

impl Backend<PlusF32> for EdgeCentricRunnerBackend {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        reject_weights(
            spec,
            "the edge-centric baseline does not support edge weights",
        )?;
        Ok(Self {
            runner: EdgeCentricRunner::new(spec.graph, &spec.cfg)?,
        })
    }

    fn step(&mut self, x: &[f32], y: &mut [f32]) -> Result<PhaseTimings, PcpmError> {
        let t0 = Instant::now();
        self.runner.propagate_once(x, y);
        Ok(PhaseTimings {
            scatter: Duration::ZERO,
            gather: t0.elapsed(),
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "edge_centric",
            preprocess: self.runner.preprocess_time(),
            aux_memory_bytes: self.runner.aux_memory_bytes(),
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

/// The 2D-blocked grid dataplane behind the [`Backend`] trait.
pub struct GridBackend {
    runner: GridRunner,
}

impl Backend<PlusF32> for GridBackend {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        reject_weights(spec, "the grid baseline does not support edge weights")?;
        Ok(Self {
            runner: GridRunner::new(spec.graph, &spec.cfg)?,
        })
    }

    fn step(&mut self, x: &[f32], y: &mut [f32]) -> Result<PhaseTimings, PcpmError> {
        let t0 = Instant::now();
        self.runner.propagate_once(x, y);
        Ok(PhaseTimings {
            scatter: Duration::ZERO,
            gather: t0.elapsed(),
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "grid",
            preprocess: self.runner.preprocess_time(),
            aux_memory_bytes: self.runner.aux_memory_bytes(),
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

fn baseline_engine<B: Backend<PlusF32> + 'static>(
    graph: &Csr,
    cfg: &PcpmConfig,
) -> Result<Engine<PlusF32>, PcpmError> {
    cfg.validate()?;
    let spec = PrepareSpec {
        graph,
        shared: None,
        weights: None,
        cfg: *cfg,
        scatter: Default::default(),
        gather: Default::default(),
    };
    // One engine-owned pool, built first and reused for the prepare and
    // every step — like EngineBuilder::build, so preprocess timings
    // compare apples-to-apples with the core backends and no throwaway
    // pool is spawned per construction.
    Engine::from_backend_with(cfg.threads, graph.num_nodes(), graph.num_nodes(), || {
        Ok(Box::new(B::prepare(&spec)?) as Box<dyn Backend<PlusF32>>)
    })
}

/// Builds a unified [`Engine`] over the PDPR pull dataplane.
pub fn pdpr_engine(graph: &Csr, cfg: &PcpmConfig) -> Result<Engine<PlusF32>, PcpmError> {
    baseline_engine::<PdprBackend>(graph, cfg)
}

/// Builds a unified [`Engine`] over the BVGAS dataplane.
pub fn bvgas_engine(graph: &Csr, cfg: &PcpmConfig) -> Result<Engine<PlusF32>, PcpmError> {
    baseline_engine::<BvgasBackend>(graph, cfg)
}

/// Builds a unified [`Engine`] over the edge-centric runner.
pub fn edge_centric_engine(graph: &Csr, cfg: &PcpmConfig) -> Result<Engine<PlusF32>, PcpmError> {
    baseline_engine::<EdgeCentricRunnerBackend>(graph, cfg)
}

/// Builds a unified [`Engine`] over the 2D grid dataplane.
pub fn grid_engine(graph: &Csr, cfg: &PcpmConfig) -> Result<Engine<PlusF32>, PcpmError> {
    baseline_engine::<GridBackend>(graph, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    fn reference(g: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            y[t as usize] += x[s as usize];
        }
        y
    }

    #[test]
    fn every_baseline_backend_matches_the_reference() {
        let g = rmat(&RmatConfig::graph500(9, 8, 35)).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
        // Integer-valued x keeps every f32 sum exact.
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 9) as f32).collect();
        let want = reference(&g, &x);
        let engines = [
            pdpr_engine(&g, &cfg).unwrap(),
            bvgas_engine(&g, &cfg).unwrap(),
            edge_centric_engine(&g, &cfg).unwrap(),
            grid_engine(&g, &cfg).unwrap(),
        ];
        for mut engine in engines {
            let name = engine.report().backend;
            let mut y = vec![0.0f32; g.num_nodes() as usize];
            engine.step(&x, &mut y).unwrap();
            assert_eq!(y, want, "backend {name}");
        }
    }

    #[test]
    fn pagerank_runs_through_baseline_backends() {
        use pcpm_core::pagerank::{pagerank, pagerank_with_unified_engine};
        let g = erdos_renyi(300, 2400, 21).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(64 * 4)
            .with_iterations(8);
        let want = pagerank(&g, &cfg).unwrap();
        for engine in [
            pdpr_engine(&g, &cfg).unwrap(),
            bvgas_engine(&g, &cfg).unwrap(),
            grid_engine(&g, &cfg).unwrap(),
        ] {
            let mut engine = engine;
            let r = pagerank_with_unified_engine(&g, &cfg, &mut engine, None).unwrap();
            for (v, (a, b)) in r.scores.iter().zip(&want.scores).enumerate() {
                assert!((a - b).abs() < 1e-6, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn weighted_spec_is_rejected() {
        use pcpm_core::backend::PrepareSpec;
        let g = erdos_renyi(50, 200, 3).unwrap();
        let w = pcpm_graph::EdgeWeights::ones(&g);
        let spec = PrepareSpec {
            graph: &g,
            shared: None,
            weights: Some(w.as_slice()),
            cfg: PcpmConfig::default(),
            scatter: Default::default(),
            gather: Default::default(),
        };
        assert!(PdprBackend::prepare(&spec).is_err());
        assert!(BvgasBackend::prepare(&spec).is_err());
        assert!(EdgeCentricRunnerBackend::prepare(&spec).is_err());
        assert!(GridBackend::prepare(&spec).is_err());
    }
}
