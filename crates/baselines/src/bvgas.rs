//! Binning with Vertex-centric GAS — BVGAS (paper Algorithm 5, §3.6).
//!
//! The state-of-the-art baseline (Beamer et al. IPDPS'17, Buono et al.
//! ICS'16): the scatter phase traverses vertices and appends an
//! `(update, destination)` message to the bin owning the destination
//! (`bin = dest / q`); the gather phase drains one bin at a time. The
//! paper's implementation details (§5.2) are reproduced:
//!
//! - destination IDs are written **once** during pre-processing and reused
//!   every iteration (only updates are re-written);
//! - each worker owns a private memory space inside every bin, so the
//!   scatter is lock-free (static edge-balanced vertex ranges);
//! - updates are staged in 128-byte **write-combining buffers** and
//!   flushed a full cache line at a time, mimicking the AVX non-temporal
//!   store path of the original C++ code;
//! - the bin index uses a bit shift when the bin width is a power of two.
//!
//! Unlike PCPM, every edge carries its own message, so scatter traffic is
//! `Θ(m)` regardless of graph locality — the redundancy PCPM removes.

use crate::pdpr::{dangling_bonus, empty_result};
use pcpm_core::config::{run_with_threads, PcpmConfig};
use pcpm_core::error::PcpmError;
use pcpm_core::partition::split_by_lens;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Entries per write-combining buffer: 128 bytes of 4-byte updates, the
/// buffer size used in §5.2.
const WC_ENTRIES: usize = 32;

/// Pre-processed BVGAS state: bin sizing, per-(worker, bin) write offsets
/// and the destination-ID stream.
pub struct BvgasRunner {
    num_nodes: u32,
    /// Bin width `q` in nodes.
    bin_width: u32,
    /// Number of bins `B = ceil(n / q)`.
    num_bins: u32,
    /// Shift amount when `bin_width` is a power of two (§5.2), else fall
    /// back to division.
    shift: Option<u32>,
    /// Worker vertex ranges (length `T + 1` boundaries).
    bounds: Vec<u32>,
    /// Absolute start of segment `(t, b)` in the message arrays,
    /// flattened `t * B + b`; length `T * B + 1`.
    seg_off: Vec<u64>,
    /// Destination IDs, written once (thread-major, bin-minor layout).
    dest_ids: Vec<u32>,
    out_deg: Vec<u32>,
    preprocess: Duration,
}

impl BvgasRunner {
    /// Builds the runner with the default bin width (the config's
    /// partition byte budget) and one worker range per rayon thread.
    pub fn new(graph: &Csr, cfg: &PcpmConfig) -> Result<Self, PcpmError> {
        cfg.validate()?;
        Self::with_layout(
            graph,
            cfg.partition_nodes(),
            rayon::current_num_threads().max(1),
        )
    }

    /// Builds the runner with an explicit bin width and worker count.
    pub fn with_layout(graph: &Csr, bin_width: u32, workers: usize) -> Result<Self, PcpmError> {
        if bin_width == 0 {
            return Err(PcpmError::PartitionTooSmall);
        }
        if u64::from(graph.num_nodes()) > pcpm_graph::MAX_NODES {
            return Err(PcpmError::TooManyNodes(u64::from(graph.num_nodes())));
        }
        let t0 = Instant::now();
        let n = graph.num_nodes();
        let num_bins = if n == 0 { 0 } else { (n - 1) / bin_width + 1 };
        let shift = bin_width
            .is_power_of_two()
            .then(|| bin_width.trailing_zeros());
        let bounds = balanced_out_bounds(graph, workers);
        let t = bounds.len() - 1;
        let b = num_bins as usize;

        // Bin-size computation: edges from each worker range to each bin.
        let counts: Vec<Vec<u64>> = bounds
            .windows(2)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|w| {
                let mut c = vec![0u64; b];
                for v in w[0]..w[1] {
                    for &u in graph.neighbors(v) {
                        c[(u / bin_width) as usize] += 1;
                    }
                }
                c
            })
            .collect();
        let mut seg_off = Vec::with_capacity(t * b + 1);
        seg_off.push(0u64);
        for ct in &counts {
            for &c in ct {
                seg_off.push(seg_off.last().unwrap() + c);
            }
        }
        debug_assert_eq!(*seg_off.last().unwrap(), graph.num_edges());

        // Write the destination-ID stream once (first-iteration cost in
        // the paper; folded into pre-processing here).
        let mut dest_ids = vec![0u32; graph.num_edges() as usize];
        let region_lens: Vec<usize> = (0..t)
            .map(|ti| (seg_off[(ti + 1) * b] - seg_off[ti * b]) as usize)
            .collect();
        let regions = split_by_lens(&mut dest_ids, &region_lens);
        regions
            .into_par_iter()
            .enumerate()
            .for_each(|(ti, region)| {
                let base = seg_off[ti * b];
                let mut cursor: Vec<u64> = (0..b).map(|bi| seg_off[ti * b + bi] - base).collect();
                for v in bounds[ti]..bounds[ti + 1] {
                    for &u in graph.neighbors(v) {
                        let bi = (u / bin_width) as usize;
                        region[cursor[bi] as usize] = u;
                        cursor[bi] += 1;
                    }
                }
            });

        Ok(Self {
            num_nodes: n,
            bin_width,
            num_bins,
            shift,
            bounds,
            seg_off,
            dest_ids,
            out_deg: graph.out_degrees(),
            preprocess: t0.elapsed(),
        })
    }

    /// Bin width in nodes.
    pub fn bin_width(&self) -> u32 {
        self.bin_width
    }

    /// Number of bins.
    pub fn num_bins(&self) -> u32 {
        self.num_bins
    }

    /// Pre-processing time (bin sizing + offsets + destination IDs).
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess
    }

    /// Heap bytes of pre-processed state (destination-ID stream plus
    /// segment offsets), for cross-backend memory accounting. The
    /// per-iteration update stream is the caller's and counted there.
    pub fn aux_memory_bytes(&self) -> u64 {
        (self.dest_ids.len() * 4
            + self.seg_off.len() * 8
            + self.bounds.len() * 4
            + self.out_deg.len() * 4) as u64
    }

    #[inline]
    fn bin_of(&self, dest: u32) -> usize {
        match self.shift {
            Some(s) => (dest >> s) as usize,
            None => (dest / self.bin_width) as usize,
        }
    }

    /// One scatter+gather round over pre-scaled source values: appends
    /// every edge's message through the write-combining buffers, then
    /// drains the bins into `sums`. `updates` must hold `num_edges`
    /// entries and is reused across rounds. Returns (scatter, gather)
    /// wall-clock times. Shared by [`BvgasRunner::run`] and the unified
    /// `Backend` implementation.
    pub fn propagate_once(
        &self,
        graph: &Csr,
        x: &[f32],
        updates: &mut [f32],
        sums: &mut [f32],
    ) -> (Duration, Duration) {
        let b = self.num_bins as usize;
        let t = self.bounds.len() - 1;
        let t0 = Instant::now();
        let region_lens: Vec<usize> = (0..t)
            .map(|ti| (self.seg_off[(ti + 1) * b] - self.seg_off[ti * b]) as usize)
            .collect();
        let regions = split_by_lens(updates, &region_lens);
        regions
            .into_par_iter()
            .enumerate()
            .for_each(|(ti, region)| {
                self.scatter_worker(graph, ti, region, x);
            });
        let scatter_t = t0.elapsed();

        let t1 = Instant::now();
        let bin_lens: Vec<usize> = (0..self.num_bins)
            .map(|bi| {
                let lo = bi * self.bin_width;
                (self.num_nodes.min(lo + self.bin_width) - lo) as usize
            })
            .collect();
        let slices = split_by_lens(sums, &bin_lens);
        let updates = &*updates;
        slices.into_par_iter().enumerate().for_each(|(bi, ys)| {
            ys.fill(0.0);
            let bin_base = bi * self.bin_width as usize;
            for ti in 0..t {
                let lo = self.seg_off[ti * b + bi] as usize;
                let hi = self.seg_off[ti * b + bi + 1] as usize;
                for (&dest, &upd) in self.dest_ids[lo..hi].iter().zip(&updates[lo..hi]) {
                    ys[dest as usize - bin_base] += upd;
                }
            }
        });
        (scatter_t, t1.elapsed())
    }

    /// Runs PageRank with the BVGAS schedule.
    pub fn run(&self, graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
        cfg.validate()?;
        let n = self.num_nodes as usize;
        if graph.num_nodes() != self.num_nodes {
            return Err(PcpmError::DimensionMismatch {
                expected: n,
                got: graph.num_nodes() as usize,
            });
        }
        if n == 0 {
            return Ok(empty_result());
        }
        let damping = cfg.damping as f32;
        let base_add = ((1.0 - cfg.damping) / n as f64) as f32;
        let inv_deg: Vec<f32> = self
            .out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect();
        let mut pr: Vec<f32> = vec![1.0 / n as f32; n];
        let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
        let mut updates = vec![0.0f32; graph.num_edges() as usize];
        let mut timings = PhaseTimings::default();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut last_delta = f64::INFINITY;

        run_with_threads(cfg.threads, || {
            let mut sums = vec![0.0f32; n];
            for _ in 0..cfg.iterations {
                // Scatter messages through the write-combining buffers,
                // then drain the bins.
                let (scatter_t, gather_t) = self.propagate_once(graph, &x, &mut updates, &mut sums);
                timings.scatter += scatter_t;
                timings.gather += gather_t;

                // Apply.
                let t2 = Instant::now();
                let bonus = dangling_bonus(cfg, &pr, &self.out_deg, n);
                let delta: f64 = pr
                    .par_iter_mut()
                    .zip(&sums)
                    .map(|(p, &s)| {
                        let new = base_add + damping * s + bonus;
                        let d = f64::from((new - *p).abs());
                        *p = new;
                        d
                    })
                    .sum();
                x.par_iter_mut()
                    .zip(&pr)
                    .zip(&inv_deg)
                    .for_each(|((xv, &p), &i)| *xv = p * i);
                timings.apply += t2.elapsed();

                iterations += 1;
                last_delta = delta;
                if let Some(tol) = cfg.tolerance {
                    if delta < tol {
                        converged = true;
                        break;
                    }
                }
            }
        });

        Ok(PrResult {
            scores: pr,
            iterations,
            converged,
            last_delta,
            timings,
            preprocess: self.preprocess,
            compression_ratio: None,
        })
    }

    /// Scatter for one worker: vertex-centric traversal with per-bin
    /// write-combining buffers flushed one cache line at a time.
    fn scatter_worker(&self, graph: &Csr, ti: usize, region: &mut [f32], x: &[f32]) {
        let b = self.num_bins as usize;
        let base = self.seg_off[ti * b];
        let mut cursor: Vec<usize> = (0..b)
            .map(|bi| (self.seg_off[ti * b + bi] - base) as usize)
            .collect();
        // One 128-byte staging buffer per bin.
        let mut buf = vec![[0.0f32; WC_ENTRIES]; b];
        let mut fill = vec![0usize; b];
        for v in self.bounds[ti]..self.bounds[ti + 1] {
            let val = x[v as usize];
            for &u in graph.neighbors(v) {
                let bi = self.bin_of(u);
                buf[bi][fill[bi]] = val;
                fill[bi] += 1;
                if fill[bi] == WC_ENTRIES {
                    region[cursor[bi]..cursor[bi] + WC_ENTRIES].copy_from_slice(&buf[bi]);
                    cursor[bi] += WC_ENTRIES;
                    fill[bi] = 0;
                }
            }
        }
        for bi in 0..b {
            if fill[bi] > 0 {
                region[cursor[bi]..cursor[bi] + fill[bi]].copy_from_slice(&buf[bi][..fill[bi]]);
            }
        }
    }
}

/// Vertex chunk boundaries balanced by out-edge count (scatter work).
fn balanced_out_bounds(graph: &Csr, chunks: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let chunks = chunks.max(1) as u64;
    let offsets = graph.offsets();
    let mut bounds = vec![0u32];
    for c in 1..chunks {
        let target = m * c / chunks;
        let v = (offsets.partition_point(|&o| o < target) as u32).clamp(*bounds.last().unwrap(), n);
        bounds.push(v);
    }
    bounds.push(n);
    bounds
}

/// One-shot convenience wrapper: builds a [`BvgasRunner`] and runs it.
/// Prepare runs on the same shared pool the iterations use (one pool
/// per thread count, process-wide), so the worker-private bin layout
/// matches the pool that executes the scatter.
pub fn bvgas(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    run_with_threads(cfg.threads, || BvgasRunner::new(graph, cfg))?.run(graph, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_matches_oracle;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn matches_oracle_skewed() {
        let g = rmat(&RmatConfig::graph500(9, 8, 10)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(8);
        let r = bvgas(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
    }

    #[test]
    fn matches_oracle_various_bin_widths() {
        let g = erdos_renyi(500, 4000, 4).unwrap();
        let cfg = PcpmConfig::default().with_iterations(6);
        for (q, workers) in [(1u32, 1usize), (17, 3), (64, 4), (1024, 2)] {
            let runner = BvgasRunner::with_layout(&g, q, workers).unwrap();
            let r = runner.run(&g, &cfg).unwrap();
            assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
        }
    }

    #[test]
    fn power_of_two_shift_equals_division() {
        let g = erdos_renyi(300, 2000, 11).unwrap();
        let cfg = PcpmConfig::default().with_iterations(4);
        let pow2 = BvgasRunner::with_layout(&g, 64, 2)
            .unwrap()
            .run(&g, &cfg)
            .unwrap();
        let div = BvgasRunner::with_layout(&g, 65, 2)
            .unwrap()
            .run(&g, &cfg)
            .unwrap();
        // Different binning, same mathematical result.
        for (a, b) in pow2.scores.iter().zip(&div.scores) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(BvgasRunner::with_layout(&g, 64, 2).unwrap().shift.is_some());
        assert!(BvgasRunner::with_layout(&g, 65, 2).unwrap().shift.is_none());
    }

    #[test]
    fn worker_count_does_not_change_result() {
        let g = rmat(&RmatConfig::graph500(8, 6, 3)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(5);
        let r1 = BvgasRunner::with_layout(&g, 32, 1)
            .unwrap()
            .run(&g, &cfg)
            .unwrap();
        let r8 = BvgasRunner::with_layout(&g, 32, 8)
            .unwrap()
            .run(&g, &cfg)
            .unwrap();
        // Gather order within a bin changes with worker layout, but f32
        // addition differences stay tiny at this scale.
        for (a, b) in r1.scores.iter().zip(&r8.scores) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn message_stream_covers_every_edge() {
        let g = erdos_renyi(100, 700, 8).unwrap();
        let runner = BvgasRunner::with_layout(&g, 16, 3).unwrap();
        assert_eq!(runner.dest_ids.len() as u64, g.num_edges());
        // Every destination must appear with its exact in-degree.
        let mut counts = vec![0u32; 100];
        for &d in &runner.dest_ids {
            counts[d as usize] += 1;
        }
        assert_eq!(counts, g.in_degrees());
    }

    #[test]
    fn zero_bin_width_rejected() {
        let g = erdos_renyi(10, 20, 1).unwrap();
        assert!(BvgasRunner::with_layout(&g, 0, 1).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let r = bvgas(&g, &PcpmConfig::default()).unwrap();
        assert!(r.scores.is_empty());
    }
}
