//! Edge-centric GAS baseline (X-Stream / Zhou et al. style, paper §2.2).
//!
//! The Edge-centric variant of binning GAS streams a COO edge list
//! instead of walking a CSR: the scatter reads *both* endpoints of every
//! edge (`2·di` instead of amortized `di` per edge), which is exactly why
//! the paper's related-work section finds it communicates more than the
//! CSR-based Vertex-centric implementations. Kept as a secondary baseline
//! for that comparison.
//!
//! The edge list is pre-sorted by destination bin (Zhou et al.'s custom
//! sorted layout) during construction, so the scatter streams one bin's
//! messages at a time and the gather is a single sequential scan.

use crate::pdpr::{dangling_bonus, empty_result};
use pcpm_core::config::{run_with_threads, PcpmConfig};
use pcpm_core::error::PcpmError;
use pcpm_core::partition::split_by_lens;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Pre-processed edge-centric state: the bin-sorted COO list.
pub struct EdgeCentricRunner {
    num_nodes: u32,
    bin_width: u32,
    num_bins: u32,
    /// Edge sources, sorted by destination bin (stable within a bin).
    src: Vec<u32>,
    /// Edge destinations, aligned with [`Self::src`].
    dst: Vec<u32>,
    /// `num_bins + 1` offsets into the sorted arrays.
    bin_off: Vec<u64>,
    out_deg: Vec<u32>,
    preprocess: Duration,
}

impl EdgeCentricRunner {
    /// Sorts the edge list by destination bin.
    pub fn new(graph: &Csr, cfg: &PcpmConfig) -> Result<Self, PcpmError> {
        cfg.validate()?;
        let bin_width = cfg.partition_nodes();
        let t0 = Instant::now();
        let n = graph.num_nodes();
        let num_bins = if n == 0 { 0 } else { (n - 1) / bin_width + 1 };
        let m = graph.num_edges() as usize;
        let mut counts = vec![0u64; num_bins as usize];
        for (_, t) in graph.edges() {
            counts[(t / bin_width) as usize] += 1;
        }
        let mut bin_off = vec![0u64; num_bins as usize + 1];
        for b in 0..num_bins as usize {
            bin_off[b + 1] = bin_off[b] + counts[b];
        }
        let mut src = vec![0u32; m];
        let mut dst = vec![0u32; m];
        let mut cursor = bin_off.clone();
        for (s, t) in graph.edges() {
            let c = &mut cursor[(t / bin_width) as usize];
            src[*c as usize] = s;
            dst[*c as usize] = t;
            *c += 1;
        }
        Ok(Self {
            num_nodes: n,
            bin_width,
            num_bins,
            src,
            dst,
            bin_off,
            out_deg: graph.out_degrees(),
            preprocess: t0.elapsed(),
        })
    }

    /// Pre-processing (edge sort) time.
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess
    }

    /// Heap bytes of pre-processed state (the bin-sorted COO copy), for
    /// cross-backend memory accounting.
    pub fn aux_memory_bytes(&self) -> u64 {
        (self.src.len() * 4 + self.dst.len() * 4 + self.bin_off.len() * 8 + self.out_deg.len() * 4)
            as u64
    }

    /// One combined scatter+gather round over pre-scaled source values:
    /// stream each bin's edges, reading `x[src]` (random) and
    /// accumulating into the bin's cached sum range. Parallel over bins —
    /// destination ownership is exclusive per bin. Shared by
    /// [`EdgeCentricRunner::run`] and the unified `Backend`
    /// implementation.
    pub fn propagate_once(&self, x: &[f32], sums: &mut [f32]) {
        let bin_lens: Vec<usize> = (0..self.num_bins)
            .map(|b| {
                let lo = b * self.bin_width;
                (self.num_nodes.min(lo + self.bin_width) - lo) as usize
            })
            .collect();
        let slices = split_by_lens(sums, &bin_lens);
        slices.into_par_iter().enumerate().for_each(|(b, ys)| {
            ys.fill(0.0);
            let lo = self.bin_off[b] as usize;
            let hi = self.bin_off[b + 1] as usize;
            let bin_base = b as u32 * self.bin_width;
            for i in lo..hi {
                ys[(self.dst[i] - bin_base) as usize] += x[self.src[i] as usize];
            }
        });
    }

    /// Runs PageRank with edge-centric streaming.
    pub fn run(&self, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
        cfg.validate()?;
        let n = self.num_nodes as usize;
        if n == 0 {
            return Ok(empty_result());
        }
        let damping = cfg.damping as f32;
        let base = ((1.0 - cfg.damping) / n as f64) as f32;
        let inv_deg: Vec<f32> = self
            .out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect();
        let mut pr = vec![1.0 / n as f32; n];
        let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
        let mut timings = PhaseTimings::default();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut last_delta = f64::INFINITY;

        run_with_threads(cfg.threads, || {
            let mut sums = vec![0.0f32; n];
            for _ in 0..cfg.iterations {
                let t0 = Instant::now();
                self.propagate_once(&x, &mut sums);
                timings.gather += t0.elapsed();

                let t1 = Instant::now();
                let bonus = dangling_bonus(cfg, &pr, &self.out_deg, n);
                let delta: f64 = pr
                    .par_iter_mut()
                    .zip(&sums)
                    .map(|(p, &s)| {
                        let new = base + damping * s + bonus;
                        let d = f64::from((new - *p).abs());
                        *p = new;
                        d
                    })
                    .sum();
                x.par_iter_mut()
                    .zip(&pr)
                    .zip(&inv_deg)
                    .for_each(|((xv, &p), &i)| *xv = p * i);
                timings.apply += t1.elapsed();

                iterations += 1;
                last_delta = delta;
                if let Some(tol) = cfg.tolerance {
                    if delta < tol {
                        converged = true;
                        break;
                    }
                }
            }
        });

        Ok(PrResult {
            scores: pr,
            iterations,
            converged,
            last_delta,
            timings,
            preprocess: self.preprocess,
            compression_ratio: None,
        })
    }
}

/// One-shot convenience wrapper. Prepare runs on the same shared pool
/// the iterations use (one pool per thread count, process-wide).
pub fn edge_centric(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    run_with_threads(cfg.threads, || EdgeCentricRunner::new(graph, cfg))?.run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_matches_oracle;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn matches_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 71)).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(1024)
            .with_iterations(8);
        let r = edge_centric(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
    }

    #[test]
    fn agrees_with_pdpr() {
        let g = erdos_renyi(400, 3200, 6).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(256)
            .with_iterations(10);
        let ec = edge_centric(&g, &cfg).unwrap();
        let pd = crate::pdpr::pdpr(&g, &cfg).unwrap();
        for (a, b) in ec.scores.iter().zip(&pd.scores) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn edges_are_sorted_by_bin() {
        let g = erdos_renyi(200, 1500, 9).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
        let runner = EdgeCentricRunner::new(&g, &cfg).unwrap();
        for b in 0..runner.num_bins as usize {
            for i in runner.bin_off[b] as usize..runner.bin_off[b + 1] as usize {
                assert_eq!(runner.dst[i] / runner.bin_width, b as u32);
            }
        }
        assert_eq!(*runner.bin_off.last().unwrap(), g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(edge_centric(&g, &PcpmConfig::default())
            .unwrap()
            .scores
            .is_empty());
    }
}
