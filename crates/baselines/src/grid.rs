//! Cache-blocked / GridGraph-style 2D-partitioned PageRank (paper §2.2).
//!
//! Cache Blocking [Williams et al., Nishtala et al.] and GridGraph [Zhu
//! et al., ATC'15] tile the adjacency matrix into a `k × k` grid of block
//! matrices. Processing destination-stripe `j` streams the source blocks
//! `(0, j), (1, j), …`: the source values of one block and the partial
//! sums of one stripe are both cache-resident, bounding the random-access
//! range just like PCPM's partitions — but **every block re-reads its
//! slice of the partial sums and re-scans its block structure**, the
//! sub-optimality the paper contrasts PCPM against ("the partial sums
//! [must] be re-read for each block", §2.2).
//!
//! Edges of block `(i, j)` are stored as a block-local CSR so the
//! traversal is sequential within a block; blocks in a stripe are
//! processed by the stripe's owning worker, making the phase lock-free.

use crate::pdpr::{dangling_bonus, empty_result};
use pcpm_core::config::{run_with_threads, PcpmConfig};
use pcpm_core::error::PcpmError;
use pcpm_core::partition::{split_by_lens, Partitioner};
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// One tile of the 2D grid: sources from block `i`, destinations in
/// stripe `j`, stored as a block-local CSR over the sources.
#[derive(Clone, Debug, Default)]
struct Block {
    /// Offsets over the `q` sources of the block (`len = q + 1`).
    offsets: Vec<u32>,
    /// Global destination IDs, grouped by block-local source.
    targets: Vec<u32>,
}

/// Pre-processed 2D-blocked state.
pub struct GridRunner {
    parts: Partitioner,
    /// Blocks in stripe-major order: `blocks[j * k + i]`.
    blocks: Vec<Block>,
    out_deg: Vec<u32>,
    preprocess: Duration,
}

impl GridRunner {
    /// Tiles the graph into `k × k` blocks of `cfg.partition_nodes()`
    /// wide stripes.
    pub fn new(graph: &Csr, cfg: &PcpmConfig) -> Result<Self, PcpmError> {
        cfg.validate()?;
        if u64::from(graph.num_nodes()) > pcpm_graph::MAX_NODES {
            return Err(PcpmError::TooManyNodes(u64::from(graph.num_nodes())));
        }
        let t0 = Instant::now();
        let parts = Partitioner::new(graph.num_nodes(), cfg.partition_nodes())?;
        let k = parts.num_partitions() as usize;
        let q = parts.partition_size();
        // Count edges per block, then fill per-block CSRs.
        let blocks: Vec<Block> = (0..(k * k) as u64)
            .into_par_iter()
            .map(|flat| {
                let j = (flat as usize) / k; // destination stripe
                let i = (flat as usize) % k; // source block
                let src_range = parts.range(i as u32);
                let lo = u64::from(j as u32 * q);
                let hi = lo + u64::from(q);
                let mut offsets = vec![0u32; (src_range.end - src_range.start) as usize + 1];
                for v in src_range.clone() {
                    let nbrs = graph.neighbors(v);
                    let a = nbrs.partition_point(|&t| u64::from(t) < lo);
                    let b = nbrs.partition_point(|&t| u64::from(t) < hi);
                    offsets[(v - src_range.start) as usize + 1] = (b - a) as u32;
                }
                for idx in 0..offsets.len() - 1 {
                    offsets[idx + 1] += offsets[idx];
                }
                let mut targets = vec![0u32; *offsets.last().unwrap() as usize];
                let mut cur = 0usize;
                for v in src_range.clone() {
                    let nbrs = graph.neighbors(v);
                    let a = nbrs.partition_point(|&t| u64::from(t) < lo);
                    let b = nbrs.partition_point(|&t| u64::from(t) < hi);
                    targets[cur..cur + (b - a)].copy_from_slice(&nbrs[a..b]);
                    cur += b - a;
                }
                Block { offsets, targets }
            })
            .collect();
        Ok(Self {
            parts,
            blocks,
            out_deg: graph.out_degrees(),
            preprocess: t0.elapsed(),
        })
    }

    /// Pre-processing (grid construction) time.
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess
    }

    /// Total edges across all blocks (equals the graph's edge count).
    pub fn num_grid_edges(&self) -> u64 {
        self.blocks.iter().map(|b| b.targets.len() as u64).sum()
    }

    /// Heap bytes of pre-processed state (the block-local CSRs), for
    /// cross-backend memory accounting.
    pub fn aux_memory_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| (b.offsets.len() * 4 + b.targets.len() * 4) as u64)
            .sum::<u64>()
            + (self.out_deg.len() * 4) as u64
    }

    /// One 2D-blocked round over pre-scaled source values: each stripe
    /// owner streams its source blocks, re-reading its partial-sum slice
    /// per block (the §2.2 sub-optimality). Shared by [`GridRunner::run`]
    /// and the unified `Backend` implementation.
    pub fn propagate_once(&self, x: &[f32], sums: &mut [f32]) {
        let k = self.parts.num_partitions() as usize;
        let stripe_lens = self.parts.lens();
        let stripes = split_by_lens(sums, &stripe_lens);
        stripes.into_par_iter().enumerate().for_each(|(j, ys)| {
            ys.fill(0.0);
            let stripe_base = self.parts.range(j as u32).start as usize;
            for i in 0..k {
                let block = &self.blocks[j * k + i];
                let src_base = self.parts.range(i as u32).start;
                for local in 0..block.offsets.len() - 1 {
                    let val = x[src_base as usize + local];
                    let lo = block.offsets[local] as usize;
                    let hi = block.offsets[local + 1] as usize;
                    for &t in &block.targets[lo..hi] {
                        ys[t as usize - stripe_base] += val;
                    }
                }
            }
        });
    }

    /// Runs PageRank with 2D-blocked traversal.
    pub fn run(&self, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
        cfg.validate()?;
        let n = self.parts.num_nodes() as usize;
        if n == 0 {
            return Ok(empty_result());
        }
        let damping = cfg.damping as f32;
        let base = ((1.0 - cfg.damping) / n as f64) as f32;
        let inv_deg: Vec<f32> = self
            .out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect();
        let mut pr = vec![1.0 / n as f32; n];
        let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
        let mut timings = PhaseTimings::default();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut last_delta = f64::INFINITY;

        run_with_threads(cfg.threads, || {
            let mut sums = vec![0.0f32; n];
            for _ in 0..cfg.iterations {
                let t0 = Instant::now();
                self.propagate_once(&x, &mut sums);
                timings.gather += t0.elapsed();

                let t1 = Instant::now();
                let bonus = dangling_bonus(cfg, &pr, &self.out_deg, n);
                let delta: f64 = pr
                    .par_iter_mut()
                    .zip(&sums)
                    .map(|(p, &s)| {
                        let new = base + damping * s + bonus;
                        let d = f64::from((new - *p).abs());
                        *p = new;
                        d
                    })
                    .sum();
                x.par_iter_mut()
                    .zip(&pr)
                    .zip(&inv_deg)
                    .for_each(|((xv, &p), &i)| *xv = p * i);
                timings.apply += t1.elapsed();

                iterations += 1;
                last_delta = delta;
                if let Some(tol) = cfg.tolerance {
                    if delta < tol {
                        converged = true;
                        break;
                    }
                }
            }
        });

        Ok(PrResult {
            scores: pr,
            iterations,
            converged,
            last_delta,
            timings,
            preprocess: self.preprocess,
            compression_ratio: None,
        })
    }
}

/// One-shot convenience wrapper. Prepare runs on the same shared pool
/// the iterations use (one pool per thread count, process-wide).
pub fn grid_pagerank(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    run_with_threads(cfg.threads, || GridRunner::new(graph, cfg))?.run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_matches_oracle;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn matches_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 81)).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(512)
            .with_iterations(8);
        let r = grid_pagerank(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
    }

    #[test]
    fn grid_covers_every_edge_exactly_once() {
        let g = erdos_renyi(300, 2000, 7).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
        let runner = GridRunner::new(&g, &cfg).unwrap();
        assert_eq!(runner.num_grid_edges(), g.num_edges());
    }

    #[test]
    fn block_size_does_not_change_result() {
        let g = erdos_renyi(200, 1600, 3).unwrap();
        let results: Vec<Vec<f32>> = [16usize, 128, 4096]
            .iter()
            .map(|&bytes| {
                let cfg = PcpmConfig::default()
                    .with_partition_bytes(bytes)
                    .with_iterations(6);
                grid_pagerank(&g, &cfg).unwrap().scores
            })
            .collect();
        for other in &results[1..] {
            for (a, b) in results[0].iter().zip(other) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn agrees_with_pcpm() {
        let g = rmat(&RmatConfig::graph500(8, 6, 82)).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(256)
            .with_iterations(10);
        let grid = grid_pagerank(&g, &cfg).unwrap();
        let pcpm = pcpm_core::pagerank::pagerank(&g, &cfg).unwrap();
        for (a, b) in grid.scores.iter().zip(&pcpm.scores) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(grid_pagerank(&g, &PcpmConfig::default())
            .unwrap()
            .scores
            .is_empty());
    }
}
