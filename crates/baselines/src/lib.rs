//! Baseline PageRank kernels the paper compares against.
//!
//! - [`reference`] — a serial, f64-accumulating oracle used by every test
//!   in the workspace;
//! - [`pdpr`] — Pull-Direction PageRank (Algorithm 1), the conventional
//!   CSC-based kernel with edge-balanced static parallelism;
//! - [`push`] — push-direction PageRank with atomic partial sums, the
//!   secondary baseline motivating the GAS decoupling;
//! - [`bvgas`] — Binning with Vertex-centric GAS (Algorithm 5), the
//!   state-of-the-art the paper benchmarks PCPM against, with the
//!   implementation details of §3.6/§5.2 (write-combining buffers,
//!   destination IDs written once, per-thread bin spaces).
//!
//! All kernels share the scaled-value and dangling-node conventions of
//! `pcpm-core`, so their outputs are directly comparable. Each runner's
//! dataplane also implements the unified
//! [`pcpm_core::Backend`] trait (see [`backend_impls`]), so every
//! algorithm in `pcpm-algos` can execute on a baseline for
//! apples-to-apples ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend_impls;
pub mod bvgas;
pub mod edge_centric;
pub mod grid;
pub mod pdpr;
pub mod push;
pub mod reference;

pub use backend_impls::{
    bvgas_engine, edge_centric_engine, grid_engine, pdpr_engine, BvgasBackend, GridBackend,
    PdprBackend,
};
pub use bvgas::{bvgas, BvgasRunner};
pub use edge_centric::{edge_centric, EdgeCentricRunner};
pub use grid::{grid_pagerank, GridRunner};
pub use pdpr::{pdpr, PdprRunner};
pub use push::push_pagerank;
pub use reference::serial_pagerank;
