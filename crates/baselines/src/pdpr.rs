//! Pull-Direction PageRank (paper Algorithm 1).
//!
//! Each vertex pulls the scaled values of its in-neighbors — a column-major
//! traversal of the adjacency matrix over the CSC (here: the transpose
//! CSR). Columns own their outputs, so the traversal is embarrassingly
//! parallel and needs no partial-sum storage; the cost is fine-grained
//! random reads into the source-value vector, the paper's Fig. 1 traffic
//! culprit.
//!
//! Parallelization matches §5.2: vertices are statically divided into
//! chunks balanced by *in-edge count* (the work driver), one chunk per
//! worker slot.

use pcpm_core::config::{run_with_threads, PcpmConfig};
use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Pre-processed state for repeated PDPR runs: the transpose (CSC) and
/// edge-balanced chunk boundaries.
///
/// The paper assumes CSR and CSC are both available as inputs, so
/// [`PrResult::preprocess`] is reported as zero for this kernel; the
/// transpose cost is visible via [`PdprRunner::transpose_time`].
pub struct PdprRunner {
    csc: Csr,
    out_deg: Vec<u32>,
    /// Chunk boundaries over vertices (length `chunks + 1`).
    bounds: Vec<u32>,
    transpose_time: Duration,
}

impl PdprRunner {
    /// Transposes the graph and computes edge-balanced chunk boundaries.
    pub fn new(graph: &Csr) -> Self {
        Self::with_chunks(graph, (rayon::current_num_threads() * 8).max(1))
    }

    /// As [`PdprRunner::new`] with an explicit chunk count.
    pub fn with_chunks(graph: &Csr, chunks: usize) -> Self {
        let t0 = Instant::now();
        let csc = graph.transpose();
        let transpose_time = t0.elapsed();
        let out_deg = graph.out_degrees();
        let bounds = balanced_bounds(&csc, chunks);
        Self {
            csc,
            out_deg,
            bounds,
            transpose_time,
        }
    }

    /// Wall-clock time spent building the transpose.
    pub fn transpose_time(&self) -> Duration {
        self.transpose_time
    }

    /// Heap bytes of pre-processed state (the CSC transpose plus chunk
    /// bookkeeping), for cross-backend memory accounting.
    pub fn aux_memory_bytes(&self) -> u64 {
        self.csc.memory_bytes() + (self.out_deg.len() * 4) as u64 + (self.bounds.len() * 4) as u64
    }

    /// One pull round over pre-scaled source values: `sums[v] = Σ x[u]`
    /// over in-neighbors `u` of `v` — the kernel's dataplane, shared by
    /// [`PdprRunner::run`] and the unified `Backend` implementation.
    pub fn propagate_once(&self, x: &[f32], sums: &mut [f32]) {
        let chunk_lens: Vec<usize> = self
            .bounds
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect();
        let slices = pcpm_core::partition::split_by_lens(sums, &chunk_lens);
        slices.into_par_iter().enumerate().for_each(|(c, out)| {
            let lo = self.bounds[c];
            for (i, v) in (lo..self.bounds[c + 1]).enumerate() {
                let mut temp = 0.0f32;
                for &u in self.csc.neighbors(v) {
                    temp += x[u as usize];
                }
                out[i] = temp;
            }
        });
    }

    /// Runs PageRank in the pull direction.
    pub fn run(&self, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
        cfg.validate()?;
        let n = self.csc.num_nodes() as usize;
        if n == 0 {
            return Ok(empty_result());
        }
        let damping = cfg.damping as f32;
        let base = ((1.0 - cfg.damping) / n as f64) as f32;
        let inv_deg: Vec<f32> = self
            .out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect();
        let mut pr: Vec<f32> = vec![1.0 / n as f32; n];
        let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
        let mut timings = PhaseTimings::default();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut last_delta = f64::INFINITY;

        run_with_threads(cfg.threads, || {
            let mut next = vec![0.0f32; n];
            for _ in 0..cfg.iterations {
                let t0 = Instant::now();
                // Pull: each chunk owns a contiguous output range.
                self.propagate_once(&x, &mut next);
                timings.gather += t0.elapsed();

                let t1 = Instant::now();
                let dangling_bonus = dangling_bonus(cfg, &pr, &self.out_deg, n);
                let delta: f64 = pr
                    .par_iter_mut()
                    .zip(&next)
                    .map(|(p, &s)| {
                        let new = base + damping * s + dangling_bonus;
                        let d = f64::from((new - *p).abs());
                        *p = new;
                        d
                    })
                    .sum();
                x.par_iter_mut()
                    .zip(&pr)
                    .zip(&inv_deg)
                    .for_each(|((xv, &p), &i)| *xv = p * i);
                timings.apply += t1.elapsed();

                iterations += 1;
                last_delta = delta;
                if let Some(tol) = cfg.tolerance {
                    if delta < tol {
                        converged = true;
                        break;
                    }
                }
            }
        });

        Ok(PrResult {
            scores: pr,
            iterations,
            converged,
            last_delta,
            timings,
            preprocess: Duration::ZERO,
            compression_ratio: None,
        })
    }
}

/// Computes the per-node dangling bonus for this iteration.
pub(crate) fn dangling_bonus(cfg: &PcpmConfig, pr: &[f32], out_deg: &[u32], n: usize) -> f32 {
    if cfg.redistribute_dangling {
        let mass: f64 = pr
            .iter()
            .zip(out_deg)
            .filter(|(_, &d)| d == 0)
            .map(|(&p, _)| f64::from(p))
            .sum();
        (cfg.damping * mass / n as f64) as f32
    } else {
        0.0
    }
}

pub(crate) fn empty_result() -> PrResult {
    PrResult {
        scores: vec![],
        iterations: 0,
        converged: true,
        last_delta: 0.0,
        timings: PhaseTimings::default(),
        preprocess: Duration::ZERO,
        compression_ratio: None,
    }
}

/// Splits vertices into `chunks` contiguous ranges with roughly equal
/// in-edge counts (static load balancing on traversed edges, §5.2).
fn balanced_bounds(csc: &Csr, chunks: usize) -> Vec<u32> {
    let n = csc.num_nodes();
    let m = csc.num_edges();
    let chunks = chunks.max(1) as u64;
    let mut bounds = Vec::with_capacity(chunks as usize + 1);
    bounds.push(0u32);
    let offsets = csc.offsets();
    for c in 1..chunks {
        let target = m * c / chunks;
        // First vertex whose offset reaches the target, at least past the
        // previous bound.
        let v = offsets.partition_point(|&o| o < target) as u32;
        let v = v.clamp(*bounds.last().unwrap(), n);
        bounds.push(v);
    }
    bounds.push(n);
    bounds
}

/// One-shot convenience wrapper: builds a [`PdprRunner`] and runs it.
pub fn pdpr(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    // Prepare on the same shared pool the iterations run on: one pool
    // per thread count for the whole process, not one per call.
    run_with_threads(cfg.threads, || PdprRunner::new(graph)).run(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_matches_oracle;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn matches_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 6)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(8);
        let r = pdpr(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
    }

    #[test]
    fn matches_oracle_with_dangling_redistribution() {
        let g = erdos_renyi(300, 900, 2).unwrap();
        let mut cfg = PcpmConfig::default().with_iterations(10);
        cfg.redistribute_dangling = true;
        let r = pdpr(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 1e-3);
    }

    #[test]
    fn chunk_count_does_not_change_result() {
        let g = erdos_renyi(500, 4000, 9).unwrap();
        let cfg = PcpmConfig::default().with_iterations(5);
        let r1 = PdprRunner::with_chunks(&g, 1).run(&cfg).unwrap();
        let r64 = PdprRunner::with_chunks(&g, 64).run(&cfg).unwrap();
        // Pull accumulation per vertex is sequential within the vertex, so
        // chunking cannot change the result at all.
        assert_eq!(r1.scores, r64.scores);
    }

    #[test]
    fn balanced_bounds_cover_and_balance() {
        let g = rmat(&RmatConfig::graph500(10, 8, 3)).unwrap();
        let csc = g.transpose();
        let bounds = balanced_bounds(&csc, 8);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), g.num_nodes());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        // Each chunk's edge load should be within 2x of the ideal share.
        let offsets = csc.offsets();
        let ideal = g.num_edges() as f64 / 8.0;
        for w in bounds.windows(2) {
            let load = (offsets[w[1] as usize] - offsets[w[0] as usize]) as f64;
            assert!(
                load < ideal * 2.0 + 1000.0,
                "chunk load {load} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let r = pdpr(&g, &PcpmConfig::default()).unwrap();
        assert!(r.scores.is_empty());
    }

    #[test]
    fn preprocess_reported_as_zero() {
        let g = erdos_renyi(100, 400, 1).unwrap();
        let r = pdpr(&g, &PcpmConfig::default().with_iterations(2)).unwrap();
        assert_eq!(r.preprocess, Duration::ZERO);
    }
}
