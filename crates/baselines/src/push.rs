//! Push-direction PageRank with atomic partial sums.
//!
//! The row-major counterpart of PDPR (§2.1): each vertex adds its scaled
//! value to all of its out-neighbors' partial sums. Multiple rows update
//! the same output element, so the accumulation needs synchronization —
//! here a compare-and-swap loop over bit-cast `f32`s. This kernel is the
//! motivation for the GAS decoupling: it pays both the random accesses
//! *and* the atomics.

use crate::pdpr::{dangling_bonus, empty_result};
use pcpm_core::config::{run_with_threads, PcpmConfig};
use pcpm_core::error::PcpmError;
use pcpm_core::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Atomically adds `val` to the f32 stored in `cell` (CAS loop).
#[inline]
fn atomic_add_f32(cell: &AtomicU32, val: f32) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + val).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Runs PageRank in the push direction with atomic partial sums.
pub fn push_pagerank(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    cfg.validate()?;
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Ok(empty_result());
    }
    let damping = cfg.damping as f32;
    let base = ((1.0 - cfg.damping) / n as f64) as f32;
    let out_deg = graph.out_degrees();
    let inv_deg: Vec<f32> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
        .collect();
    let mut pr: Vec<f32> = vec![1.0 / n as f32; n];
    let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
    let sums: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let mut timings = PhaseTimings::default();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut last_delta = f64::INFINITY;

    run_with_threads(cfg.threads, || {
        for _ in 0..cfg.iterations {
            let t0 = Instant::now();
            sums.par_iter().for_each(|s| s.store(0, Ordering::Relaxed));
            (0..n as u32).into_par_iter().for_each(|v| {
                let val = x[v as usize];
                if val != 0.0 {
                    for &t in graph.neighbors(v) {
                        atomic_add_f32(&sums[t as usize], val);
                    }
                }
            });
            timings.scatter += t0.elapsed();

            let t1 = Instant::now();
            let bonus = dangling_bonus(cfg, &pr, &out_deg, n);
            let delta: f64 = pr
                .par_iter_mut()
                .enumerate()
                .map(|(v, p)| {
                    let s = f32::from_bits(sums[v].load(Ordering::Relaxed));
                    let new = base + damping * s + bonus;
                    let d = f64::from((new - *p).abs());
                    *p = new;
                    d
                })
                .sum();
            x.par_iter_mut()
                .zip(&pr)
                .zip(&inv_deg)
                .for_each(|((xv, &p), &i)| *xv = p * i);
            timings.apply += t1.elapsed();

            iterations += 1;
            last_delta = delta;
            if let Some(tol) = cfg.tolerance {
                if delta < tol {
                    converged = true;
                    break;
                }
            }
        }
    });

    Ok(PrResult {
        scores: pr,
        iterations,
        converged,
        last_delta,
        timings,
        preprocess: std::time::Duration::ZERO,
        compression_ratio: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_matches_oracle;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn matches_oracle() {
        let g = rmat(&RmatConfig::graph500(8, 8, 15)).unwrap();
        let cfg = PcpmConfig::default().with_iterations(8);
        let r = push_pagerank(&g, &cfg).unwrap();
        // Atomic f32 accumulation order varies; allow a slightly looser
        // tolerance than the deterministic kernels.
        assert_matches_oracle(&r.scores, &g, &cfg, 5e-3);
    }

    #[test]
    fn matches_oracle_er() {
        let g = erdos_renyi(400, 3000, 5).unwrap();
        let cfg = PcpmConfig::default().with_iterations(10);
        let r = push_pagerank(&g, &cfg).unwrap();
        assert_matches_oracle(&r.scores, &g, &cfg, 5e-3);
    }

    #[test]
    fn atomic_add_accumulates() {
        let cell = AtomicU32::new(0.0f32.to_bits());
        atomic_add_f32(&cell, 1.5);
        atomic_add_f32(&cell, 2.25);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.75);
    }

    #[test]
    fn atomic_add_is_race_free_under_contention() {
        let cell = AtomicU32::new(0.0f32.to_bits());
        (0..10_000u32)
            .into_par_iter()
            .for_each(|_| atomic_add_f32(&cell, 1.0));
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 10_000.0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(push_pagerank(&g, &PcpmConfig::default())
            .unwrap()
            .scores
            .is_empty());
    }
}
