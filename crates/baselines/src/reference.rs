//! Serial f64 PageRank oracle.
//!
//! Deliberately simple and obviously correct: one edge pass per iteration,
//! f64 accumulation throughout. Every parallel kernel in the workspace is
//! validated against this.

use pcpm_core::config::PcpmConfig;
use pcpm_graph::Csr;

/// Runs PageRank serially with f64 precision and returns the final score
/// vector. Uses the same damping / dangling conventions as the parallel
/// kernels.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_baselines::serial_pagerank;
/// use pcpm_core::PcpmConfig;
///
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// let pr = serial_pagerank(&g, &PcpmConfig::default());
/// assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn serial_pagerank(graph: &Csr, cfg: &PcpmConfig) -> Vec<f64> {
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Vec::new();
    }
    let d = cfg.damping;
    let out_deg = graph.out_degrees();
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..cfg.iterations {
        let mut sums = vec![0.0f64; n];
        for (s, t) in graph.edges() {
            sums[t as usize] += pr[s as usize] / f64::from(out_deg[s as usize]);
        }
        let dangling_bonus = if cfg.redistribute_dangling {
            let mass: f64 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| pr[v]).sum();
            d * mass / n as f64
        } else {
            0.0
        };
        let mut delta = 0.0f64;
        for v in 0..n {
            let new = (1.0 - d) / n as f64 + d * sums[v] + dangling_bonus;
            delta += (new - pr[v]).abs();
            pr[v] = new;
        }
        if let Some(tol) = cfg.tolerance {
            if delta < tol {
                break;
            }
        }
    }
    pr
}

/// Asserts that an f32 kernel result matches the oracle within a relative
/// tolerance of the largest score (test helper shared across crates).
pub fn assert_matches_oracle(scores: &[f32], graph: &Csr, cfg: &PcpmConfig, rel_tol: f64) {
    let want = serial_pagerank(graph, cfg);
    assert_eq!(scores.len(), want.len(), "length mismatch");
    let scale = want.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    for (i, (&a, &b)) in scores.iter().zip(&want).enumerate() {
        assert!(
            (f64::from(a) - b).abs() <= rel_tol * scale,
            "node {i}: {a} vs oracle {b} (scale {scale})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_uniform() {
        let n = 10u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = Csr::from_edges(n, &edges).unwrap();
        let pr = serial_pagerank(&g, &PcpmConfig::default());
        for &p in &pr {
            assert!((p - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sink_accumulates_rank() {
        // Star into node 0: node 0 must outrank the leaves.
        let g = Csr::from_edges(4, &[(1, 0), (2, 0), (3, 0), (0, 1)]).unwrap();
        let pr = serial_pagerank(&g, &PcpmConfig::default());
        assert!(pr[0] > pr[2]);
        assert!(pr[0] > pr[3]);
    }

    #[test]
    fn tolerance_short_circuits() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        // Uniform start on a cycle is already stationary.
        let cfg = PcpmConfig::default()
            .with_iterations(1000)
            .with_tolerance(1e-12);
        let pr = serial_pagerank(&g, &cfg);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(serial_pagerank(&g, &PcpmConfig::default()).is_empty());
    }

    #[test]
    fn damping_zero_gives_uniform() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let cfg = PcpmConfig {
            damping: 0.0,
            ..Default::default()
        };
        let pr = serial_pagerank(&g, &cfg);
        for &p in &pr {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
