//! Programming-model benches: the §6 generalisation workloads on the
//! PCPM pipeline (connected components, BFS, SSSP, personalized PageRank)
//! plus the classical pull-style comparisons where one exists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_algos::{bfs_levels, connected_components, personalized_pagerank, sssp};
use pcpm_core::PcpmConfig;
use pcpm_graph::gen::datasets::{standin_at, Dataset};
use pcpm_graph::EdgeWeights;

const SCALE: u32 = 12;

fn bench_algorithms(c: &mut Criterion) {
    let cfg = PcpmConfig::default()
        .with_partition_bytes(8 * 1024)
        .with_iterations(10);
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for d in [Dataset::Kron, Dataset::Web] {
        let g = standin_at(d, SCALE).expect("standin");
        let w = EdgeWeights::random(&g, 5);
        group.throughput(Throughput::Elements(g.num_edges()));
        group.bench_with_input(BenchmarkId::new("components", d.name()), &g, |b, g| {
            b.iter(|| connected_components(g, &cfg).expect("cc"));
        });
        group.bench_with_input(BenchmarkId::new("bfs", d.name()), &g, |b, g| {
            b.iter(|| bfs_levels(g, 0, &cfg).expect("bfs"));
        });
        group.bench_with_input(BenchmarkId::new("sssp", d.name()), &g, |b, g| {
            b.iter(|| sssp(g, &w, 0, &cfg).expect("sssp"));
        });
        group.bench_with_input(BenchmarkId::new("ppr", d.name()), &g, |b, g| {
            b.iter(|| personalized_pagerank(g, &[0, 1, 2], &cfg).expect("ppr"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
