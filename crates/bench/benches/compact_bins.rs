//! Compact-bin ablation (paper §6 future work): wide 32-bit vs compact
//! 16-bit destination IDs. The compact layout halves the gather's
//! destID-scan bytes (`m·di/2` in Eq. 5), which should show up as gather
//! time on memory-bound runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_core::pagerank::{pagerank_with_engine, PcpmVariant};
use pcpm_core::{PcpmConfig, PcpmPipeline};
use pcpm_graph::gen::datasets::{standin_at, Dataset};

const SCALE: u32 = 13;

fn bench_compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("compact_bins");
    group.sample_size(20);
    for d in [Dataset::Kron, Dataset::Sd1] {
        let g = standin_at(d, SCALE).expect("standin");
        group.throughput(Throughput::Elements(g.num_edges()));
        let wide_cfg = PcpmConfig::default()
            .with_partition_bytes(8 * 1024)
            .with_iterations(1);
        let compact_cfg = wide_cfg.with_compact_bins();
        let mut wide: PcpmPipeline = PcpmPipeline::new(&g, &wide_cfg).expect("wide engine");
        let mut compact: PcpmPipeline =
            PcpmPipeline::new(&g, &compact_cfg).expect("compact engine");
        group.bench_with_input(BenchmarkId::new("wide32", d.name()), &g, |b, g| {
            b.iter(|| {
                pagerank_with_engine(g, &wide_cfg, PcpmVariant::default(), &mut wide)
                    .expect("wide run")
            });
        });
        group.bench_with_input(BenchmarkId::new("compact16", d.name()), &g, |b, g| {
            b.iter(|| {
                pagerank_with_engine(g, &compact_cfg, PcpmVariant::default(), &mut compact)
                    .expect("compact run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact);
criterion_main!(benches);
