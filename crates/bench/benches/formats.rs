//! Bin-format sweep: per-format step time, auxiliary memory and
//! destination-ID compression on a seeded scale-12 RMAT graph.
//!
//! Besides the usual console table, the suite emits `BENCH_formats.json`
//! in the working directory so CI and notebooks can track the trade
//! between decode cost (delta pays a varint decode per edge) and
//! dest-stream traffic (wide pays 4 bytes per edge) without scraping
//! stdout.

use pcpm_core::algebra::PlusF32;
use pcpm_core::{BinFormatKind, Engine, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use std::time::Instant;

const SCALE: u32 = 12;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;
/// 2 KB partitions -> 512 nodes -> 8 partitions at scale 12.
const PARTITION_BYTES: usize = 2 * 1024;
const WARMUP_STEPS: usize = 3;
const MEASURED_STEPS: usize = 30;

struct FormatRow {
    name: &'static str,
    step_us: f64,
    preprocess_us: f64,
    aux_memory_bytes: u64,
    dest_compression: f64,
    dest_stream_bytes: u64,
    dest_gbps: f64,
}

fn main() {
    let g = rmat(&RmatConfig::graph500(SCALE, EDGE_FACTOR, SEED)).expect("seeded rmat");
    let n = g.num_nodes() as usize;
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32).collect();

    let mut rows = Vec::new();
    let mut reference: Option<Vec<f32>> = None;
    for format in BinFormatKind::ALL {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(PARTITION_BYTES)
            .with_bin_format(format);
        let mut engine = Engine::<PlusF32>::builder(&g)
            .config(cfg)
            .build()
            .expect("engine");
        let mut y = vec![0.0f32; n];
        for _ in 0..WARMUP_STEPS {
            engine.step(&x, &mut y).expect("warmup step");
        }
        let t0 = Instant::now();
        for _ in 0..MEASURED_STEPS {
            engine.step(&x, &mut y).expect("step");
        }
        let step_us = t0.elapsed().as_secs_f64() * 1e6 / MEASURED_STEPS as f64;
        // Formats must be interchangeable: bit-identical output on the
        // integer grid, or the timing comparison is meaningless.
        match &reference {
            None => reference = Some(y.clone()),
            Some(want) => assert_eq!(want, &y, "format {format} diverged"),
        }
        let report = engine.report();
        rows.push(FormatRow {
            name: format.name(),
            step_us,
            preprocess_us: report.preprocess.as_secs_f64() * 1e6,
            aux_memory_bytes: report.aux_memory_bytes,
            dest_compression: report.bin_compression.expect("pcpm reports compression"),
            dest_stream_bytes: report
                .dest_stream_bytes
                .expect("pcpm reports dest-stream bytes"),
            dest_gbps: report.dest_stream_gbps().unwrap_or(0.0),
        });
    }

    println!(
        "formats sweep — rmat scale {SCALE} ef {EDGE_FACTOR} seed {SEED} \
         ({} nodes, {} edges), {PARTITION_BYTES} B partitions",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>10} {:>14} {:>10}",
        "format", "step(us)", "preprocess(us)", "aux(bytes)", "dest-comp", "stream(B/step)", "GB/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>12} {:>10.2} {:>14} {:>10.2}",
            r.name,
            r.step_us,
            r.preprocess_us,
            r.aux_memory_bytes,
            r.dest_compression,
            r.dest_stream_bytes,
            r.dest_gbps
        );
    }

    let wide_aux = rows[0].aux_memory_bytes;
    assert!(
        rows.iter().skip(1).all(|r| r.aux_memory_bytes < wide_aux),
        "compact and delta must hold strictly less auxiliary memory than wide"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"kind\": \"rmat\", \"scale\": {SCALE}, \"edge_factor\": {EDGE_FACTOR}, \
         \"seed\": {SEED}, \"nodes\": {}, \"edges\": {}}},\n",
        g.num_nodes(),
        g.num_edges()
    ));
    json.push_str(&format!("  \"partition_bytes\": {PARTITION_BYTES},\n"));
    json.push_str(&format!("  \"measured_steps\": {MEASURED_STEPS},\n"));
    json.push_str("  \"formats\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"step_us\": {:.3}, \"preprocess_us\": {:.3}, \
             \"aux_memory_bytes\": {}, \"dest_compression\": {:.4}, \
             \"dest_stream_bytes\": {}, \"dest_gbps\": {:.3}}}{}\n",
            r.name,
            r.step_us,
            r.preprocess_us,
            r.aux_memory_bytes,
            r.dest_compression,
            r.dest_stream_bytes,
            r.dest_gbps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_formats.json", &json).expect("write BENCH_formats.json");
    println!("wrote BENCH_formats.json");
}
