//! Gather-kernel sweep: scalar vs unrolled step/gather time per bin
//! format on a seeded scale-12 RMAT graph, with the memsim predictor
//! validated against the measured winner.
//!
//! Besides the console table, the suite emits `BENCH_kernels.json` in
//! the working directory (seed baseline committed under
//! `bench-baselines/`) so CI can diff kernel regressions without
//! scraping stdout. Three invariants are asserted in-process:
//!
//! 1. every (format, kernel) pair produces bit-identical output on the
//!    integer grid — the speed comparison is meaningless otherwise;
//! 2. `KernelKind::Auto` resolves to exactly what
//!    `pcpm_memsim::predict_kernel` predicts (they share one decision
//!    function, so this is a wiring check);
//! 3. on the delta format — the one where the batched branchless decode
//!    actually changes the inner loop — the unrolled gather beats the
//!    scalar gather by at least 1.5x, and the predicted winner is the
//!    measured winner.

use pcpm_core::algebra::PlusF32;
use pcpm_core::{BinFormatKind, Engine, KernelKind, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use std::time::Instant;

const SCALE: u32 = 12;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;
/// 2 KB partitions -> 512 nodes -> 8 partitions per dimension.
const PARTITION_BYTES: usize = 2 * 1024;
const WARMUP_STEPS: usize = 5;
const MEASURED_STEPS: usize = 30;
/// Best-of-`REPS` measurement: each rep times `MEASURED_STEPS` steps
/// and the minimum survives, so scheduler noise (this often runs on a
/// single shared core) inflates neither side of the comparison.
const REPS: usize = 10;
/// Acceptance floor for the batched delta decode (gather phase only).
/// `PCPM_KERNELS_FLOOR` overrides it; `0` records the ratios without
/// asserting them (for shared CI runners whose timing is not ours to
/// promise — the committed baseline documents the reference machine).
const DELTA_GATHER_SPEEDUP_FLOOR: f64 = 1.5;

fn speedup_floor() -> f64 {
    match std::env::var("PCPM_KERNELS_FLOOR") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PCPM_KERNELS_FLOOR: bad float '{v}'")),
        Err(_) => DELTA_GATHER_SPEEDUP_FLOOR,
    }
}

struct KernelRow {
    format: BinFormatKind,
    kernel: KernelKind,
    step_us: f64,
    gather_us: f64,
    gather_ns_per_edge: f64,
    dest_gbps: f64,
}

struct FormatSummary {
    format: BinFormatKind,
    gather_speedup: f64,
    measured_winner: KernelKind,
    auto_resolves_to: &'static str,
    predicted_winner: KernelKind,
    predicted_speedup: f64,
}

/// Gather wall-clock recorded by the engine across both kernel-variant
/// counters (only one moves per engine, but summing both keeps the diff
/// correct regardless of which kernel ran).
fn gather_ns_total() -> u64 {
    let s = pcpm_core::telemetry::counters().snapshot();
    s.gather_scalar_ns + s.gather_unrolled_ns
}

fn main() {
    pcpm_core::telemetry::counters().set_enabled(true);
    let g = rmat(&RmatConfig::graph500(SCALE, EDGE_FACTOR, SEED)).expect("seeded rmat");
    let n = g.num_nodes() as usize;
    let edges = g.num_edges();
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32).collect();

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut summaries: Vec<FormatSummary> = Vec::new();
    let mut reference: Option<Vec<f32>> = None;
    for format in BinFormatKind::ALL {
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            let cfg = PcpmConfig::default()
                .with_partition_bytes(PARTITION_BYTES)
                .with_bin_format(format)
                .with_kernel(kernel)
                .with_threads(1);
            let mut engine = Engine::<PlusF32>::builder(&g)
                .config(cfg)
                .build()
                .expect("engine");
            assert_eq!(
                engine.report().kernel,
                Some(kernel.name()),
                "explicit kernel must survive into the execution report"
            );
            let mut y = vec![0.0f32; n];
            for _ in 0..WARMUP_STEPS {
                engine.step(&x, &mut y).expect("warmup step");
            }
            let mut step_us = f64::INFINITY;
            let mut gather_ns = f64::INFINITY;
            for _ in 0..REPS {
                let gather_before = gather_ns_total();
                let t0 = Instant::now();
                for _ in 0..MEASURED_STEPS {
                    engine.step(&x, &mut y).expect("step");
                }
                step_us = step_us.min(t0.elapsed().as_secs_f64() * 1e6 / MEASURED_STEPS as f64);
                gather_ns = gather_ns
                    .min((gather_ns_total() - gather_before) as f64 / MEASURED_STEPS as f64);
            }
            // Kernel variants must be interchangeable: bit-identical
            // output on the integer grid across every (format, kernel).
            match &reference {
                None => reference = Some(y.clone()),
                Some(want) => assert_eq!(want, &y, "{format}/{kernel} diverged"),
            }
            rows.push(KernelRow {
                format,
                kernel,
                step_us,
                gather_us: gather_ns / 1e3,
                gather_ns_per_edge: gather_ns / edges as f64,
                dest_gbps: engine.report().dest_stream_gbps().unwrap_or(0.0),
            });
        }

        let scalar = &rows[rows.len() - 2];
        let unrolled = &rows[rows.len() - 1];
        let gather_speedup = scalar.gather_us / unrolled.gather_us.max(f64::MIN_POSITIVE);
        let measured_winner = if unrolled.gather_us <= scalar.gather_us {
            KernelKind::Unrolled
        } else {
            KernelKind::Scalar
        };
        let auto = Engine::<PlusF32>::builder(&g)
            .partition_bytes(PARTITION_BYTES)
            .bin_format(format)
            .build()
            .expect("auto engine");
        let auto_resolves_to = auto.report().kernel.expect("pcpm reports its kernel");
        let p = pcpm_memsim::predict_kernel(
            u64::from(g.num_nodes()),
            edges,
            format,
            (PARTITION_BYTES / 4) as u64,
        );
        assert_eq!(
            auto_resolves_to,
            p.choice.name(),
            "{format}: Auto and the memsim predictor share resolve_auto and may never disagree"
        );
        summaries.push(FormatSummary {
            format,
            gather_speedup,
            measured_winner,
            auto_resolves_to,
            predicted_winner: p.choice,
            predicted_speedup: p.predicted_speedup(),
        });
    }

    println!(
        "kernel sweep — rmat scale {SCALE} ef {EDGE_FACTOR} seed {SEED} \
         ({} nodes, {edges} edges), {PARTITION_BYTES} B partitions",
        g.num_nodes()
    );
    println!(
        "{:<8} {:<9} {:>12} {:>12} {:>16} {:>10}",
        "format", "kernel", "step(us)", "gather(us)", "gather(ns/edge)", "GB/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:<9} {:>12.1} {:>12.1} {:>16.3} {:>10.2}",
            r.format, r.kernel, r.step_us, r.gather_us, r.gather_ns_per_edge, r.dest_gbps
        );
    }
    println!(
        "{:<8} {:>24} {:>10} {:>10} {:>11} {:>15}",
        "format", "gather scalar/unrolled", "winner", "auto", "predicted", "pred. speedup"
    );
    for s in &summaries {
        println!(
            "{:<8} {:>23.2}x {:>10} {:>10} {:>11} {:>14.2}x",
            s.format,
            s.gather_speedup,
            s.measured_winner,
            s.auto_resolves_to,
            s.predicted_winner,
            s.predicted_speedup
        );
    }

    let delta = summaries
        .iter()
        .find(|s| s.format == BinFormatKind::Delta)
        .expect("delta summary");
    let floor = speedup_floor();
    if floor > 0.0 {
        assert!(
            delta.gather_speedup >= floor,
            "delta batched gather speedup {:.2}x fell below the {floor}x floor",
            delta.gather_speedup
        );
        assert_eq!(
            delta.predicted_winner, delta.measured_winner,
            "memsim predicted the wrong delta kernel for the cache-resident scale-12 point"
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"kind\": \"rmat\", \"scale\": {SCALE}, \"edge_factor\": {EDGE_FACTOR}, \
         \"seed\": {SEED}, \"nodes\": {}, \"edges\": {edges}}},\n",
        g.num_nodes()
    ));
    json.push_str(&format!("  \"partition_bytes\": {PARTITION_BYTES},\n"));
    json.push_str(&format!("  \"measured_steps\": {MEASURED_STEPS},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"kernel\": \"{}\", \"step_us\": {:.3}, \
             \"gather_us\": {:.3}, \"gather_ns_per_edge\": {:.4}, \"dest_gbps\": {:.3}}}{}\n",
            r.format,
            r.kernel,
            r.step_us,
            r.gather_us,
            r.gather_ns_per_edge,
            r.dest_gbps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"summary\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"gather_speedup_unrolled\": {:.3}, \
             \"measured_winner\": \"{}\", \"auto_resolves_to\": \"{}\", \
             \"predicted_winner\": \"{}\", \"predicted_speedup\": {:.3}, \
             \"prediction_matches\": {}}}{}\n",
            s.format,
            s.gather_speedup,
            s.measured_winner,
            s.auto_resolves_to,
            s.predicted_winner,
            s.predicted_speedup,
            s.predicted_winner == s.measured_winner,
            if i + 1 == summaries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
