//! Fig. 7 / Table 5 micro-version: one PageRank iteration per kernel per
//! dataset stand-in. Criterion gives confidence intervals on the GTEPS
//! comparison; the `repro` binary prints the full 20-iteration tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_baselines::{BvgasRunner, PdprRunner};
use pcpm_core::pagerank::{pagerank_with_engine, PcpmVariant};
use pcpm_core::{PcpmConfig, PcpmPipeline};
use pcpm_graph::gen::datasets::{standin_at, Dataset};

const SCALE: u32 = 13;

fn bench_kernels(c: &mut Criterion) {
    let cfg = PcpmConfig::default()
        .with_partition_bytes(8 * 1024)
        .with_iterations(1);
    let mut group = c.benchmark_group("pagerank_iteration");
    group.sample_size(10);
    for d in Dataset::ALL {
        let g = standin_at(d, SCALE).expect("standin");
        group.throughput(Throughput::Elements(g.num_edges()));
        let pdpr = PdprRunner::new(&g);
        group.bench_with_input(BenchmarkId::new("pdpr", d.name()), &g, |b, _| {
            b.iter(|| pdpr.run(&cfg).expect("pdpr"));
        });
        let bv = BvgasRunner::new(&g, &cfg).expect("bvgas build");
        group.bench_with_input(BenchmarkId::new("bvgas", d.name()), &g, |b, g| {
            b.iter(|| bv.run(g, &cfg).expect("bvgas"));
        });
        let mut engine: PcpmPipeline = PcpmPipeline::new(&g, &cfg).expect("engine");
        group.bench_with_input(BenchmarkId::new("pcpm", d.name()), &g, |b, g| {
            b.iter(|| {
                pagerank_with_engine(g, &cfg, PcpmVariant::default(), &mut engine).expect("pcpm")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
