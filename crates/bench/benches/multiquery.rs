//! Multi-query (SpMM) amortization sweep: per-format step time and
//! destID-stream traffic for batch sizes Q ∈ {1, 4, 8, 16}.
//!
//! The point of the batched path is that the destination-ID stream —
//! the DRAM-bandwidth-bound term of the paper's cost model — is
//! scanned **once per batched pass**, not once per query. So the
//! telemetry `dest_stream_bytes_read` for a Q-query pass should sit at
//! ~1× the Q=1 pass (asserted here at ≤ 1.15×), while a sequential
//! loop would pay Q×. Batched outputs are also asserted bit-identical
//! to Q independent solo steps, per format.
//!
//! Emits `BENCH_multiquery.json` in the working directory; the seed
//! baseline lives in `bench-baselines/`.

use pcpm_core::algebra::PlusF32;
use pcpm_core::{telemetry, BinFormatKind, Engine, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use std::time::Instant;

const SCALE: u32 = 12;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;
const PARTITION_BYTES: usize = 2 * 1024;
const WARMUP_PASSES: usize = 3;
const MEASURED_PASSES: usize = 20;
const BATCH_SIZES: [usize; 4] = [1, 4, 8, 16];
/// Acceptance bound: a Q=8 batched pass may scan at most 1.15× the
/// destID bytes of a Q=1 pass (equal pass counts).
const DEST_BYTES_SLACK: f64 = 1.15;

struct Row {
    format: &'static str,
    q: usize,
    pass_us: f64,
    per_query_us: f64,
    dest_stream_bytes_per_pass: u64,
    bins_decoded_per_pass: u64,
    varint_decodes_per_pass: u64,
}

fn main() {
    let g = rmat(&RmatConfig::graph500(SCALE, EDGE_FACTOR, SEED)).expect("seeded rmat");
    let n = g.num_nodes() as usize;
    let xs: Vec<Vec<f32>> = (0..*BATCH_SIZES.iter().max().unwrap() as u32)
        .map(|q| (0..g.num_nodes()).map(|v| ((v + q) % 13) as f32).collect())
        .collect();

    let tm = telemetry::counters();
    tm.set_enabled(true);

    let mut rows: Vec<Row> = Vec::new();
    for format in BinFormatKind::ALL {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(PARTITION_BYTES)
            .with_bin_format(format);
        let mut engine = Engine::<PlusF32>::builder(&g)
            .config(cfg)
            .build()
            .expect("engine");

        // Solo reference: Q independent steps, the bit-identity oracle.
        let solo: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| {
                let mut y = vec![0.0f32; n];
                engine.step(x, &mut y).expect("solo step");
                y
            })
            .collect();

        for &q in &BATCH_SIZES {
            let x_refs: Vec<&[f32]> = xs[..q].iter().map(|x| x.as_slice()).collect();
            let mut ys: Vec<Vec<f32>> = vec![vec![0.0f32; n]; q];
            for _ in 0..WARMUP_PASSES {
                let mut y_refs: Vec<&mut [f32]> = ys.iter_mut().map(|y| y.as_mut_slice()).collect();
                engine.step_many(&x_refs, &mut y_refs).expect("warmup pass");
            }
            for (qi, y) in ys.iter().enumerate() {
                assert_eq!(
                    y, &solo[qi],
                    "{format} Q={q}: batched query {qi} diverged from its solo step"
                );
            }
            tm.reset();
            let t0 = Instant::now();
            for _ in 0..MEASURED_PASSES {
                let mut y_refs: Vec<&mut [f32]> = ys.iter_mut().map(|y| y.as_mut_slice()).collect();
                engine.step_many(&x_refs, &mut y_refs).expect("pass");
            }
            let pass_us = t0.elapsed().as_secs_f64() * 1e6 / MEASURED_PASSES as f64;
            let snap = tm.snapshot();
            assert_eq!(
                snap.batched_passes, MEASURED_PASSES as u64,
                "{format} Q={q}: pass count drifted"
            );
            rows.push(Row {
                format: format.name(),
                q,
                pass_us,
                per_query_us: pass_us / q as f64,
                dest_stream_bytes_per_pass: snap.dest_stream_bytes_read / MEASURED_PASSES as u64,
                bins_decoded_per_pass: snap.bins_decoded / MEASURED_PASSES as u64,
                varint_decodes_per_pass: snap.varint_decodes / MEASURED_PASSES as u64,
            });
        }
    }
    tm.set_enabled(false);

    println!(
        "multiquery sweep — rmat scale {SCALE} ef {EDGE_FACTOR} seed {SEED} \
         ({} nodes, {} edges), {PARTITION_BYTES} B partitions, {MEASURED_PASSES} passes",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "{:<8} {:>4} {:>12} {:>14} {:>16} {:>12} {:>14}",
        "format", "Q", "pass(us)", "per-query(us)", "dest(B/pass)", "bins/pass", "varints/pass"
    );
    for r in &rows {
        println!(
            "{:<8} {:>4} {:>12.1} {:>14.1} {:>16} {:>12} {:>14}",
            r.format,
            r.q,
            r.pass_us,
            r.per_query_us,
            r.dest_stream_bytes_per_pass,
            r.bins_decoded_per_pass,
            r.varint_decodes_per_pass
        );
    }

    // The amortization claim, per format: the destID stream (and the
    // per-edge decode work) is paid once per pass regardless of Q.
    for format in BinFormatKind::ALL {
        let at = |q: usize| -> &Row {
            rows.iter()
                .find(|r| r.format == format.name() && r.q == q)
                .expect("row")
        };
        let base = at(1).dest_stream_bytes_per_pass as f64;
        for &q in &BATCH_SIZES[1..] {
            let got = at(q).dest_stream_bytes_per_pass as f64;
            assert!(
                got <= base * DEST_BYTES_SLACK,
                "{format} Q={q}: {got} dest-stream bytes/pass vs {base} at Q=1 \
                 (bound {DEST_BYTES_SLACK}x)"
            );
        }
        assert_eq!(
            at(1).bins_decoded_per_pass,
            at(8).bins_decoded_per_pass,
            "{format}: bins decoded per pass must not scale with Q"
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"kind\": \"rmat\", \"scale\": {SCALE}, \"edge_factor\": {EDGE_FACTOR}, \
         \"seed\": {SEED}, \"nodes\": {}, \"edges\": {}}},\n",
        g.num_nodes(),
        g.num_edges()
    ));
    json.push_str(&format!("  \"partition_bytes\": {PARTITION_BYTES},\n"));
    json.push_str(&format!("  \"measured_passes\": {MEASURED_PASSES},\n"));
    json.push_str(&format!("  \"dest_bytes_slack\": {DEST_BYTES_SLACK},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"format\": \"{}\", \"q\": {}, \"pass_us\": {:.3}, \
             \"per_query_us\": {:.3}, \"dest_stream_bytes_per_pass\": {}, \
             \"bins_decoded_per_pass\": {}, \"varint_decodes_per_pass\": {}}}{}\n",
            r.format,
            r.q,
            r.pass_us,
            r.per_query_us,
            r.dest_stream_bytes_per_pass,
            r.bins_decoded_per_pass,
            r.varint_decodes_per_pass,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_multiquery.json", &json).expect("write BENCH_multiquery.json");
    println!("wrote BENCH_multiquery.json");
}
