//! Locality ablation (Tables 6/7 timing side): PCPM iteration time under
//! original, GOrder, and random node labelings. GOrder should match or
//! beat the original labeling; random should be the slowest (lowest
//! compression ratio).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_core::pagerank::{pagerank_with_engine, PcpmVariant};
use pcpm_core::{PcpmConfig, PcpmPipeline};
use pcpm_graph::gen::datasets::{standin_at, Dataset};
use pcpm_graph::order::{reorder, OrderingKind};

const SCALE: u32 = 13;

fn bench_orderings(c: &mut Criterion) {
    let cfg = PcpmConfig::default()
        .with_partition_bytes(8 * 1024)
        .with_iterations(1);
    let mut group = c.benchmark_group("orderings");
    group.sample_size(10);
    for d in [Dataset::Web, Dataset::Kron] {
        let g = standin_at(d, SCALE).expect("standin");
        group.throughput(Throughput::Elements(g.num_edges()));
        for kind in [
            OrderingKind::Original,
            OrderingKind::Gorder,
            OrderingKind::Random,
        ] {
            let (rg, _) = reorder(&g, kind, 7).expect("reorder");
            let mut engine: PcpmPipeline = PcpmPipeline::new(&rg, &cfg).expect("engine");
            group.bench_with_input(BenchmarkId::new(kind.name(), d.name()), &rg, |b, rg| {
                b.iter(|| {
                    pagerank_with_engine(rg, &cfg, PcpmVariant::default(), &mut engine)
                        .expect("run")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
