//! Figs. 13/14 micro-version: PCPM iteration time across partition sizes
//! on the kron stand-in (real machine). The `repro fig13`/`fig14`
//! subcommands sweep all six datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_core::pagerank::{pagerank_with_engine, PcpmVariant};
use pcpm_core::{PcpmConfig, PcpmPipeline};
use pcpm_graph::gen::datasets::{standin_at, Dataset};

const SCALE: u32 = 13;

fn bench_partition_sweep(c: &mut Criterion) {
    let g = standin_at(Dataset::Kron, SCALE).expect("standin");
    let mut group = c.benchmark_group("partition_sweep_kron");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges()));
    for shift in 10..=17 {
        let bytes = 1usize << shift; // 1 KB .. 128 KB partitions
        let cfg = PcpmConfig::default()
            .with_partition_bytes(bytes)
            .with_iterations(1);
        let mut engine: PcpmPipeline = PcpmPipeline::new(&g, &cfg).expect("engine");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KB", bytes / 1024)),
            &g,
            |b, g| {
                b.iter(|| {
                    pagerank_with_engine(g, &cfg, PcpmVariant::default(), &mut engine).expect("run")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition_sweep);
criterion_main!(benches);
