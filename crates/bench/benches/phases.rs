//! Phase-isolation and ablation benches (Table 5 split + the paper's two
//! system optimizations):
//!
//! - scatter: PNG layout (Algorithm 3) vs CSR traversal (Algorithm 2) —
//!   the §3.3 data-layout ablation;
//! - gather: branch-avoiding (Algorithm 4) vs branchy (Algorithm 2) — the
//!   §3.4 branch-avoidance ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_core::format::{BinFormat, WideFormat};
use pcpm_core::gather::{gather_branch_avoiding, gather_branchy};
use pcpm_core::partition::Partitioner;
use pcpm_core::png::{EdgeView, Png};
use pcpm_core::scatter::{csr_scatter, png_scatter};
use pcpm_graph::gen::datasets::{standin_at, Dataset};

const SCALE: u32 = 13;
const PARTITION_NODES: u32 = 2048; // 8 KB of values

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("phases");
    group.sample_size(20);
    for d in [Dataset::Kron, Dataset::Web, Dataset::Twitter] {
        let g = standin_at(d, SCALE).expect("standin");
        let parts = Partitioner::new(g.num_nodes(), PARTITION_NODES).expect("parts");
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let mut bins = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).recip()).collect();
        let mut y = vec![0.0f32; g.num_nodes() as usize];

        group.throughput(Throughput::Elements(g.num_edges()));
        group.bench_with_input(BenchmarkId::new("scatter_png", d.name()), &g, |b, _| {
            b.iter(|| png_scatter(&png, &x, &mut bins.updates));
        });
        group.bench_with_input(BenchmarkId::new("scatter_csr", d.name()), &g, |b, g| {
            b.iter(|| csr_scatter(EdgeView::from_csr(g), &png, &x, &mut bins.updates));
        });
        png_scatter(&png, &x, &mut bins.updates);
        group.bench_with_input(
            BenchmarkId::new("gather_branch_avoiding", d.name()),
            &g,
            |b, _| {
                b.iter(|| gather_branch_avoiding(&png, &bins, &mut y));
            },
        );
        group.bench_with_input(BenchmarkId::new("gather_branchy", d.name()), &g, |b, _| {
            b.iter(|| gather_branchy(&png, &bins, &mut y));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
