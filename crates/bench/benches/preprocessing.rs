//! Table 8 micro-version: pre-processing cost of each methodology —
//! PNG construction + bin writing for PCPM, bin sizing + offsets +
//! destination IDs for BVGAS, and the CSC transpose PDPR would need if it
//! were not assumed as input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_baselines::BvgasRunner;
use pcpm_core::{PcpmConfig, PcpmPipeline};
use pcpm_graph::gen::datasets::{standin_at, Dataset};

const SCALE: u32 = 13;

fn bench_preprocessing(c: &mut Criterion) {
    let cfg = PcpmConfig::default().with_partition_bytes(8 * 1024);
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    for d in [Dataset::Gplus, Dataset::Kron, Dataset::Sd1] {
        let g = standin_at(d, SCALE).expect("standin");
        group.throughput(Throughput::Elements(g.num_edges()));
        group.bench_with_input(BenchmarkId::new("pcpm_png_build", d.name()), &g, |b, g| {
            b.iter(|| PcpmPipeline::<pcpm_core::algebra::PlusF32>::new(g, &cfg).expect("engine"));
        });
        group.bench_with_input(BenchmarkId::new("bvgas_layout", d.name()), &g, |b, g| {
            b.iter(|| BvgasRunner::new(g, &cfg).expect("bvgas"));
        });
        group.bench_with_input(BenchmarkId::new("csc_transpose", d.name()), &g, |b, g| {
            b.iter(|| g.transpose());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
