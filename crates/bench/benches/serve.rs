//! Serving-path benchmark: query throughput and latency against an
//! in-process `pcpm-serve` instance loaded from a scale-12 snapshot,
//! plus the update-publish (epoch swap) latency.
//!
//! Three loops over TCP on localhost:
//! - single client issuing PageRank and personalized-PageRank queries
//!   back to back (per-request latency distribution, qps);
//! - 4 concurrent clients issuing the same mix (aggregate qps under
//!   contention for the worker pool);
//! - one client streaming update batches through the writer thread
//!   (round-trip time until the new epoch is published and acknowledged).
//!
//! Emits `BENCH_serve.json` next to the other suite outputs.

use pcpm_core::algebra::PlusF32;
use pcpm_core::{Engine, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use pcpm_serve::{Client, EngineSpec, QueryParams, Server, ServerConfig};
use pcpm_stream::{gen_updates, UpdateGenConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const SCALE: u32 = 12;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;
const PARTITION_BYTES: usize = 2 * 1024;
const ITERATIONS: usize = 20;
const WARMUP: usize = 5;
const QUERIES: usize = 40;
const CLIENTS: usize = 4;
const UPDATE_BATCHES: usize = 20;
const UPDATE_BATCH_SIZE: usize = 100;

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

struct LoopResult {
    name: &'static str,
    clients: usize,
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn query_loop(addr: SocketAddr, params: &QueryParams, queries: usize) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let seeds = [1u32, 7, 99];
    let mut lat = Vec::with_capacity(queries);
    for i in 0..WARMUP + queries {
        let t0 = Instant::now();
        // Alternate the mix: even = global PageRank, odd = PPR.
        if i % 2 == 0 {
            client.pagerank(0, params).expect("pagerank");
        } else {
            client
                .personalized_pagerank(0, params, &seeds)
                .expect("ppr");
        }
        if i >= WARMUP {
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    lat
}

fn main() {
    let g = Arc::new(rmat(&RmatConfig::graph500(SCALE, EDGE_FACTOR, SEED)).expect("seeded rmat"));
    let cfg = PcpmConfig::default()
        .with_partition_bytes(PARTITION_BYTES)
        .with_iterations(ITERATIONS);
    let snapshot = Engine::<PlusF32>::builder_shared(&g)
        .config(cfg)
        .build()
        .expect("build engine")
        .snapshot()
        .expect("snapshot");
    let params = QueryParams {
        iterations: ITERATIONS as u32,
        damping: cfg.damping,
        tolerance: None,
        redistribute_dangling: false,
    };

    let server = Server::bind(
        "127.0.0.1:0",
        vec![EngineSpec::from_snapshot("bench", snapshot)],
        ServerConfig {
            workers: CLIENTS,
            threads: None,
            metrics_addr: None,
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut rows = Vec::new();

    // Single client.
    let t0 = Instant::now();
    let mut lat = query_loop(addr, &params, QUERIES);
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    rows.push(LoopResult {
        name: "query_1client",
        clients: 1,
        queries: lat.len(),
        qps: lat.len() as f64 / wall,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    });

    // 4 concurrent clients.
    let t0 = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| std::thread::spawn(move || query_loop(addr, &params, QUERIES)))
        .collect();
    let mut all: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    all.sort_by(f64::total_cmp);
    rows.push(LoopResult {
        name: "query_4client",
        clients: CLIENTS,
        queries: all.len(),
        qps: all.len() as f64 / wall,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
    });

    // Update-publish latency: round trip through the writer thread,
    // incremental repair, snapshot re-export and epoch publication.
    let batches = gen_updates(
        &g,
        &UpdateGenConfig {
            batches: UPDATE_BATCHES,
            batch_size: UPDATE_BATCH_SIZE,
            delete_frac: 0.3,
            locality: None,
            seed: SEED,
        },
    )
    .expect("gen updates");
    let mut writer = Client::connect(addr).expect("connect writer");
    let mut pub_lat = Vec::with_capacity(batches.len());
    let t0 = Instant::now();
    for (i, b) in batches.iter().enumerate() {
        let t1 = Instant::now();
        let reply = writer.update(0, b).expect("update");
        pub_lat.push(t1.elapsed().as_secs_f64() * 1e6);
        assert_eq!(reply.epoch, (i + 1) as u64, "epochs must be sequential");
    }
    let update_wall = t0.elapsed().as_secs_f64();
    pub_lat.sort_by(f64::total_cmp);
    let update_row = LoopResult {
        name: "update_publish",
        clients: 1,
        queries: pub_lat.len(),
        qps: pub_lat.len() as f64 / update_wall,
        p50_us: percentile(&pub_lat, 0.50),
        p99_us: percentile(&pub_lat, 0.99),
    };

    // A query after the update stream must serve the final epoch.
    let mut check = Client::connect(addr).expect("connect");
    let r = check.pagerank(0, &params).expect("post-update pagerank");
    assert_eq!(r.epoch, UPDATE_BATCHES as u64);
    rows.push(update_row);

    // Server-side view of the same run, through the shared human
    // formatter (`ServerStats::render_human`, also used by
    // `pcpm query stats`): per-kind p50/p90/p99, error rates, and the
    // queue-wait vs execution split.
    let server_stats = check.stats().expect("stats");
    assert_eq!(server_stats.epoch, UPDATE_BATCHES as u64);
    assert_eq!(server_stats.writer_publishes, UPDATE_BATCHES as u64);
    println!("--- server-side stats ---");
    print!("{}", server_stats.render_human());

    handle.shutdown();
    handle.join().expect("server drain");

    println!(
        "serve — rmat scale {SCALE} ef {EDGE_FACTOR} seed {SEED} ({} nodes, {} edges), \
         {PARTITION_BYTES} B partitions, {ITERATIONS} iters, {} workers",
        g.num_nodes(),
        g.num_edges(),
        CLIENTS
    );
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "loop", "clients", "n", "qps", "p50(us)", "p99(us)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>8} {:>8} {:>10.1} {:>10.1} {:>10.1}",
            r.name, r.clients, r.queries, r.qps, r.p50_us, r.p99_us
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"kind\": \"rmat\", \"scale\": {SCALE}, \"edge_factor\": {EDGE_FACTOR}, \
         \"seed\": {SEED}, \"nodes\": {}, \"edges\": {}}},\n",
        g.num_nodes(),
        g.num_edges()
    ));
    json.push_str(&format!("  \"partition_bytes\": {PARTITION_BYTES},\n"));
    json.push_str(&format!("  \"iterations\": {ITERATIONS},\n"));
    json.push_str(&format!("  \"workers\": {CLIENTS},\n"));
    json.push_str(&format!("  \"update_batch_size\": {UPDATE_BATCH_SIZE},\n"));
    json.push_str(&format!(
        "  \"server\": {{\"writer_publishes\": {}, \"writer_publish_us_total\": {}, \
         \"connections_dispatched\": {}, \"mean_queue_wait_us\": {:.1}}},\n",
        server_stats.writer_publishes,
        server_stats.writer_publish_us_total,
        server_stats.connections_dispatched,
        server_stats.mean_queue_wait_us()
    ));
    json.push_str("  \"loops\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"queries\": {}, \"qps\": {:.3}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            r.name,
            r.clients,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
