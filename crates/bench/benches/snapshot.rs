//! Snapshot-cache sweep: cold engine build vs snapshot save/load for
//! every bin format on a seeded scale-12 RMAT graph.
//!
//! This quantifies the build-once, serve-many win: a serving process
//! that loads the prepared dataplane from disk pays `load_us` instead
//! of `build_us` of preprocessing — the cross-run amortization
//! of the paper's per-run preprocessing argument. Besides the console
//! table the suite emits `BENCH_snapshot.json` so CI and notebooks can
//! track the ratio without scraping stdout.

use pcpm_core::algebra::PlusF32;
use pcpm_core::{BinFormatKind, Engine, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use std::sync::Arc;
use std::time::Instant;

const SCALE: u32 = 12;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;
/// 2 KB partitions -> 512 nodes -> 8 partitions at scale 12 (the same
/// layout the formats bench uses, so numbers line up across suites).
const PARTITION_BYTES: usize = 2 * 1024;
const REPS: usize = 5;

struct Row {
    name: &'static str,
    build_us: f64,
    save_us: f64,
    load_us: f64,
    bytes: u64,
    speedup: f64,
}

fn main() {
    let g = Arc::new(rmat(&RmatConfig::graph500(SCALE, EDGE_FACTOR, SEED)).expect("seeded rmat"));
    let n = g.num_nodes() as usize;
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32).collect();
    let dir = std::env::temp_dir().join("pcpm_bench_snapshot");
    std::fs::create_dir_all(&dir).expect("bench cache dir");

    let mut rows = Vec::new();
    for format in BinFormatKind::ALL {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(PARTITION_BYTES)
            .with_bin_format(format);
        let path = dir.join(format!("bench-{format}.pcpmc"));

        // Cold build (best of REPS).
        let mut build_us = f64::MAX;
        let mut engine = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let e = Engine::<PlusF32>::builder_shared(&g)
                .config(cfg)
                .build()
                .expect("cold build");
            build_us = build_us.min(t0.elapsed().as_secs_f64() * 1e6);
            engine = Some(e);
        }
        let mut cold = engine.expect("built");

        // Save (best of REPS) and file size.
        let mut save_us = f64::MAX;
        let mut bytes = 0;
        for _ in 0..REPS {
            let t0 = Instant::now();
            bytes = cold.save_snapshot(&path).expect("save snapshot");
            save_us = save_us.min(t0.elapsed().as_secs_f64() * 1e6);
        }

        // Load (best of REPS); the last loaded engine must serve
        // bit-identical output or the timing is meaningless.
        let mut load_us = f64::MAX;
        let mut served = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let e = Engine::<PlusF32>::from_snapshot(&path).expect("load snapshot");
            load_us = load_us.min(t0.elapsed().as_secs_f64() * 1e6);
            served = Some(e);
        }
        let mut served = served.expect("loaded");
        let (mut ya, mut yb) = (vec![0.0f32; n], vec![0.0f32; n]);
        cold.step(&x, &mut ya).expect("cold step");
        served.step(&x, &mut yb).expect("served step");
        assert_eq!(
            ya, yb,
            "format {format}: snapshot must serve bit-identically"
        );
        assert!(served.report().loaded_from_snapshot);

        rows.push(Row {
            name: format.name(),
            build_us,
            save_us,
            load_us,
            bytes,
            speedup: build_us / load_us.max(1e-9),
        });
    }

    println!(
        "snapshot sweep — rmat scale {SCALE} ef {EDGE_FACTOR} seed {SEED} \
         ({} nodes, {} edges), {PARTITION_BYTES} B partitions, best of {REPS}",
        g.num_nodes(),
        g.num_edges()
    );
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "format", "build(us)", "save(us)", "load(us)", "file(bytes)", "build/load"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12.1} {:>10.1} {:>10.1} {:>12} {:>9.1}x",
            r.name, r.build_us, r.save_us, r.load_us, r.bytes, r.speedup
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"kind\": \"rmat\", \"scale\": {SCALE}, \"edge_factor\": {EDGE_FACTOR}, \
         \"seed\": {SEED}, \"nodes\": {}, \"edges\": {}}},\n",
        g.num_nodes(),
        g.num_edges()
    ));
    json.push_str(&format!("  \"partition_bytes\": {PARTITION_BYTES},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str("  \"formats\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"build_us\": {:.3}, \"save_us\": {:.3}, \
             \"load_us\": {:.3}, \"file_bytes\": {}, \"build_over_load\": {:.3}}}{}\n",
            r.name,
            r.build_us,
            r.save_us,
            r.load_us,
            r.bytes,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_snapshot.json", &json).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");
}
