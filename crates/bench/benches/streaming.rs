//! Update-throughput bench for the streaming subsystem: incremental bin
//! repair ([`Engine::update`]) against the full `prepare` it replaces,
//! and delta-PageRank against warm-start / cold-start re-solving — the
//! costs that decide whether continuously-arriving edits can keep
//! rankings fresh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcpm_core::algebra::PlusF32;
use pcpm_core::pagerank::{pagerank_warm_start, pagerank_with_unified_engine};
use pcpm_core::{Engine, PcpmConfig};
use pcpm_graph::gen::{rmat, RmatConfig};
use pcpm_stream::{gen_updates, DeltaGraph, Locality, UpdateGenConfig};
use std::sync::Arc;

const SCALE: u32 = 13;
/// 2 KB partitions -> 512 nodes -> 16 partitions at scale 13.
const PARTITION_BYTES: usize = 2 * 1024;

fn bench_streaming(c: &mut Criterion) {
    let base = Arc::new(rmat(&RmatConfig::graph500(SCALE, 8, 77)).expect("base"));
    let cfg = PcpmConfig::default()
        .with_partition_bytes(PARTITION_BYTES)
        .with_iterations(500)
        .with_tolerance(1e-9);
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    for touched in [1u32, 4] {
        let gen = UpdateGenConfig {
            batches: 1,
            batch_size: 200,
            delete_frac: 0.3,
            locality: Some(Locality {
                partition_nodes: cfg.partition_nodes(),
                partitions_per_batch: touched,
            }),
            seed: 3,
        };
        let mut dg = DeltaGraph::new(Arc::clone(&base), cfg.partition_nodes()).expect("overlay");
        let batch = gen_updates(&base, &gen).expect("updates").remove(0);
        let stats = dg.apply(&batch).expect("apply");
        let snap = dg.snapshot();
        group.throughput(Throughput::Elements(stats.applied.len() as u64));

        // Repeatedly repairing the same prepared state isolates the
        // per-batch repair cost (repair re-derives touched partitions
        // from the snapshot, so the state stays consistent).
        let mut engine = Engine::<PlusF32>::builder_shared(&base)
            .config(cfg)
            .build()
            .expect("engine");
        group.bench_with_input(
            BenchmarkId::new("bin_repair", format!("{touched}p")),
            &stats.applied,
            |b, applied| {
                b.iter(|| engine.update(&snap, None, applied).expect("repair"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_prepare", format!("{touched}p")),
            &snap,
            |b, snap| {
                b.iter(|| {
                    Engine::<PlusF32>::builder_shared(snap)
                        .config(cfg)
                        .build()
                        .expect("prepare")
                });
            },
        );

        let scores = {
            let mut e = Engine::<PlusF32>::builder_shared(&base)
                .config(cfg)
                .build()
                .expect("engine");
            pagerank_with_unified_engine(&base, &cfg, &mut e, None)
                .expect("cold")
                .scores
        };
        group.bench_with_input(
            BenchmarkId::new("delta_pagerank", format!("{touched}p")),
            &stats.applied,
            |b, applied| {
                b.iter(|| {
                    pcpm_algos::incremental_pagerank(&snap, applied, &scores, &cfg).expect("warm")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("warm_start_pagerank", format!("{touched}p")),
            &scores,
            |b, scores| {
                b.iter(|| pagerank_warm_start(&snap, &cfg, scores).expect("warm-start"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
