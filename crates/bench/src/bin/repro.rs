//! Reproduction harness: one subcommand per table / figure of the paper.
//!
//! ```text
//! repro <exhibit> [--scale N] [--iters N] [--threads N] [--quick]
//!                 [--format wide|compact|delta] [--cache-dir DIR]
//!                 [--kernel auto|scalar|unrolled]
//!
//! `--cache-dir DIR` reuses prepared-engine snapshots across harness
//! runs: PCPM timing engines load from `DIR` instead of re-running
//! PNG/bin preprocessing every invocation (built and saved on miss).
//!
//! exhibits: table4 fig1 fig6 fig7 table5 fig8 fig9 fig10
//!           table6 table7 fig11 fig12 fig13 fig14 table8 all
//! ```
//!
//! Each exhibit prints an aligned table (same rows/series the paper
//! reports) and writes a CSV under `results/`. Timing exhibits run on the
//! real host; traffic exhibits replay the kernels' address streams on the
//! scaled simulation machine (see `pcpm_bench::suite`).

use pcpm_bench::suite::{
    f2, f3, sim_cache, sim_worker_cache, time_bvgas, time_pcpm, time_pdpr, SuiteConfig, Table,
    SIM_PARTITION_NODES, SIM_SCALE_DOWN, TIMING_PARTITION_BYTES,
};
use pcpm_core::partition::Partitioner;
use pcpm_core::png::{EdgeView, Png};
use pcpm_core::PcpmConfig;
use pcpm_graph::gen::datasets::Dataset;
use pcpm_graph::stats::stats;
use pcpm_graph::Csr;
use pcpm_memsim::energy::{energy_per_edge_uj, sustained_bandwidth_gbs};
use pcpm_memsim::model::{fig6_curve, ModelParams};
use pcpm_memsim::{replay_bvgas, replay_pcpm, replay_pdpr};

const EXHIBITS: [&str; 19] = [
    "table4", "fig1", "fig6", "fig7", "table5", "fig8", "fig9", "fig10", "table6", "table7",
    "fig11", "fig12", "fig13", "fig13sim", "fig14", "table8", "ablation", "related", "all",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = SuiteConfig::default();
    let mut cmd = String::from("all");
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                suite.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(suite.scale)
            }
            "--iters" => {
                suite.iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(suite.iterations)
            }
            "--threads" => suite.threads = it.next().and_then(|v| v.parse().ok()),
            "--cache-dir" => {
                suite.cache_dir = it.next().map(std::path::PathBuf::from);
                if suite.cache_dir.is_none() {
                    eprintln!("--cache-dir expects a directory");
                    std::process::exit(2);
                }
            }
            "--format" => {
                suite.bin_format = match it.next().and_then(|v| v.parse().ok()) {
                    Some(f) => f,
                    None => {
                        eprintln!("--format expects wide|compact|delta");
                        std::process::exit(2);
                    }
                }
            }
            "--kernel" => {
                suite.kernel = match it.next().and_then(|v| v.parse().ok()) {
                    Some(k) => k,
                    None => {
                        eprintln!("--kernel expects auto|scalar|unrolled");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" => {
                suite.scale = 13;
                suite.iterations = 5;
            }
            other if !other.starts_with("--") => cmd = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if !EXHIBITS.contains(&cmd.as_str()) {
        eprintln!("unknown exhibit '{cmd}'; choose one of {EXHIBITS:?}");
        std::process::exit(2);
    }
    println!(
        "PCPM reproduction harness — scale {} (n ≈ {}K), {} iterations, {} threads, {} bins, {} kernel",
        suite.scale,
        (1u64 << suite.scale) / 1000,
        suite.iterations,
        suite
            .threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| format!("{} (rayon)", rayon::current_num_threads())),
        suite.bin_format,
        suite.kernel,
    );
    let run = |name: &str| cmd == name || cmd == "all";
    if run("table4") {
        table4(&suite);
    }
    if run("fig1") {
        fig1(&suite);
    }
    if run("fig6") {
        fig6(&suite);
    }
    if run("fig7") || run("table5") {
        fig7_and_table5(&suite);
    }
    if run("fig8") || run("fig9") || run("fig10") {
        fig8_9_10(&suite);
    }
    if run("table6") {
        table6(&suite);
    }
    if run("table7") {
        table7(&suite);
    }
    if run("fig11") || run("fig12") {
        fig11_12(&suite);
    }
    if run("fig13") || run("fig14") {
        fig13_14(&suite);
    }
    if run("fig13sim") {
        fig13_sim(&suite);
    }
    if run("table8") {
        table8(&suite);
    }
    if run("ablation") {
        ablation(&suite);
    }
    if run("related") {
        related(&suite);
    }
}

/// Related-work comparison (paper §2.2): push with atomics, edge-centric
/// COO streaming, and cache-blocked/GridGraph-style 2D tiling against the
/// two main baselines and PCPM.
fn related(suite: &SuiteConfig) {
    let mut t = Table::new(&[
        "dataset",
        "PDPR(ms/it)",
        "push",
        "edge-centric",
        "grid-2d",
        "BVGAS",
        "PCPM",
    ]);
    let iters = suite.iterations.min(10);
    let mut cfg = suite.timing_config().with_iterations(iters);
    cfg.threads = suite.threads;
    let per_iter = |r: &pcpm_core::pr::PrResult| {
        f3(r.timings.total().as_secs_f64() * 1e3 / r.iterations.max(1) as f64)
    };
    for (d, g) in suite.all_graphs() {
        let pd = pcpm_baselines::pdpr(&g, &cfg).expect("pdpr");
        let ps = pcpm_baselines::push_pagerank(&g, &cfg).expect("push");
        let ec = pcpm_baselines::edge_centric(&g, &cfg).expect("edge centric");
        let gr = pcpm_baselines::grid_pagerank(&g, &cfg).expect("grid");
        let bv = pcpm_baselines::bvgas(&g, &cfg).expect("bvgas");
        let pc = pcpm_core::pagerank::pagerank(&g, &cfg).expect("pcpm");
        t.row(vec![
            d.name().into(),
            per_iter(&pd),
            per_iter(&ps),
            per_iter(&ec),
            per_iter(&gr),
            per_iter(&bv),
            per_iter(&pc),
        ]);
    }
    t.print("Related systems: time per PageRank iteration (ms)");
    let _ = t.write_csv(&suite.out_dir, "related");

    // Traffic side on the simulated machine.
    let mut tt = Table::new(&[
        "dataset",
        "PDPR B/e",
        "push B/e",
        "edge-centric B/e",
        "grid-2d B/e",
        "BVGAS B/e",
        "PCPM B/e",
    ]);
    for (d, g) in suite.all_graphs() {
        let m = g.num_edges();
        let (pd, _) = replay_pdpr(&g, sim_cache());
        let ps = pcpm_memsim::replay_push(&g, sim_cache());
        let ec = pcpm_memsim::replay_edge_centric(&g, SIM_PARTITION_NODES, sim_cache());
        let gr = pcpm_memsim::replay_grid(&g, SIM_PARTITION_NODES, sim_cache());
        let bv = replay_bvgas(&g, SIM_PARTITION_NODES, 32, sim_cache());
        let pc = replay_pcpm(&g, SIM_PARTITION_NODES, sim_cache());
        tt.row(vec![
            d.name().into(),
            f2(pd.bytes_per_edge(m)),
            f2(ps.bytes_per_edge(m)),
            f2(ec.bytes_per_edge(m)),
            f2(gr.bytes_per_edge(m)),
            f2(bv.bytes_per_edge(m)),
            f2(pc.bytes_per_edge(m)),
        ]);
    }
    tt.print("Related systems: DRAM traffic per edge (simulated machine)");
    let _ = tt.write_csv(&suite.out_dir, "related_traffic");
}

/// Table 4: dataset characteristics (paper vs stand-in).
fn table4(suite: &SuiteConfig) {
    let mut t = Table::new(&[
        "dataset",
        "paper n(M)",
        "paper m(M)",
        "paper deg",
        "standin n(K)",
        "standin m(K)",
        "standin deg",
    ]);
    for (d, g) in suite.all_graphs() {
        let (pn, pm, pdeg) = d.paper_stats();
        let s = stats(&g);
        t.row(vec![
            d.name().into(),
            f2(pn / 1e6),
            f2(pm / 1e6),
            f2(pdeg),
            f2(f64::from(s.num_nodes) / 1e3),
            f2(s.num_edges as f64 / 1e3),
            f2(s.avg_degree),
        ]);
    }
    t.print("Table 4: graph datasets (paper vs stand-in)");
    let _ = t.write_csv(&suite.out_dir, "table4");
}

/// Fig. 1: fraction of PDPR DRAM traffic due to vertex-value accesses.
fn fig1(suite: &SuiteConfig) {
    let mut t = Table::new(&["dataset", "value traffic %", "cmr"]);
    for (d, g) in suite.all_graphs() {
        let (traffic, cmr) = replay_pdpr(&g, sim_cache());
        t.row(vec![
            d.name().into(),
            f2(traffic.region_fraction(pcpm_memsim::Region::Values) * 100.0),
            f3(cmr),
        ]);
    }
    t.print("Fig. 1: vertex-value share of PDPR DRAM traffic (simulated LLC)");
    let _ = t.write_csv(&suite.out_dir, "fig1");
}

/// Fig. 6: predicted DRAM traffic vs compression ratio (analytical).
fn fig6(suite: &SuiteConfig) {
    let p = ModelParams::fig6_kron();
    let rs: Vec<f64> = vec![1.0, 2.0, 3.0, 3.13, 4.0, 5.0, 8.0, 12.0, 16.0, 24.0, 32.0];
    let curve = fig6_curve(&p, &rs);
    let mut t = Table::new(&["r", "predicted GB"]);
    for (r, gb) in &curve {
        t.row(vec![f2(*r), f2(*gb)]);
    }
    t.print("Fig. 6: predicted kron DRAM traffic vs r (n=33.5M, m=1070M, k=512)");
    // Annotate the stand-in's actual r at the simulated partition size.
    let g = suite.graph(Dataset::Kron);
    let parts = Partitioner::new(g.num_nodes(), SIM_PARTITION_NODES).expect("partitioner");
    let png = Png::build(EdgeView::from_csr(&g), parts, parts);
    println!(
        "   (kron stand-in at q={} nodes: measured r = {:.2}; paper reports r = 3.06 at 256 KB)",
        SIM_PARTITION_NODES,
        png.compression_ratio()
    );
    let _ = t.write_csv(&suite.out_dir, "fig6");
}

/// Fig. 7 (GTEPS) and Table 5 (per-phase execution times).
fn fig7_and_table5(suite: &SuiteConfig) {
    let mut fig7 = Table::new(&[
        "dataset",
        "PDPR",
        "BVGAS",
        "PCPM",
        "speedup vs BVGAS",
        "vs PDPR",
    ]);
    let mut t5 = Table::new(&[
        "dataset",
        "PDPR total(s)",
        "BV scat(s)",
        "BV gath(s)",
        "BV total(s)",
        "PC scat(s)",
        "PC gath(s)",
        "PC total(s)",
    ]);
    for (d, g) in suite.all_graphs() {
        let m = g.num_edges();
        let pd = time_pdpr(&g, suite);
        let bv = time_bvgas(&g, suite);
        let pc = time_pcpm(&g, suite);
        let iters = suite.iterations as f64;
        fig7.row(vec![
            d.name().into(),
            f3(pd.gteps(m)),
            f3(bv.gteps(m)),
            f3(pc.gteps(m)),
            f2(bv.timings.total().as_secs_f64() / pc.timings.total().as_secs_f64()),
            f2(pd.timings.total().as_secs_f64() / pc.timings.total().as_secs_f64()),
        ]);
        t5.row(vec![
            d.name().into(),
            f3(pd.timings.total().as_secs_f64() / iters),
            f3(bv.timings.scatter.as_secs_f64() / iters),
            f3(bv.timings.gather.as_secs_f64() / iters),
            f3(bv.timings.total().as_secs_f64() / iters),
            f3(pc.timings.scatter.as_secs_f64() / iters),
            f3(pc.timings.gather.as_secs_f64() / iters),
            f3(pc.timings.total().as_secs_f64() / iters),
        ]);
    }
    fig7.print("Fig. 7: throughput in GTEPS (higher is better)");
    t5.print("Table 5: execution time per PageRank iteration");
    let _ = fig7.write_csv(&suite.out_dir, "fig7");
    let _ = t5.write_csv(&suite.out_dir, "table5");
}

/// Figs. 8, 9, 10: traffic per edge, sustained bandwidth, energy per edge.
fn fig8_9_10(suite: &SuiteConfig) {
    let mut f8 = Table::new(&["dataset", "PDPR B/edge", "BVGAS B/edge", "PCPM B/edge"]);
    let mut f9 = Table::new(&["dataset", "PDPR GB/s", "BVGAS GB/s", "PCPM GB/s"]);
    let mut f10 = Table::new(&["dataset", "PDPR uJ/edge", "BVGAS uJ/edge", "PCPM uJ/edge"]);
    for (d, g) in suite.all_graphs() {
        let m = g.num_edges();
        let (tr_pd, _) = replay_pdpr(&g, sim_cache());
        let tr_bv = replay_bvgas(&g, SIM_PARTITION_NODES, 32, sim_cache());
        let tr_pc = replay_pcpm(&g, SIM_PARTITION_NODES, sim_cache());
        f8.row(vec![
            d.name().into(),
            f2(tr_pd.bytes_per_edge(m)),
            f2(tr_bv.bytes_per_edge(m)),
            f2(tr_pc.bytes_per_edge(m)),
        ]);
        // Bandwidth: simulated traffic over measured per-iteration time.
        let pd = time_pdpr(&g, suite);
        let bv = time_bvgas(&g, suite);
        let pc = time_pcpm(&g, suite);
        let iters = suite.iterations as f64;
        f9.row(vec![
            d.name().into(),
            f2(sustained_bandwidth_gbs(
                &tr_pd,
                pd.timings.total().as_secs_f64() / iters,
            )),
            f2(sustained_bandwidth_gbs(
                &tr_bv,
                bv.timings.total().as_secs_f64() / iters,
            )),
            f2(sustained_bandwidth_gbs(
                &tr_pc,
                pc.timings.total().as_secs_f64() / iters,
            )),
        ]);
        f10.row(vec![
            d.name().into(),
            format!("{:.5}", energy_per_edge_uj(&tr_pd, m)),
            format!("{:.5}", energy_per_edge_uj(&tr_bv, m)),
            format!("{:.5}", energy_per_edge_uj(&tr_pc, m)),
        ]);
    }
    f8.print("Fig. 8: DRAM traffic per edge (simulated machine)");
    f9.print("Fig. 9: sustained bandwidth (sim traffic / measured time — relative comparison)");
    f10.print("Fig. 10: DRAM energy per edge (energy model)");
    let _ = f8.write_csv(&suite.out_dir, "fig8");
    let _ = f9.write_csv(&suite.out_dir, "fig9");
    let _ = f10.write_csv(&suite.out_dir, "fig10");
}

/// Table 6: locality (GOrder) vs compression ratio.
fn table6(suite: &SuiteConfig) {
    let mut t = Table::new(&[
        "dataset",
        "graph edges(K)",
        "PNG edges orig(K)",
        "r orig",
        "PNG edges gorder(K)",
        "r gorder",
    ]);
    for d in Dataset::ALL {
        let g = suite.graph(d);
        let gg = suite.gorder_graph(d);
        let png = |g: &Csr| {
            let parts = Partitioner::new(g.num_nodes(), SIM_PARTITION_NODES).expect("parts");
            Png::build(EdgeView::from_csr(g), parts, parts)
        };
        let p_orig = png(&g);
        let p_go = png(&gg);
        t.row(vec![
            d.name().into(),
            f2(g.num_edges() as f64 / 1e3),
            f2(p_orig.num_compressed_edges() as f64 / 1e3),
            f2(p_orig.compression_ratio()),
            f2(p_go.num_compressed_edges() as f64 / 1e3),
            f2(p_go.compression_ratio()),
        ]);
    }
    t.print("Table 6: node labeling vs compression ratio r");
    let _ = t.write_csv(&suite.out_dir, "table6");
}

/// Table 7: DRAM traffic per iteration, original vs GOrder labeling.
fn table7(suite: &SuiteConfig) {
    let mut t = Table::new(&[
        "dataset",
        "PDPR orig(MB)",
        "PDPR gorder(MB)",
        "BV orig(MB)",
        "BV gorder(MB)",
        "PC orig(MB)",
        "PC gorder(MB)",
    ]);
    let mb = |b: u64| f2(b as f64 / 1e6);
    for d in Dataset::ALL {
        let g = suite.graph(d);
        let gg = suite.gorder_graph(d);
        let (pd_o, _) = replay_pdpr(&g, sim_cache());
        let (pd_g, _) = replay_pdpr(&gg, sim_cache());
        let bv_o = replay_bvgas(&g, SIM_PARTITION_NODES, 32, sim_cache());
        let bv_g = replay_bvgas(&gg, SIM_PARTITION_NODES, 32, sim_cache());
        let pc_o = replay_pcpm(&g, SIM_PARTITION_NODES, sim_cache());
        let pc_g = replay_pcpm(&gg, SIM_PARTITION_NODES, sim_cache());
        t.row(vec![
            d.name().into(),
            mb(pd_o.total_bytes()),
            mb(pd_g.total_bytes()),
            mb(bv_o.total_bytes()),
            mb(bv_g.total_bytes()),
            mb(pc_o.total_bytes()),
            mb(pc_g.total_bytes()),
        ]);
    }
    t.print("Table 7: DRAM transfer per iteration, original vs GOrder labeling");
    let _ = t.write_csv(&suite.out_dir, "table7");
}

/// The simulated partition-size sweep (powers of two, paper-equivalent
/// 32 KB → 8 MB).
fn sim_sweep_sizes() -> Vec<u32> {
    // 64 nodes (256 B sim ≈ 32 KB paper) … 16384 nodes (64 KB ≈ 8 MB).
    (6..=14).map(|s| 1u32 << s).collect()
}

/// Figs. 11 and 12: compression ratio and traffic vs partition size.
fn fig11_12(suite: &SuiteConfig) {
    let sizes = sim_sweep_sizes();
    let mut header: Vec<String> = vec!["dataset".into()];
    for q in &sizes {
        header.push(format!("{}KB", u64::from(*q) * 4 * SIM_SCALE_DOWN / 1024));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut f11 = Table::new(&hdr);
    let mut f12 = Table::new(&hdr);
    for (d, g) in suite.all_graphs() {
        let mut r_row = vec![d.name().to_string()];
        let mut t_row = vec![d.name().to_string()];
        for &q in &sizes {
            let parts = Partitioner::new(g.num_nodes(), q).expect("parts");
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            r_row.push(f2(png.compression_ratio()));
            // Fig. 12 replays against the per-worker cache share: with 16
            // workers each processing its own partition, a partition only
            // enjoys 1/16th of the LLC — that is what bends the curve up
            // at 2–8 MB in the paper.
            let traffic = pcpm_memsim::replay::replay_pcpm_png(&g, &png, sim_worker_cache());
            t_row.push(f2(traffic.bytes_per_edge(g.num_edges())));
        }
        f11.row(r_row);
        f12.row(t_row);
    }
    f11.print("Fig. 11: compression ratio vs partition size (paper-equivalent bytes)");
    f12.print("Fig. 12: PCPM DRAM bytes/edge vs partition size (simulated machine)");
    let _ = f11.write_csv(&suite.out_dir, "fig11");
    let _ = f12.write_csv(&suite.out_dir, "fig12");
}

/// Figs. 13 and 14: execution time vs partition size (real machine).
fn fig13_14(suite: &SuiteConfig) {
    // Real-machine sweep: 4 KB … 1 MB partitions.
    let sizes: Vec<usize> = (12..=20).map(|s| 1usize << s).collect();
    let mut header: Vec<String> = vec!["dataset".into()];
    for b in &sizes {
        header.push(format!("{}KB", b / 1024));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut f13 = Table::new(&hdr);
    let mut f14 = Table::new(&["partition", "scatter(s)", "gather(s)"]);
    let iters = suite.iterations.min(10);
    for (d, g) in suite.all_graphs() {
        let mut times = Vec::new();
        let mut phase_rows = Vec::new();
        for &bytes in &sizes {
            let mut cfg = PcpmConfig::default()
                .with_partition_bytes(bytes)
                .with_iterations(iters);
            cfg.threads = suite.threads;
            let mut engine: pcpm_core::PcpmPipeline =
                pcpm_core::PcpmPipeline::new(&g, &cfg).expect("engine");
            let r = pcpm_core::pagerank::pagerank_with_engine(
                &g,
                &cfg,
                Default::default(),
                &mut engine,
            )
            .expect("run");
            times.push(r.timings.total().as_secs_f64());
            phase_rows.push((
                bytes,
                r.timings.scatter.as_secs_f64(),
                r.timings.gather.as_secs_f64(),
            ));
        }
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut row = vec![d.name().to_string()];
        row.extend(times.iter().map(|&t| f2(t / best)));
        f13.row(row);
        if d == Dataset::Sd1 {
            for (bytes, s, gt) in phase_rows {
                f14.row(vec![format!("{}KB", bytes / 1024), f3(s), f3(gt)]);
            }
        }
    }
    f13.print("Fig. 13: normalized execution time vs partition size (1.0 = best)");
    f14.print("Fig. 14: sd1 scatter/gather time vs partition size");
    let _ = f13.write_csv(&suite.out_dir, "fig13");
    let _ = f14.write_csv(&suite.out_dir, "fig14");
}

/// Design-choice ablation (beyond the paper's exhibits): each PCPM
/// optimization toggled individually, plus the compact-bin and
/// edge-centric extensions.
fn ablation(suite: &SuiteConfig) {
    use pcpm_core::engine::{GatherKind, ScatterKind};
    use pcpm_core::pagerank::{pagerank_with_variant, PcpmVariant};
    let mut t = Table::new(&[
        "dataset",
        "full(ms/it)",
        "csr-scatter",
        "branchy-gather",
        "compact-bins",
        "delta-bins",
        "edge-centric",
        "traffic B/e",
        "compact B/e",
    ]);
    let iters = suite.iterations.min(10);
    let mut cfg = suite.timing_config().with_iterations(iters);
    cfg.threads = suite.threads;
    for (d, g) in suite.all_graphs() {
        let per_iter = |r: &pcpm_core::pr::PrResult| {
            r.timings.total().as_secs_f64() * 1e3 / r.iterations.max(1) as f64
        };
        let full = pagerank_with_variant(&g, &cfg, PcpmVariant::default()).expect("full");
        let csr_scatter = pagerank_with_variant(
            &g,
            &cfg,
            PcpmVariant {
                scatter: ScatterKind::CsrTraversal,
                gather: GatherKind::default(),
            },
        )
        .expect("csr scatter");
        // The branchy gather is a wide-only ablation: pin its row to the
        // wide format so `--format compact|delta` sweeps the rest of the
        // table instead of erroring here.
        let branchy = pagerank_with_variant(
            &g,
            &cfg.with_bin_format(pcpm_core::BinFormatKind::Wide),
            PcpmVariant {
                scatter: ScatterKind::default(),
                gather: GatherKind::Branchy,
            },
        )
        .expect("branchy");
        let compact_cfg = cfg.with_compact_bins();
        let compact =
            pagerank_with_variant(&g, &compact_cfg, PcpmVariant::default()).expect("compact");
        let delta_cfg = cfg.with_bin_format(pcpm_core::BinFormatKind::Delta);
        let delta = pagerank_with_variant(&g, &delta_cfg, PcpmVariant::default()).expect("delta");
        let ec = pcpm_baselines::edge_centric::edge_centric(&g, &cfg).expect("edge centric");
        // Traffic side: wide vs compact destination IDs on the simulated
        // machine.
        let parts = Partitioner::new(g.num_nodes(), SIM_PARTITION_NODES).expect("parts");
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let wide = pcpm_memsim::replay::replay_pcpm_png_with(&g, &png, sim_cache(), 4);
        let thin = pcpm_memsim::replay::replay_pcpm_png_with(&g, &png, sim_cache(), 2);
        t.row(vec![
            d.name().into(),
            f3(per_iter(&full)),
            f3(per_iter(&csr_scatter)),
            f3(per_iter(&branchy)),
            f3(per_iter(&compact)),
            f3(per_iter(&delta)),
            f3(per_iter(&ec)),
            f2(wide.bytes_per_edge(g.num_edges())),
            f2(thin.bytes_per_edge(g.num_edges())),
        ]);
    }
    t.print("Ablation: PCPM design choices (time per iteration, ms; traffic per edge)");
    let _ = t.write_csv(&suite.out_dir, "ablation");
}

/// Fig. 13 companion on the simulated machine: modeled memory-access
/// cycles per edge across partition sizes, through a private-L2 +
/// shared-L3 hierarchy. Shows the paper's §5.3.2 observation that
/// 256 KB–1 MB partitions get *slower* (L3-served) before DRAM traffic
/// moves — independent of this host's real cache sizes.
fn fig13_sim(suite: &SuiteConfig) {
    use pcpm_memsim::hierarchy::{pcpm_value_latency, CacheHierarchy, LatencyModel};
    let sizes = sim_sweep_sizes();
    let mut header: Vec<String> = vec!["dataset".into()];
    for q in &sizes {
        header.push(format!("{}KB", u64::from(*q) * 4 * SIM_SCALE_DOWN / 1024));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    let model = LatencyModel::default();
    for (d, g) in suite.all_graphs() {
        let mut row = vec![d.name().to_string()];
        let mut cycles = Vec::new();
        for &q in &sizes {
            let parts = Partitioner::new(g.num_nodes(), q).expect("parts");
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            let summary = pcpm_value_latency(&g, &png, CacheHierarchy::paper_scaled());
            cycles.push(summary.cycles(&model) as f64 / g.num_edges() as f64);
        }
        let best = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        row.extend(cycles.iter().map(|&c| f2(c / best)));
        t.row(row);
    }
    t.print("Fig. 13 (simulated): normalized value-access latency vs partition size");
    let _ = t.write_csv(&suite.out_dir, "fig13sim");
}

/// Table 8: pre-processing time.
fn table8(suite: &SuiteConfig) {
    let mut t = Table::new(&[
        "dataset",
        "PCPM(s)",
        "BVGAS(s)",
        "PDPR(s)",
        "PCPM 1-iter(s)",
    ]);
    let cfg = PcpmConfig::default().with_partition_bytes(TIMING_PARTITION_BYTES);
    for (d, g) in suite.all_graphs() {
        let engine: pcpm_core::PcpmPipeline =
            pcpm_core::PcpmPipeline::new(&g, &cfg).expect("engine");
        let bv = pcpm_baselines::BvgasRunner::new(&g, &cfg).expect("bvgas");
        // One-iteration time for amortization context.
        let mut suite1 = suite.clone();
        suite1.iterations = 1;
        let one = time_pcpm(&g, &suite1);
        t.row(vec![
            d.name().into(),
            f3(engine.preprocess_time().as_secs_f64()),
            f3(bv.preprocess_time().as_secs_f64()),
            "0.000".into(),
            f3(one.timings.total().as_secs_f64()),
        ]);
    }
    t.print("Table 8: pre-processing time (amortized over PageRank iterations)");
    let _ = t.write_csv(&suite.out_dir, "table8");
}
