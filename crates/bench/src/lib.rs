//! Shared helpers for the reproduction harness and criterion benches.

#![forbid(unsafe_code)]

pub mod suite;
