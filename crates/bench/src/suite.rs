//! Shared experiment infrastructure: dataset loading (with disk caching),
//! the scaled simulation machine, timing wrappers and table formatting.
//!
//! # The scaled machine
//!
//! The paper's datasets are 0.46–1.9 B edges against a 2 × 25 MB L3; our
//! stand-ins are ~128× smaller, so the *traffic replays* run against a
//! proportionally scaled cache ([`sim_cache`], 128 KB) and partition size
//! ([`SIM_PARTITION_NODES`], 512 nodes ≈ 2 KB of values — the same ~500
//! partitions the paper's 256 KB partitions give on kron). Partition-size
//! sweeps report both the simulated bytes and the paper-equivalent bytes
//! (× [`SIM_SCALE_DOWN`]).
//!
//! *Timing* experiments run on the real host: they use
//! [`TIMING_PARTITION_BYTES`] by default (32 KB — enough partitions at
//! stand-in scale to feed every core, still L2-resident) and whatever
//! parallelism rayon finds.

use pcpm_baselines::{BvgasRunner, PdprRunner};
use pcpm_core::algebra::PlusF32;
use pcpm_core::pagerank::pagerank_with_unified_engine;
use pcpm_core::pr::PrResult;
use pcpm_core::{BinFormatKind, Engine, KernelKind, PcpmConfig};
use pcpm_graph::gen::datasets::{standin_at, Dataset};
use pcpm_graph::order::{reorder, OrderingKind};
use pcpm_graph::Csr;
use pcpm_memsim::CacheConfig;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Ratio between the paper's machine/datasets and the reproduction scale.
pub const SIM_SCALE_DOWN: u64 = 128;

/// Simulated-partition size in nodes for the traffic replays (2 KB of
/// values; paper-equivalent 256 KB).
pub const SIM_PARTITION_NODES: u32 = 512;

/// Real-machine partition byte budget for the timing experiments.
pub const TIMING_PARTITION_BYTES: usize = 32 * 1024;

/// The scaled stand-in for the paper's shared L3 (25 MB / 128 ≈ 128 KB,
/// keeping 64-byte lines and high associativity).
pub fn sim_cache() -> CacheConfig {
    CacheConfig {
        capacity: 128 * 1024,
        line: 64,
        ways: 16,
    }
}

/// The per-worker effective cache share: the paper's 16 threads divide
/// the L3, which is what makes 2–8 MB partitions thrash in Fig. 12. The
/// partition-size sweep replays against this share.
pub fn sim_worker_cache() -> CacheConfig {
    CacheConfig {
        capacity: 8 * 1024,
        line: 64,
        ways: 8,
    }
}

/// Experiment-wide configuration.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// log2 node count of the stand-ins (web/sd1 are one scale larger).
    pub scale: u32,
    /// PageRank iterations per timed run (the paper uses 20).
    pub iterations: usize,
    /// Directory for cached generated graphs and CSV output.
    pub out_dir: PathBuf,
    /// Thread override for the kernels.
    pub threads: Option<usize>,
    /// PCPM bin format for the timing experiments (`--format`).
    pub bin_format: BinFormatKind,
    /// PCPM gather/decode kernel for the timing experiments
    /// (`--kernel`; `Auto` resolves at engine build time).
    pub kernel: KernelKind,
    /// Engine-snapshot cache directory (`--cache-dir`): PCPM timing
    /// engines are loaded from snapshots keyed by graph × format ×
    /// partitioning when present, and saved after a cold build — so
    /// repeated harness runs (exhibit sweeps, `all`) stop re-paying the
    /// PNG/bin preprocessing per run.
    pub cache_dir: Option<PathBuf>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            scale: pcpm_graph::gen::datasets::DEFAULT_SCALE,
            iterations: 20,
            out_dir: PathBuf::from("results"),
            threads: None,
            bin_format: BinFormatKind::Wide,
            kernel: KernelKind::Auto,
            cache_dir: None,
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration for smoke tests and CI.
    pub fn quick() -> Self {
        Self {
            scale: 12,
            iterations: 5,
            ..Self::default()
        }
    }

    /// The PCPM config used by timing experiments.
    pub fn timing_config(&self) -> PcpmConfig {
        let mut cfg = PcpmConfig::default()
            .with_partition_bytes(TIMING_PARTITION_BYTES)
            .with_iterations(self.iterations)
            .with_bin_format(self.bin_format)
            .with_kernel(self.kernel);
        cfg.threads = self.threads;
        cfg
    }

    fn cache_path(&self, name: &str) -> PathBuf {
        self.out_dir
            .join("cache")
            .join(format!("{name}_s{}.bin", self.scale))
    }

    /// Generates (or loads from cache) the stand-in for `d`.
    pub fn graph(&self, d: Dataset) -> Csr {
        self.cached(d.name(), || {
            standin_at(d, self.scale).expect("generation cannot fail")
        })
    }

    /// Generates (or loads) the GOrder-relabeled stand-in for `d`.
    pub fn gorder_graph(&self, d: Dataset) -> Csr {
        let name = format!("{}_gorder", d.name());
        self.cached(&name, || {
            let g = self.graph(d);
            let (rg, _) = reorder(&g, OrderingKind::Gorder, 0).expect("reorder cannot fail");
            rg
        })
    }

    fn cached(&self, name: &str, gen: impl FnOnce() -> Csr) -> Csr {
        let path = self.cache_path(name);
        if let Ok(g) = pcpm_graph::io::load_binary(&path) {
            return g;
        }
        let g = gen();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = pcpm_graph::io::save_binary(&g, &path);
        g
    }

    /// All six datasets with their graphs, in paper order.
    pub fn all_graphs(&self) -> Vec<(Dataset, Csr)> {
        Dataset::ALL.iter().map(|&d| (d, self.graph(d))).collect()
    }
}

/// Runs PCPM PageRank with the timing configuration, reusing a prepared
/// engine snapshot from [`SuiteConfig::cache_dir`] when one exists
/// (build-once across harness runs; the snapshot is keyed by graph
/// content × format × partitioning, so a changed stand-in misses).
pub fn time_pcpm(g: &Csr, suite: &SuiteConfig) -> PrResult {
    let cfg = suite.timing_config();
    let mut engine = pcpm_timing_engine(g, suite, &cfg);
    pagerank_with_unified_engine(g, &cfg, &mut engine, None).expect("pcpm run")
}

/// Builds (or snapshot-loads) the PCPM timing engine.
fn pcpm_timing_engine(g: &Csr, suite: &SuiteConfig, cfg: &PcpmConfig) -> Engine<PlusF32> {
    let Some(dir) = &suite.cache_dir else {
        return Engine::<PlusF32>::builder(g)
            .config(*cfg)
            .build()
            .expect("engine build");
    };
    std::fs::create_dir_all(dir).expect("snapshot cache dir");
    let key = pcpm_graph::io::checksum64(&pcpm_graph::io::to_bytes(g));
    let path = dir.join(format!(
        "pcpm-{key:016x}-{}-q{}.pcpmc",
        cfg.bin_format,
        cfg.partition_nodes()
    ));
    if path.exists() {
        let mut b = pcpm_core::SnapshotEngineBuilder::<PlusF32>::open(&path)
            .expect("snapshot open")
            .expect_config(cfg, false)
            .expect("snapshot config")
            .expect_graph(g)
            .expect("snapshot graph")
            .kernel(cfg.kernel);
        if let Some(t) = cfg.threads {
            b = b.threads(t);
        }
        return b.build().expect("snapshot build");
    }
    // Snapshotting requires a retained graph, which only a shared
    // handle provides; the one-time clone here is the price of
    // populating the cache, paid on miss only.
    let shared = std::sync::Arc::new(g.clone());
    let engine = Engine::<PlusF32>::builder_shared(&shared)
        .config(*cfg)
        .build()
        .expect("engine build");
    engine.save_snapshot(&path).expect("snapshot save");
    engine
}

/// Runs BVGAS PageRank with the timing configuration.
pub fn time_bvgas(g: &Csr, suite: &SuiteConfig) -> PrResult {
    let cfg = suite.timing_config();
    let runner = BvgasRunner::new(g, &cfg).expect("bvgas build");
    runner.run(g, &cfg).expect("bvgas run")
}

/// Runs pull-direction PageRank with the timing configuration.
pub fn time_pdpr(g: &Csr, suite: &SuiteConfig) -> PrResult {
    let cfg = suite.timing_config();
    PdprRunner::new(g).run(&cfg).expect("pdpr run")
}

/// Times a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// A plain-text / CSV result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {title} ==\n"));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }

    /// Writes the table as CSV under `dir` (creating it if needed).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_generates_and_caches() {
        let mut suite = SuiteConfig::quick();
        suite.out_dir = std::env::temp_dir().join("pcpm_suite_test");
        let _ = std::fs::remove_dir_all(&suite.out_dir);
        let g1 = suite.graph(Dataset::Gplus);
        let g2 = suite.graph(Dataset::Gplus); // from cache
        assert_eq!(g1, g2);
        assert!(suite.cache_path("gplus").exists());
        let _ = std::fs::remove_dir_all(&suite.out_dir);
    }

    #[test]
    fn timing_wrappers_agree_with_each_other() {
        let mut suite = SuiteConfig::quick();
        suite.scale = 10;
        suite.iterations = 3;
        suite.out_dir = std::env::temp_dir().join("pcpm_suite_test2");
        let _ = std::fs::remove_dir_all(&suite.out_dir);
        let g = suite.graph(Dataset::Kron);
        let a = time_pcpm(&g, &suite);
        let b = time_pdpr(&g, &suite);
        let c = time_bvgas(&g, &suite);
        for i in 0..g.num_nodes() as usize {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-5);
            assert!((a.scores[i] - c.scores[i]).abs() < 1e-5);
        }
        let _ = std::fs::remove_dir_all(&suite.out_dir);
    }

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new(&["dataset", "gteps"]);
        t.row(vec!["kron".into(), "1.23".into()]);
        let s = t.render("Fig 7");
        assert!(s.contains("Fig 7"));
        assert!(s.contains("kron"));
        let dir = std::env::temp_dir().join("pcpm_table_test");
        let path = t.write_csv(&dir, "fig7").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("dataset,gteps\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
