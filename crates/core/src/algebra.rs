//! Semiring-style algebras: PCPM as a programming model (paper §6).
//!
//! The paper closes by suggesting PCPM as "an efficient programming model
//! for other graph algorithms". The whole pipeline — partitioning, PNG,
//! bins, branch-avoiding gather — is agnostic to *what* flows along the
//! edges; only the gather's reduction and the per-edge contribution
//! change. This module captures that variation point:
//!
//! - [`PlusF32`] — the PageRank / SpMV semiring (`+`, `w·x`);
//! - [`MinPlusF32`] — shortest paths (`min`, `x + w`);
//! - [`MinLabel`] — label propagation / connected components (`min`, `x`);
//! - [`MinLevel`] — BFS levels (`min`, `x + 1`);
//! - [`OrBool`] — reachability (`|`, `x`).
//!
//! Algorithms built on these live in the `pcpm-algos` crate.

/// A gather-phase algebra: how messages combine into a vertex value and
/// what an individual edge contributes.
///
/// The `'static` bound lets engines store algebra-parameterized backends
/// as trait objects; algebras are zero-sized marker types, so this costs
/// nothing.
pub trait Algebra: Send + Sync + 'static {
    /// The scalar carried in update bins and vertex arrays.
    type T: Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static;

    /// Identity of [`Algebra::combine`] (the gather initializes partial
    /// results with this).
    fn identity() -> Self::T;

    /// Associative, commutative reduction of two contributions.
    fn combine(a: Self::T, b: Self::T) -> Self::T;

    /// Contribution of an unweighted edge whose source propagated `x`.
    #[inline]
    fn extend(x: Self::T) -> Self::T {
        x
    }

    /// Contribution of an edge with weight `w` whose source propagated
    /// `x`.
    fn extend_weighted(w: f32, x: Self::T) -> Self::T;
}

/// The ordinary `(+, ×)` semiring over `f32`: PageRank and SpMV.
pub struct PlusF32;

impl Algebra for PlusF32 {
    type T = f32;

    #[inline]
    fn identity() -> f32 {
        0.0
    }

    #[inline]
    fn combine(a: f32, b: f32) -> f32 {
        a + b
    }

    #[inline]
    fn extend_weighted(w: f32, x: f32) -> f32 {
        w * x
    }
}

/// The tropical `(min, +)` semiring over `f32`: single-source shortest
/// paths by Bellman-Ford-style relaxation.
pub struct MinPlusF32;

impl Algebra for MinPlusF32 {
    type T = f32;

    #[inline]
    fn identity() -> f32 {
        f32::INFINITY
    }

    #[inline]
    fn combine(a: f32, b: f32) -> f32 {
        a.min(b)
    }

    #[inline]
    fn extend_weighted(w: f32, x: f32) -> f32 {
        x + w
    }
}

/// Minimum-label propagation over `u32`: connected components.
pub struct MinLabel;

impl Algebra for MinLabel {
    type T = u32;

    #[inline]
    fn identity() -> u32 {
        u32::MAX
    }

    #[inline]
    fn combine(a: u32, b: u32) -> u32 {
        a.min(b)
    }

    #[inline]
    fn extend_weighted(_w: f32, x: u32) -> u32 {
        x
    }
}

/// Hop-count propagation over `u32`: BFS levels (`u32::MAX` means
/// unreached; saturating so the identity survives `extend`).
pub struct MinLevel;

impl Algebra for MinLevel {
    type T = u32;

    #[inline]
    fn identity() -> u32 {
        u32::MAX
    }

    #[inline]
    fn combine(a: u32, b: u32) -> u32 {
        a.min(b)
    }

    #[inline]
    fn extend(x: u32) -> u32 {
        x.saturating_add(1)
    }

    #[inline]
    fn extend_weighted(_w: f32, x: u32) -> u32 {
        x.saturating_add(1)
    }
}

/// Boolean reachability (`false` = unreached).
pub struct OrBool;

impl Algebra for OrBool {
    type T = bool;

    #[inline]
    fn identity() -> bool {
        false
    }

    #[inline]
    fn combine(a: bool, b: bool) -> bool {
        a | b
    }

    #[inline]
    fn extend_weighted(_w: f32, x: bool) -> bool {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semiring_laws<A: Algebra>(samples: &[A::T]) {
        for &a in samples {
            // Identity law.
            assert_eq!(A::combine(A::identity(), a), a);
            assert_eq!(A::combine(a, A::identity()), a);
            for &b in samples {
                // Commutativity.
                assert_eq!(A::combine(a, b), A::combine(b, a));
                for &c in samples {
                    // Associativity.
                    assert_eq!(
                        A::combine(A::combine(a, b), c),
                        A::combine(a, A::combine(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn plus_f32_laws() {
        check_semiring_laws::<PlusF32>(&[0.0, 1.0, 2.5, -3.0]);
        assert_eq!(PlusF32::extend_weighted(2.0, 3.0), 6.0);
    }

    #[test]
    fn min_plus_laws() {
        check_semiring_laws::<MinPlusF32>(&[0.0, 1.0, 5.5, f32::INFINITY]);
        assert_eq!(MinPlusF32::extend_weighted(2.0, 3.0), 5.0);
        // Infinity stays absorbing through extension.
        assert_eq!(
            MinPlusF32::extend_weighted(1.0, f32::INFINITY),
            f32::INFINITY
        );
    }

    #[test]
    fn min_label_laws() {
        check_semiring_laws::<MinLabel>(&[0, 7, 42, u32::MAX]);
        assert_eq!(MinLabel::extend(9), 9);
    }

    #[test]
    fn min_level_saturates() {
        check_semiring_laws::<MinLevel>(&[0, 3, u32::MAX]);
        assert_eq!(
            MinLevel::extend(u32::MAX),
            u32::MAX,
            "unreached must stay unreached"
        );
        assert_eq!(MinLevel::extend(4), 5);
    }

    #[test]
    fn or_bool_laws() {
        check_semiring_laws::<OrBool>(&[false, true]);
    }
}
