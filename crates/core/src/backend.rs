//! The unified execution API: one algebra-generic [`Engine`] in front of
//! pluggable [`Backend`] dataplanes.
//!
//! The paper closes by proposing PCPM as "an efficient programming model
//! for other graph algorithms". This module turns that claim into an
//! interface: *control plane* (pre-processing — partitioning, PNG and bin
//! construction, edge sorting, transposition) happens once in
//! [`Backend::prepare`], and the *dataplane* — one scatter→gather round
//! `y[t] = ⊕_{(s,t) ∈ E} extend(w(s,t), x[s])` — is [`Backend::step`].
//! Every algorithm in `pcpm-algos` drives that one method, so any
//! algorithm runs on any backend and ablations are apples-to-apples.
//!
//! Four backends ship in this crate:
//!
//! - [`BackendKind::Pcpm`] — the paper's partition-centric pipeline
//!   (PNG scatter + branch-avoiding gather, wide or compact bins,
//!   per-phase ablation variants chosen at build time);
//! - [`BackendKind::Pull`] — conventional pull-direction traversal over
//!   the transpose (Algorithm 1's dataplane, the PDPR baseline);
//! - [`BackendKind::Push`] — push-direction traversal over the original
//!   CSR (the paper's §2.1 motivation baseline);
//! - [`BackendKind::EdgeCentric`] — X-Stream-style streaming over a COO
//!   list pre-sorted by destination bin (§2.2).
//!
//! The BVGAS and grid baselines implement [`Backend`] in
//! `pcpm-baselines` and plug in through [`Engine::from_backend`].
//!
//! # Examples
//!
//! ```
//! use pcpm_graph::gen::erdos_renyi;
//! use pcpm_core::backend::{BackendKind, Engine};
//! use pcpm_core::algebra::PlusF32;
//!
//! let g = erdos_renyi(100, 600, 1).unwrap();
//! let mut engine = Engine::<PlusF32>::builder(&g)
//!     .partition_bytes(64 * 4)
//!     .backend(BackendKind::Pcpm)
//!     .build()
//!     .unwrap();
//! let x = vec![1.0f32; 100];
//! let mut y = vec![0.0f32; 100];
//! engine.step(&x, &mut y).unwrap();
//! assert!(engine.report().compression_ratio.unwrap() >= 1.0);
//! ```

use crate::algebra::Algebra;
use crate::config::PcpmConfig;
use crate::engine::{FormatPipeline, GatherKind, ScatterKind};
use crate::error::{PcpmError, SnapshotError};
use crate::format::{BinFormat, BinFormatKind, CompactFormat, DeltaFormat, WideFormat};
use crate::kernel::KernelKind;
use crate::partition::split_by_lens;
use crate::pr::PhaseTimings;
use crate::snapshot::{BinState, BinStateInner, DataplaneState, Snapshot};
use crate::update::{RepairStats, UpdateBatch, UpdateOutcome};
use pcpm_graph::{Csr, EdgeWeights};
use rayon::prelude::*;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Everything a backend may use during pre-processing.
///
/// `scatter` / `gather` select ablation variants for backends that have
/// them (currently only PCPM); other backends ignore the fields — the
/// builder rejects non-default variants on backends that cannot honour
/// them, so a prepared backend never silently drops a requested option.
pub struct PrepareSpec<'a> {
    /// The graph structure (sources → destinations).
    pub graph: &'a Csr,
    /// The same graph behind a shared handle, when the caller has one.
    /// Backends that must retain the adjacency past `prepare` (push,
    /// the CSR-traversal scatter ablation) clone this `Arc` instead of
    /// deep-copying the graph.
    pub shared: Option<&'a Arc<Csr>>,
    /// Optional per-edge weights, parallel to the CSR targets array.
    pub weights: Option<&'a [f32]>,
    /// Engine configuration (partitioning, threads, compact bins).
    pub cfg: PcpmConfig,
    /// Scatter variant (PCPM only).
    pub scatter: ScatterKind,
    /// Gather variant (PCPM only).
    pub gather: GatherKind,
}

impl PrepareSpec<'_> {
    /// A retainable handle on the graph: the shared `Arc` when present
    /// (zero-copy), otherwise a one-time deep copy.
    pub fn graph_arc(&self) -> Arc<Csr> {
        match self.shared {
            Some(arc) => Arc::clone(arc),
            None => Arc::new(self.graph.clone()),
        }
    }
}

/// Static facts a backend reports about its prepared state.
#[derive(Clone, Debug)]
pub struct BackendMetrics {
    /// Human-readable dataplane name (`"pcpm"`, `"pull"`, …).
    pub name: &'static str,
    /// Wall-clock pre-processing time spent in `prepare`.
    pub preprocess: Duration,
    /// Heap bytes held by message bins / auxiliary streams (0 when the
    /// backend streams directly from the graph).
    pub aux_memory_bytes: u64,
    /// PNG compression ratio `r = |E| / |E'|`, when the backend has one.
    pub compression_ratio: Option<f64>,
    /// Physical bin format name, for backends with a format axis
    /// (`"wide"` / `"compact"` / `"delta"` on PCPM, `None` elsewhere).
    pub bin_format: Option<&'static str>,
    /// Destination-ID compression relative to the wide baseline
    /// (`4·|E| / dest-stream bytes`): 1.0 wide, 2.0 compact, measured
    /// for delta; `None` for backends without message bins.
    pub bin_compression: Option<f64>,
    /// Physical bytes of the destination-ID bin stream scanned by one
    /// gather pass — the paper's bandwidth-bound term; `None` for
    /// backends without message bins.
    pub dest_stream_bytes: Option<u64>,
    /// Concrete gather kernel name (`"scalar"` / `"unrolled"`, `Auto`
    /// already resolved at build time) for backends with a kernel axis;
    /// `None` elsewhere.
    pub kernel: Option<&'static str>,
}

/// A pluggable dataplane: pre-processed state that can run one
/// scatter→gather round per call.
///
/// Implementations must be deterministic: the same `x` must produce the
/// same `y` on every call (all shipped backends decompose work into
/// exclusively-owned output slices, so this holds under any scheduler).
pub trait Backend<A: Algebra>: Send {
    /// Builds the backend's pre-processed state (the control plane).
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError>
    where
        Self: Sized;

    /// One propagation round: `y[t] = ⊕_{(s,t) ∈ E} extend(w, x[s])`,
    /// with `y` re-initialized to the algebra's identity first.
    ///
    /// Lengths are validated by [`Engine::step`]; implementations may
    /// assume `x.len() == num_src` and `y.len() == num_dst`.
    fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError>;

    /// One multi-query round: `ys[q] = ⊕ Aᵀ·xs[q]` for every query in
    /// the batch. The default loops over [`Backend::step`], so every
    /// backend supports batching; dataplanes with a real column-blocked
    /// SpMM (the PCPM pipeline) override it to scan their bin streams
    /// once per batch. Per-query output must be bit-identical to the
    /// sequential loop.
    ///
    /// Lengths are validated by [`Engine::step_many`]; implementations
    /// may assume `xs.len() == ys.len()` and per-vector lengths match
    /// `num_src` / `num_dst`.
    fn step_many(
        &mut self,
        xs: &[&[A::T]],
        ys: &mut [&mut [A::T]],
    ) -> Result<PhaseTimings, PcpmError> {
        let mut total = PhaseTimings::default();
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            total += self.step(x, y)?;
        }
        Ok(total)
    }

    /// Absorbs a batch of edge changes into the prepared state, given the
    /// *post-update* graph in `spec`.
    ///
    /// Returns `Ok(Some(stats))` when the backend repaired itself in
    /// place (the PCPM dataplanes re-scatter only touched partitions),
    /// or `Ok(None)` when it cannot — [`Engine::update`] then falls back
    /// to a full [`Backend::prepare`]. The default declines, so every
    /// external backend keeps working unchanged.
    fn update(
        &mut self,
        spec: &PrepareSpec<'_>,
        batch: &UpdateBatch,
    ) -> Result<Option<RepairStats>, PcpmError> {
        let _ = (spec, batch);
        Ok(None)
    }

    /// Static facts about the prepared state.
    fn metrics(&self) -> BackendMetrics;

    /// Exports the serializable dataplane state for the engine-snapshot
    /// cache ([`Engine::save_snapshot`]). The default declines — only
    /// the PCPM dataplane is snapshotable today.
    fn snapshot_state(&self) -> Option<DataplaneState> {
        None
    }
}

/// The built-in backends the [`EngineBuilder`] can construct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Partition-centric pipeline (the paper's design).
    #[default]
    Pcpm,
    /// Pull-direction traversal over the transpose (PDPR's dataplane).
    Pull,
    /// Push-direction traversal over the original CSR.
    Push,
    /// Edge-centric streaming over a destination-bin-sorted COO list.
    EdgeCentric,
}

impl BackendKind {
    /// All built-in kinds, for sweep tests and benches.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Pcpm,
        BackendKind::Pull,
        BackendKind::Push,
        BackendKind::EdgeCentric,
    ];

    /// The dataplane name as reported in [`BackendMetrics`].
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Pcpm => "pcpm",
            BackendKind::Pull => "pull",
            BackendKind::Push => "push",
            BackendKind::EdgeCentric => "edge_centric",
        }
    }
}

/// Uniform per-run execution facts, threaded through every backend.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Dataplane name.
    pub backend: &'static str,
    /// Rounds executed so far.
    pub steps: usize,
    /// Accumulated per-phase wall-clock time across all rounds.
    pub timings: PhaseTimings,
    /// Pre-processing (control plane) time.
    pub preprocess: Duration,
    /// Heap bytes of auxiliary state (message bins, sorted edge copies).
    pub aux_memory_bytes: u64,
    /// PNG compression ratio, for backends that build one.
    pub compression_ratio: Option<f64>,
    /// Physical bin format name, for backends with a format axis.
    pub bin_format: Option<&'static str>,
    /// Destination-ID compression relative to the wide baseline.
    pub bin_compression: Option<f64>,
    /// Whether the prepared state was loaded from a snapshot cache
    /// instead of built by `prepare` (in which case `preprocess` is the
    /// load wall-clock, not a build).
    pub loaded_from_snapshot: bool,
    /// Snapshot load wall-clock, present exactly when
    /// [`Self::loaded_from_snapshot`] is set.
    pub snapshot_load: Option<Duration>,
    /// Bytes of the destID bin stream one gather pass scans, for
    /// backends with message bins ([`BackendMetrics::dest_stream_bytes`]).
    pub dest_stream_bytes: Option<u64>,
    /// Rayon workers spawned process-wide since this engine was
    /// constructed (`rayon::diagnostics`). Includes other engines'
    /// pools when several coexist.
    pub pool_workers_spawned: u64,
    /// Rayon jobs dispatched process-wide since this engine was
    /// constructed (`rayon::diagnostics`).
    pub pool_jobs_dispatched: u64,
    /// Multi-query passes executed through [`Engine::step_many`]. Each
    /// counts once in [`Self::steps`] however many queries it carried.
    pub batch_passes: usize,
    /// Query vectors served by those batched passes.
    pub batch_queries: usize,
    /// Concrete gather kernel name, for backends with a kernel axis
    /// ([`BackendMetrics::kernel`]).
    pub kernel: Option<&'static str>,
}

impl ExecutionReport {
    /// Throughput in giga-edges traversed per second per round, the
    /// paper's Fig. 7 metric.
    pub fn gteps(&self, num_edges: u64) -> f64 {
        let per_round = self.timings.total().as_secs_f64() / self.steps.max(1) as f64;
        if per_round == 0.0 {
            0.0
        } else {
            num_edges as f64 / per_round / 1e9
        }
    }

    /// Total destID-stream bytes scanned across every gather pass so
    /// far (one full scan per step).
    pub fn dest_stream_total_bytes(&self) -> Option<u64> {
        self.dest_stream_bytes.map(|b| b * self.steps as u64)
    }

    /// Effective sequential bandwidth of the destID bin stream — total
    /// stream bytes scanned divided by cumulative gather wall-clock, in
    /// GB/s. This is the paper's headline number: PCPM wins exactly when
    /// this approaches DRAM bandwidth. `None` for backends without
    /// message bins or before the first step.
    pub fn dest_stream_gbps(&self) -> Option<f64> {
        let total = self.dest_stream_total_bytes()?;
        let secs = self.timings.gather.as_secs_f64();
        if total == 0 || secs == 0.0 {
            return None;
        }
        Some(total as f64 / secs / 1e9)
    }

    /// Query vectors answered so far: one per plain step plus however
    /// many each batched pass carried.
    pub fn queries_served(&self) -> usize {
        self.steps - self.batch_passes + self.batch_queries
    }

    /// Average queries amortized per bin-stream scan
    /// (`queries_served / steps`): 1.0 with no batching, approaching
    /// `Q` when every pass carries a full batch.
    pub fn batch_amortization(&self) -> f64 {
        self.queries_served() as f64 / self.steps.max(1) as f64
    }

    /// DestID-stream bytes scanned per query answered — the per-batch
    /// amortization stat: batching `Q` queries divides this by `Q`
    /// while `dest_stream_total_bytes` stays flat.
    pub fn dest_stream_bytes_per_query(&self) -> Option<f64> {
        let total = self.dest_stream_total_bytes()?;
        let queries = self.queries_served();
        if queries == 0 {
            return None;
        }
        Some(total as f64 / queries as f64)
    }
}

/// The unified execution engine: dimension checks, timing accounting and
/// a uniform report over any [`Backend`].
pub struct Engine<A: Algebra> {
    backend: Box<dyn Backend<A>>,
    num_src: u32,
    num_dst: u32,
    /// Engine-owned thread pool, built once when `PcpmConfig::threads`
    /// is set; preprocessing and every step install into it.
    pool: Option<Arc<rayon::ThreadPool>>,
    steps: usize,
    timings: PhaseTimings,
    /// Multi-query passes and the query vectors they carried
    /// ([`Engine::step_many`] bookkeeping for the report).
    batch_passes: usize,
    batch_queries: usize,
    /// The build recipe, kept so [`Engine::update`] can re-`prepare` a
    /// backend that declines incremental repair. `None` for engines
    /// wrapping an external backend ([`Engine::from_backend`]), which
    /// the engine does not know how to rebuild.
    recipe: Option<BuildRecipe>,
    /// The graph (and weights) the engine was prepared over, retained
    /// for [`Engine::save_snapshot`]. Always zero-copy: populated only
    /// when a shared handle exists — [`Engine::builder_shared`], a
    /// snapshot load, or any [`Engine::update`] (which receives an
    /// `Arc`). Engines built from a borrowed graph retain nothing
    /// rather than silently deep-copying it. `None` for externally
    /// prepared backends.
    source: Option<EngineSource>,
    /// Snapshot load wall-clock when the engine was rehydrated through
    /// [`Engine::from_snapshot`] instead of `prepare`.
    snapshot_load: Option<Duration>,
    /// `rayon::diagnostics` (workers_spawned, jobs_dispatched) at
    /// construction; [`Engine::report`] subtracts it so pool behaviour
    /// shows up in the same report as kernel timings.
    diag_base: (u64, u64),
}

/// The process-wide rayon diagnostics counters an engine baselines at
/// construction.
fn pool_diagnostics() -> (u64, u64) {
    (
        rayon::diagnostics::workers_spawned() as u64,
        rayon::diagnostics::jobs_dispatched() as u64,
    )
}

/// The retained build inputs behind [`Engine::save_snapshot`].
struct EngineSource {
    graph: Arc<Csr>,
    /// CSR-order edge weights (repairs re-read these).
    weights: Option<Vec<f32>>,
}

/// Everything needed to re-run `prepare` for a built-in backend.
#[derive(Clone, Copy, Debug)]
struct BuildRecipe {
    kind: BackendKind,
    cfg: PcpmConfig,
    scatter: ScatterKind,
    gather: GatherKind,
    /// Whether the engine was prepared with edge weights — updates must
    /// keep the same weightedness.
    weighted: bool,
}

/// Builds the engine-owned pool for an explicit thread count.
fn build_pool(threads: Option<usize>) -> Result<Option<Arc<rayon::ThreadPool>>, PcpmError> {
    threads
        .map(|t| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .map(Arc::new)
                .map_err(|_| PcpmError::BadConfig("failed to build the engine thread pool"))
        })
        .transpose()
}

impl<A: Algebra> Engine<A> {
    /// Starts building an engine over `graph`.
    pub fn builder(graph: &Csr) -> EngineBuilder<'_, A> {
        EngineBuilder {
            graph,
            shared: None,
            weights: None,
            cfg: PcpmConfig::default(),
            backend: BackendKind::default(),
            scatter: ScatterKind::default(),
            gather: GatherKind::default(),
            _algebra: std::marker::PhantomData,
        }
    }

    /// Starts building an engine over a shared graph handle. Backends
    /// that retain the adjacency (push, the CSR-traversal ablation)
    /// clone the `Arc` instead of deep-copying the graph, making
    /// construction zero-copy.
    pub fn builder_shared(graph: &Arc<Csr>) -> EngineBuilder<'_, A> {
        EngineBuilder {
            shared: Some(graph),
            ..Engine::builder(graph)
        }
    }

    /// Wraps an externally prepared backend (e.g. the BVGAS or grid
    /// implementations in `pcpm-baselines`).
    ///
    /// When the backend still needs to be prepared, prefer
    /// [`Engine::from_backend_with`]: it builds the engine-owned pool
    /// *first* and runs `prepare` on it, so preprocessing and every
    /// later step share one pool instead of spawning a throwaway pool
    /// for the prepare.
    pub fn from_backend(backend: Box<dyn Backend<A>>, num_src: u32, num_dst: u32) -> Self {
        Self {
            backend,
            num_src,
            num_dst,
            pool: None,
            steps: 0,
            timings: PhaseTimings::default(),
            batch_passes: 0,
            batch_queries: 0,
            recipe: None,
            source: None,
            snapshot_load: None,
            diag_base: pool_diagnostics(),
        }
    }

    /// Builds an engine around an externally prepared backend with one
    /// engine-owned pool for its whole lifetime: the pool is constructed
    /// first, `prepare` runs installed on it, and every subsequent step
    /// reuses it. This is the churn-free counterpart of
    /// `from_backend(..).with_threads(..)`, which spawned one pool for
    /// the prepare and a second for the steps.
    pub fn from_backend_with(
        threads: Option<usize>,
        num_src: u32,
        num_dst: u32,
        prepare: impl FnOnce() -> Result<Box<dyn Backend<A>>, PcpmError> + Send,
    ) -> Result<Self, PcpmError> {
        let pool = build_pool(threads)?;
        let backend = match &pool {
            Some(p) => p.install(prepare)?,
            None => prepare()?,
        };
        Ok(Self {
            pool,
            ..Self::from_backend(backend, num_src, num_dst)
        })
    }

    /// Pins every subsequent step to a pool of `threads` workers
    /// (`None` restores the ambient global pool). The builder does this
    /// automatically from `PcpmConfig::threads`; external-backend
    /// constructors that already prepared their backend call it
    /// explicitly (prefer [`Engine::from_backend_with`] when the
    /// prepare still lies ahead).
    pub fn with_threads(mut self, threads: Option<usize>) -> Result<Self, PcpmError> {
        self.pool = build_pool(threads)?;
        Ok(self)
    }

    /// Number of source nodes (length of `x`).
    pub fn num_src(&self) -> u32 {
        self.num_src
    }

    /// Number of destination nodes (length of `y`).
    pub fn num_dst(&self) -> u32 {
        self.num_dst
    }

    /// The shared graph handle the engine was prepared over, when one
    /// was retained ([`Engine::builder_shared`], a snapshot load, or any
    /// [`Engine::update`]). Serving layers use this to run graph-aware
    /// drivers (dangling handling, degree normalization) against exactly
    /// the adjacency the prepared bins encode.
    pub fn graph(&self) -> Option<&Arc<Csr>> {
        self.source.as_ref().map(|s| &s.graph)
    }

    /// The CSR-order edge weights the engine was prepared with, when
    /// retained alongside the graph.
    pub fn weights(&self) -> Option<&[f32]> {
        self.source.as_ref().and_then(|s| s.weights.as_deref())
    }

    /// Runs `op` on the engine-owned thread pool (inline when no
    /// explicit thread count was configured), lending it mutable access
    /// to the engine. The algorithm drivers wrap their whole iteration
    /// loop in this, so step, apply and convergence phases all execute
    /// under one pool with no per-iteration pool traffic.
    pub fn run<R: Send>(&mut self, op: impl FnOnce(&mut Self) -> R + Send) -> R {
        match self.pool.take() {
            Some(pool) => {
                // The pool is detached while `op` runs, so nested
                // `step` calls execute inline on the pool's workers
                // instead of re-installing.
                let r = pool.install(|| op(self));
                self.pool = Some(pool);
                r
            }
            None => op(self),
        }
    }

    /// One propagation round through the backend dataplane.
    ///
    /// When `PcpmConfig::threads` was set, the round runs on the
    /// engine-owned pool (built once at construction — no per-step pool
    /// setup); otherwise on the caller's ambient pool. Inside
    /// [`Engine::run`] the round inherits the already-installed pool.
    pub fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        if x.len() != self.num_src as usize {
            return Err(PcpmError::DimensionMismatch {
                expected: self.num_src as usize,
                got: x.len(),
            });
        }
        if y.len() != self.num_dst as usize {
            return Err(PcpmError::DimensionMismatch {
                expected: self.num_dst as usize,
                got: y.len(),
            });
        }
        let _span = crate::telemetry::span_n("step", self.steps as u64);
        let tm = crate::telemetry::counters();
        let jobs0 = tm.is_enabled().then(rayon::diagnostics::jobs_dispatched);
        let backend = &mut self.backend;
        let t = match &self.pool {
            Some(pool) => pool.install(|| backend.step(x, y))?,
            None => backend.step(x, y)?,
        };
        if let Some(jobs0) = jobs0 {
            tm.add_pool_jobs_dispatched((rayon::diagnostics::jobs_dispatched() - jobs0) as u64);
        }
        self.steps += 1;
        self.timings += t;
        Ok(t)
    }

    /// One multi-query propagation round: `ys[q] = ⊕ Aᵀ·xs[q]` for the
    /// whole batch in a single backend pass.
    ///
    /// On the PCPM dataplane this is a column-blocked SpMM — the destID
    /// bin stream is scanned (and, for the delta format, varint-decoded)
    /// **once** for the batch; other backends fall back to looping over
    /// [`Engine::step`]-equivalent rounds. Per-query results are
    /// bit-identical to sequential [`Engine::step`] calls either way.
    /// The pass counts as one step in the report (one bin-stream scan);
    /// [`ExecutionReport::batch_passes`] / `batch_queries` record the
    /// amortization. An empty batch is a no-op.
    pub fn step_many(
        &mut self,
        xs: &[&[A::T]],
        ys: &mut [&mut [A::T]],
    ) -> Result<PhaseTimings, PcpmError> {
        if xs.len() != ys.len() {
            return Err(PcpmError::BadConfig(
                "step_many requires one output vector per input vector",
            ));
        }
        for x in xs {
            if x.len() != self.num_src as usize {
                return Err(PcpmError::DimensionMismatch {
                    expected: self.num_src as usize,
                    got: x.len(),
                });
            }
        }
        for y in ys.iter() {
            if y.len() != self.num_dst as usize {
                return Err(PcpmError::DimensionMismatch {
                    expected: self.num_dst as usize,
                    got: y.len(),
                });
            }
        }
        if xs.is_empty() {
            return Ok(PhaseTimings::default());
        }
        let _span = crate::telemetry::span_n("step_many", xs.len() as u64);
        let tm = crate::telemetry::counters();
        let jobs0 = tm.is_enabled().then(rayon::diagnostics::jobs_dispatched);
        let backend = &mut self.backend;
        let t = match &self.pool {
            Some(pool) => pool.install(|| backend.step_many(xs, ys))?,
            None => backend.step_many(xs, ys)?,
        };
        if let Some(jobs0) = jobs0 {
            tm.add_pool_jobs_dispatched((rayon::diagnostics::jobs_dispatched() - jobs0) as u64);
        }
        tm.add_batched_passes(1);
        tm.add_batched_queries(xs.len() as u64);
        self.steps += 1;
        self.batch_passes += 1;
        self.batch_queries += xs.len();
        self.timings += t;
        Ok(t)
    }

    /// Absorbs a batch of edge changes, handing the backend the
    /// *post-update* graph (and, for weighted engines, the post-update
    /// edge weights parallel to its targets array).
    ///
    /// The PCPM dataplanes repair in place — only source partitions with
    /// a changed adjacency are re-scattered, everything else is
    /// block-copied (see
    /// [`PcpmPipeline::repair`](crate::engine::PcpmPipeline::repair)).
    /// Backends without a repair path are re-`prepare`d from the build
    /// recipe; engines wrapping an external backend
    /// ([`Engine::from_backend`]) cannot be rebuilt here and return
    /// [`PcpmError::BadConfig`].
    ///
    /// A weighted engine must receive weights and an unweighted engine
    /// must not — changing weightedness requires a fresh build. The
    /// batch models *structural* change only: weights of edges that
    /// survive the batch untouched must keep their old values (the
    /// repair block-copies their bin segments); to mutate weights on
    /// unchanged edges, rebuild the engine.
    ///
    /// Passing the graph as an `Arc` keeps the repair zero-copy for
    /// backends that retain the adjacency. An empty batch (with an
    /// unchanged node count) is a no-op and reports `Repaired` with
    /// zeroed [`RepairStats`].
    pub fn update(
        &mut self,
        graph: &Arc<Csr>,
        weights: Option<&[f32]>,
        batch: &UpdateBatch,
    ) -> Result<UpdateOutcome, PcpmError> {
        if let Some(max) = batch.max_node() {
            if max >= graph.num_nodes() {
                return Err(PcpmError::DimensionMismatch {
                    expected: graph.num_nodes() as usize,
                    got: max as usize + 1,
                });
            }
        }
        if let Some(w) = weights {
            if w.len() as u64 != graph.num_edges() {
                return Err(PcpmError::DimensionMismatch {
                    expected: graph.num_edges() as usize,
                    got: w.len(),
                });
            }
        }
        if let Some(r) = &self.recipe {
            if weights.is_some() != r.weighted {
                return Err(PcpmError::BadConfig(
                    "update must keep the engine's weightedness (rebuild to add or drop weights)",
                ));
            }
        }
        // An empty applied diff means the prepared state already matches
        // `graph`: skip the backend round-trip (for backends without a
        // repair path it would be a full rebuild of an unchanged graph).
        if batch.is_empty() && graph.num_nodes() == self.num_src {
            return Ok(UpdateOutcome::Repaired(RepairStats {
                partitions_rebuilt: 0,
                partitions_total: 0,
            }));
        }
        let _span = crate::telemetry::span_n("update", batch.len() as u64);
        let recipe = self.recipe;
        let spec = PrepareSpec {
            graph,
            shared: Some(graph),
            weights,
            cfg: recipe.map_or_else(PcpmConfig::default, |r| r.cfg),
            scatter: recipe.map_or_else(ScatterKind::default, |r| r.scatter),
            gather: recipe.map_or_else(GatherKind::default, |r| r.gather),
        };
        let backend = &mut self.backend;
        let repaired = match &self.pool {
            Some(pool) => pool.install(|| backend.update(&spec, batch))?,
            None => backend.update(&spec, batch)?,
        };
        if let Some(stats) = repaired {
            self.refresh_source(graph, weights);
            return Ok(UpdateOutcome::Repaired(stats));
        }
        let Some(recipe) = recipe else {
            return Err(PcpmError::BadConfig(
                "externally prepared backends cannot be rebuilt through Engine::update",
            ));
        };
        let prepare = || prepare_builtin::<A>(recipe.kind, &spec);
        self.backend = match &self.pool {
            Some(pool) => pool.install(prepare)?,
            None => prepare()?,
        };
        self.num_src = graph.num_nodes();
        self.num_dst = graph.num_nodes();
        self.refresh_source(graph, weights);
        Ok(UpdateOutcome::Rebuilt)
    }

    /// Re-points the retained snapshot source at the post-update graph
    /// (and weights), so a snapshot saved after an update captures the
    /// state the engine actually serves. Updates hand the engine an
    /// `Arc`, so this also *establishes* retention (zero-copy) for
    /// engines built from a borrowed graph. Externally prepared engines
    /// (no build recipe) retain nothing and stay that way.
    fn refresh_source(&mut self, graph: &Arc<Csr>, weights: Option<&[f32]>) {
        if self.recipe.is_some() {
            self.source = Some(EngineSource {
                graph: Arc::clone(graph),
                weights: weights.map(<[f32]>::to_vec),
            });
        }
    }

    /// Whether the engine was prepared with edge weights, when known.
    /// `None` for externally prepared backends
    /// ([`Engine::from_backend`]), whose weightedness the engine cannot
    /// introspect.
    pub fn prepared_weighted(&self) -> Option<bool> {
        self.recipe.map(|r| r.weighted)
    }

    /// The backend's static metrics.
    pub fn metrics(&self) -> BackendMetrics {
        self.backend.metrics()
    }

    /// The uniform execution report (preprocess + accumulated timings).
    pub fn report(&self) -> ExecutionReport {
        let m = self.backend.metrics();
        let (workers, jobs) = pool_diagnostics();
        ExecutionReport {
            backend: m.name,
            steps: self.steps,
            timings: self.timings,
            preprocess: m.preprocess,
            aux_memory_bytes: m.aux_memory_bytes,
            compression_ratio: m.compression_ratio,
            bin_format: m.bin_format,
            bin_compression: m.bin_compression,
            loaded_from_snapshot: self.snapshot_load.is_some(),
            snapshot_load: self.snapshot_load,
            dest_stream_bytes: m.dest_stream_bytes,
            pool_workers_spawned: workers.saturating_sub(self.diag_base.0),
            pool_jobs_dispatched: jobs.saturating_sub(self.diag_base.1),
            batch_passes: self.batch_passes,
            batch_queries: self.batch_queries,
            kernel: m.kernel,
        }
    }

    /// Exports the engine's prepared state as a [`Snapshot`] (graph,
    /// weights, PNG layout, bins). Requires a PCPM dataplane and a
    /// retained graph — engines wrapping external backends return
    /// [`SnapshotError::Unsupported`].
    pub fn snapshot(&self) -> Result<Snapshot, PcpmError> {
        let state = self.backend.snapshot_state().ok_or(PcpmError::Snapshot(
            SnapshotError::Unsupported("only the PCPM dataplane can be snapshotted"),
        ))?;
        let source =
            self.source
                .as_ref()
                .ok_or(PcpmError::Snapshot(SnapshotError::Unsupported(
                    "the engine does not retain its graph; build through \
                 Engine::builder_shared (or update/load it) to enable snapshotting",
                )))?;
        let partition_bytes =
            u64::from(state.png.src_parts().partition_size()) * crate::config::VALUE_BYTES as u64;
        Ok(Snapshot::from_state(
            Arc::clone(&source.graph),
            source.weights.clone(),
            partition_bytes,
            state,
        ))
    }

    /// Serializes the engine's prepared state to `path` (the
    /// build-once, serve-many cache). Returns the file size in bytes.
    ///
    /// A later [`Engine::from_snapshot`] skips `prepare` entirely and
    /// produces bit-identical step output.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<u64, PcpmError> {
        Ok(self.snapshot()?.save(path)?)
    }

    /// Rehydrates an engine from a snapshot file with the recorded
    /// configuration and no thread pinning — sugar for
    /// [`EngineBuilder::from_snapshot`] + `build`.
    pub fn from_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, PcpmError> {
        SnapshotEngineBuilder::open(path)?.build()
    }
}

/// Fluent construction of an [`Engine`].
///
/// Invalid combinations — compact bins with a branchy gather, compact
/// bins or ablation variants on a non-PCPM backend, an out-of-range
/// partition budget — are rejected here, in [`EngineBuilder::build`]:
/// a successfully built engine can never fail on a variant mismatch at
/// step time.
pub struct EngineBuilder<'g, A: Algebra> {
    graph: &'g Csr,
    shared: Option<&'g Arc<Csr>>,
    weights: Option<&'g EdgeWeights>,
    cfg: PcpmConfig,
    backend: BackendKind,
    scatter: ScatterKind,
    gather: GatherKind,
    _algebra: std::marker::PhantomData<A>,
}

/// Prepares a boxed built-in backend of the given kind, dispatching the
/// PCPM dataplane on the configured bin format.
fn prepare_builtin<A: Algebra>(
    kind: BackendKind,
    spec: &PrepareSpec<'_>,
) -> Result<Box<dyn Backend<A>>, PcpmError> {
    Ok(match kind {
        BackendKind::Pcpm => match spec.cfg.bin_format {
            BinFormatKind::Wide => {
                Box::new(PcpmBackend::<A, WideFormat>::prepare(spec)?) as Box<dyn Backend<A>>
            }
            BinFormatKind::Compact => Box::new(PcpmBackend::<A, CompactFormat>::prepare(spec)?),
            BinFormatKind::Delta => Box::new(PcpmBackend::<A, DeltaFormat>::prepare(spec)?),
        },
        BackendKind::Pull => Box::new(PullBackend::prepare(spec)?),
        BackendKind::Push => Box::new(PushBackend::prepare(spec)?),
        BackendKind::EdgeCentric => Box::new(EdgeCentricBackend::prepare(spec)?),
    })
}

impl<'g, A: Algebra> EngineBuilder<'g, A> {
    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: PcpmConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the partition byte budget (partition size `q` in nodes is
    /// `bytes / 4`).
    pub fn partition_bytes(mut self, bytes: usize) -> Self {
        self.cfg.partition_bytes = bytes;
        self
    }

    /// Sets an explicit thread count: pre-processing and every step run
    /// on an engine-owned pool of this size.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = Some(threads);
        self
    }

    /// Attaches per-edge weights (enables the weighted extension, §3.5).
    pub fn weights(mut self, weights: &'g EdgeWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Selects the physical bin format of the PCPM dataplane.
    pub fn bin_format(mut self, format: BinFormatKind) -> Self {
        self.cfg.bin_format = format;
        self
    }

    /// Selects 16-bit partition-local destination bins (§6 future work).
    /// Shorthand for `.bin_format(BinFormatKind::Compact)` (`false`
    /// restores the wide default).
    pub fn compact_bins(self, compact: bool) -> Self {
        self.bin_format(if compact {
            BinFormatKind::Compact
        } else {
            BinFormatKind::Wide
        })
    }

    /// Selects the scatter variant (PCPM backend only).
    pub fn scatter(mut self, scatter: ScatterKind) -> Self {
        self.scatter = scatter;
        self
    }

    /// Selects the gather variant (PCPM backend only).
    pub fn gather(mut self, gather: GatherKind) -> Self {
        self.gather = gather;
        self
    }

    /// Selects the gather/decode kernel variant (PCPM backend only).
    /// [`KernelKind::Auto`] (the default) resolves to the
    /// predicted-fastest concrete kernel at build time.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.cfg.kernel = kernel;
        self
    }

    /// Selects the dataplane.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Validates the combination and prepares the backend.
    pub fn build(self) -> Result<Engine<A>, PcpmError> {
        self.cfg.validate()?;
        if self.cfg.bin_format != BinFormatKind::Wide && self.gather == GatherKind::Branchy {
            return Err(PcpmError::BadConfig(
                "the branchy gather ablation requires the wide bin format",
            ));
        }
        if self.backend != BackendKind::Pcpm {
            if self.cfg.bin_format != BinFormatKind::Wide {
                return Err(PcpmError::BadConfig(
                    "bin formats apply only to the PCPM backend",
                ));
            }
            if self.scatter != ScatterKind::default() || self.gather != GatherKind::default() {
                return Err(PcpmError::BadConfig(
                    "scatter/gather variants apply only to the PCPM backend",
                ));
            }
            if self.cfg.kernel != KernelKind::Auto {
                return Err(PcpmError::BadConfig(
                    "gather kernel variants apply only to the PCPM backend",
                ));
            }
        }
        let spec = PrepareSpec {
            graph: self.graph,
            shared: self.shared,
            weights: self.weights.map(|w| w.as_slice()),
            cfg: self.cfg,
            scatter: self.scatter,
            gather: self.gather,
        };
        // One pool for the engine's whole lifetime: preprocessing runs
        // on it here, every step installs into it later.
        let pool = build_pool(self.cfg.threads)?;
        let prepare = || prepare_builtin::<A>(self.backend, &spec);
        let backend = match &pool {
            Some(p) => p.install(prepare)?,
            None => prepare()?,
        };
        // Retain the snapshot source only when it is free: a shared
        // handle clones an Arc, a borrowed graph would need a deep copy
        // (potentially GBs) the caller may never use. Borrowed-graph
        // engines become snapshotable via builder_shared or after their
        // first update (which hands the engine an Arc).
        let source = self.shared.map(|arc| EngineSource {
            graph: Arc::clone(arc),
            weights: self.weights.map(|w| w.as_slice().to_vec()),
        });
        Ok(Engine {
            backend,
            num_src: self.graph.num_nodes(),
            num_dst: self.graph.num_nodes(),
            pool,
            steps: 0,
            timings: PhaseTimings::default(),
            batch_passes: 0,
            batch_queries: 0,
            recipe: Some(BuildRecipe {
                kind: self.backend,
                cfg: self.cfg,
                scatter: self.scatter,
                gather: self.gather,
                weighted: self.weights.is_some(),
            }),
            source,
            snapshot_load: None,
            diag_base: pool_diagnostics(),
        })
    }

    /// Opens a snapshot file as the starting point of an engine —
    /// `prepare` is skipped entirely; the graph, PNG layout and bins
    /// come from disk. Configure threads (and assert expectations) on
    /// the returned [`SnapshotEngineBuilder`], then `build`.
    pub fn from_snapshot<P: AsRef<Path>>(path: P) -> Result<SnapshotEngineBuilder<A>, PcpmError> {
        SnapshotEngineBuilder::open(path)
    }
}

/// Builder over a loaded [`Snapshot`]: the counterpart of
/// [`EngineBuilder`] for the build-once, serve-many path.
pub struct SnapshotEngineBuilder<A: Algebra> {
    snapshot: Snapshot,
    load: Duration,
    threads: Option<usize>,
    kernel: KernelKind,
    _algebra: std::marker::PhantomData<A>,
}

impl<A: Algebra> SnapshotEngineBuilder<A> {
    /// Reads and validates `path` (magic, version, checksum, structure).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        let snapshot = Snapshot::load(path)?;
        Ok(Self {
            snapshot,
            load: t0.elapsed(),
            threads: None,
            kernel: KernelKind::Auto,
            _algebra: std::marker::PhantomData,
        })
    }

    /// Wraps an already-decoded snapshot (no I/O); `load` should be the
    /// wall-clock the caller spent obtaining it.
    pub fn from_snapshot(snapshot: Snapshot, load: Duration) -> Self {
        Self {
            snapshot,
            load,
            threads: None,
            kernel: KernelKind::Auto,
            _algebra: std::marker::PhantomData,
        }
    }

    /// Selects the gather/decode kernel variant, exactly like
    /// [`EngineBuilder::kernel`]. The kernel is a runtime knob, not a
    /// layout property, so any snapshot accepts any kernel.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The loaded snapshot (graph, format, weightedness inspection).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Pins the engine to a pool of `threads` workers, exactly like
    /// [`EngineBuilder::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Rejects the snapshot unless it matches the caller's expected
    /// configuration (partition bytes, bin format, weighted-ness) —
    /// serving layers call this so a stale or foreign cache file fails
    /// loudly instead of silently serving under the wrong config.
    pub fn expect_config(self, cfg: &PcpmConfig, weighted: bool) -> Result<Self, PcpmError> {
        self.snapshot.verify_config(cfg, Some(weighted))?;
        Ok(self)
    }

    /// Rejects the snapshot unless it captures exactly `graph`.
    pub fn expect_graph(self, graph: &Csr) -> Result<Self, PcpmError> {
        self.snapshot.verify_graph(graph)?;
        Ok(self)
    }

    /// Rehydrates the engine: one engine-owned pool (when threads are
    /// pinned), a PCPM backend adopting the snapshot's PNG and bins,
    /// and a build recipe matching the snapshot's configuration — so
    /// [`Engine::update`] and a later [`Engine::save_snapshot`] work
    /// exactly as on a cold-built engine.
    pub fn build(self) -> Result<Engine<A>, PcpmError> {
        let load = self.load;
        let (graph, weights, partition_bytes, png, bins) = self.snapshot.into_parts();
        let mut cfg = PcpmConfig::default().with_partition_bytes(partition_bytes as usize);
        cfg.bin_format = bins.kind();
        cfg.threads = self.threads;
        cfg.kernel = self.kernel;
        cfg.validate()?;
        if bins.is_weighted() != weights.is_some() {
            return Err(PcpmError::Snapshot(SnapshotError::Corrupt(
                "bin weight stream disagrees with weighted flag",
            )));
        }
        let n = graph.num_nodes();
        let weighted = weights.is_some();
        let pool = build_pool(cfg.threads)?;
        let backend = boxed_backend_from_state::<A>(n, png, bins, load, self.kernel)?;
        Ok(Engine {
            backend,
            num_src: n,
            num_dst: n,
            pool,
            steps: 0,
            timings: PhaseTimings::default(),
            batch_passes: 0,
            batch_queries: 0,
            recipe: Some(BuildRecipe {
                kind: BackendKind::Pcpm,
                cfg,
                scatter: ScatterKind::default(),
                gather: GatherKind::default(),
                weighted,
            }),
            source: Some(EngineSource { graph, weights }),
            snapshot_load: Some(load),
            diag_base: pool_diagnostics(),
        })
    }
}

/// Adopts deserialized PNG + bins into the right statically-typed PCPM
/// backend; the update stream is scratch, allocated fresh at `|E'|`.
fn boxed_backend_from_state<A: Algebra>(
    num_nodes: u32,
    png: crate::png::Png,
    bins: BinState,
    load: Duration,
    kernel: KernelKind,
) -> Result<Box<dyn Backend<A>>, PcpmError> {
    let updates_len = png.num_compressed_edges() as usize;
    Ok(match bins.0 {
        BinStateInner::Wide { dest_ids, weights } => {
            let bins = crate::bins::BinSpace {
                updates: vec![A::T::default(); updates_len],
                dest_ids,
                weights,
            };
            Box::new(PcpmBackend::<A, WideFormat>::from_pipeline(
                FormatPipeline::from_loaded(num_nodes, num_nodes, png, bins, load, kernel),
            )) as Box<dyn Backend<A>>
        }
        BinStateInner::Compact { dest_ids, weights } => {
            let bins = crate::compact::CompactBinSpace {
                updates: vec![A::T::default(); updates_len],
                dest_ids,
                weights,
            };
            Box::new(PcpmBackend::<A, CompactFormat>::from_pipeline(
                FormatPipeline::from_loaded(num_nodes, num_nodes, png, bins, load, kernel),
            ))
        }
        BinStateInner::Delta {
            dest_bytes,
            byte_region,
            seg_off,
            weights,
        } => {
            let bins = crate::delta::DeltaPackedBins::from_loaded(
                updates_len,
                dest_bytes,
                byte_region,
                seg_off,
                weights,
            );
            Box::new(PcpmBackend::<A, DeltaFormat>::from_pipeline(
                FormatPipeline::from_loaded(num_nodes, num_nodes, png, bins, load, kernel),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// PCPM backend
// ---------------------------------------------------------------------------

/// The paper's partition-centric dataplane behind the [`Backend`] trait,
/// statically typed over the physical bin format `F` (the
/// [`EngineBuilder`] dispatches [`PcpmConfig::bin_format`] onto the
/// right instantiation).
pub struct PcpmBackend<A: Algebra, F: BinFormat = WideFormat> {
    pipeline: FormatPipeline<A, F>,
    scatter: ScatterKind,
    gather: GatherKind,
    /// Shared handle on the adjacency, kept only for the CSR-traversal
    /// scatter ablation (zero-copy when prepared from an `Arc`).
    graph: Option<Arc<Csr>>,
}

impl<A: Algebra, F: BinFormat> Backend<A> for PcpmBackend<A, F> {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        spec.cfg.validate()?;
        if F::KIND != BinFormatKind::Wide && spec.gather == GatherKind::Branchy {
            return Err(PcpmError::BadConfig(
                "the branchy gather ablation requires the wide bin format",
            ));
        }
        let pipeline = FormatPipeline::from_view(
            crate::png::EdgeView::from_csr(spec.graph),
            &spec.cfg,
            spec.weights,
        )?;
        let graph = (spec.scatter == ScatterKind::CsrTraversal).then(|| spec.graph_arc());
        Ok(Self {
            pipeline,
            scatter: spec.scatter,
            gather: spec.gather,
            graph,
        })
    }

    fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        self.pipeline
            .spmv_with(x, y, self.scatter, self.gather, self.graph.as_deref())
    }

    fn step_many(
        &mut self,
        xs: &[&[A::T]],
        ys: &mut [&mut [A::T]],
    ) -> Result<PhaseTimings, PcpmError> {
        // The branchy-gather ablation has no batched kernel; keep its
        // sequential semantics rather than silently changing the
        // measured code path.
        if self.gather == GatherKind::Branchy {
            let mut total = PhaseTimings::default();
            for (x, y) in xs.iter().zip(ys.iter_mut()) {
                total += self.step(x, y)?;
            }
            return Ok(total);
        }
        self.pipeline
            .spmv_many_with(xs, ys, self.scatter, self.graph.as_deref())
    }

    fn update(
        &mut self,
        spec: &PrepareSpec<'_>,
        batch: &UpdateBatch,
    ) -> Result<Option<RepairStats>, PcpmError> {
        // Dimension or weightedness changes need a full prepare; so does
        // an empty layout (zero partitions cannot be repaired).
        if spec.graph.num_nodes() != self.pipeline.num_src()
            || spec.weights.is_some() != self.pipeline.is_weighted()
            || self.pipeline.num_src() == 0
        {
            return Ok(None);
        }
        // The partition size the bins were actually built with — not
        // spec.cfg, which carries only defaults for externally prepared
        // backends (Engine::from_backend).
        let q = self.pipeline.png().src_parts().partition_size();
        let touched = batch.touched_src_partitions(q);
        let stats = self.pipeline.repair(
            crate::png::EdgeView::from_csr(spec.graph),
            spec.weights,
            &touched,
        )?;
        if self.graph.is_some() {
            // The CSR-traversal ablation scans the adjacency directly:
            // swap in the post-update handle.
            self.graph = Some(spec.graph_arc());
        }
        Ok(Some(stats))
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "pcpm",
            preprocess: self.pipeline.preprocess_time(),
            aux_memory_bytes: self.pipeline.bin_memory_bytes(),
            compression_ratio: Some(self.pipeline.compression_ratio()),
            bin_format: Some(F::KIND.name()),
            bin_compression: Some(self.pipeline.bin_compression()),
            dest_stream_bytes: Some(self.pipeline.dest_stream_bytes()),
            kernel: Some(self.pipeline.kernel().name()),
        }
    }

    fn snapshot_state(&self) -> Option<DataplaneState> {
        Some(self.pipeline.export_state())
    }
}

impl<A: Algebra, F: BinFormat> PcpmBackend<A, F> {
    /// Wraps an already-built pipeline (used by the rectangular SpMV
    /// front end, whose edge view has no `Csr`).
    pub(crate) fn from_pipeline(pipeline: FormatPipeline<A, F>) -> Self {
        Self {
            pipeline,
            scatter: ScatterKind::Png,
            gather: GatherKind::BranchAvoiding,
            graph: None,
        }
    }

    /// The underlying pipeline (PNG inspection, memory replays).
    pub fn pipeline(&self) -> &FormatPipeline<A, F> {
        &self.pipeline
    }
}

// ---------------------------------------------------------------------------
// Pull backend
// ---------------------------------------------------------------------------

/// Pull-direction dataplane: each destination walks its in-neighbors in
/// the transpose (CSC). Fine-grained random reads of `x`, no auxiliary
/// message state — Algorithm 1's traversal, generalized over the algebra.
pub struct PullBackend<A: Algebra> {
    /// Transpose offsets (`num_nodes + 1`).
    offsets: Vec<u64>,
    /// In-neighbor sources per destination.
    srcs: Vec<u32>,
    /// Weights aligned with [`Self::srcs`].
    weights: Option<Vec<f32>>,
    preprocess: Duration,
    _algebra: std::marker::PhantomData<A>,
}

impl<A: Algebra> Backend<A> for PullBackend<A> {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        let g = spec.graph;
        let n = g.num_nodes() as usize;
        let mut counts = vec![0u64; n + 1];
        for (_, t) in g.edges() {
            counts[t as usize + 1] += 1;
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let offsets = counts;
        let mut srcs = vec![0u32; g.num_edges() as usize];
        let mut weights = spec.weights.map(|_| vec![0.0f32; g.num_edges() as usize]);
        let mut cursor = offsets.clone();
        let mut edge_idx = 0usize;
        for s in 0..g.num_nodes() {
            for &t in g.neighbors(s) {
                let pos = cursor[t as usize] as usize;
                srcs[pos] = s;
                if let (Some(w), Some(ew)) = (&mut weights, spec.weights) {
                    w[pos] = ew[edge_idx];
                }
                cursor[t as usize] += 1;
                edge_idx += 1;
            }
        }
        Ok(Self {
            offsets,
            srcs,
            weights,
            preprocess: t0.elapsed(),
            _algebra: std::marker::PhantomData,
        })
    }

    fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        y.par_iter_mut().enumerate().for_each(|(v, out)| {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            let mut acc = A::identity();
            match &self.weights {
                None => {
                    for &s in &self.srcs[lo..hi] {
                        acc = A::combine(acc, A::extend(x[s as usize]));
                    }
                }
                Some(w) => {
                    for (&s, &wt) in self.srcs[lo..hi].iter().zip(&w[lo..hi]) {
                        acc = A::combine(acc, A::extend_weighted(wt, x[s as usize]));
                    }
                }
            }
            *out = acc;
        });
        Ok(PhaseTimings {
            scatter: Duration::ZERO,
            gather: t0.elapsed(),
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "pull",
            preprocess: self.preprocess,
            aux_memory_bytes: (self.offsets.len() * 8
                + self.srcs.len() * 4
                + self.weights.as_ref().map_or(0, |w| w.len() * 4))
                as u64,
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Push backend
// ---------------------------------------------------------------------------

/// Push-direction dataplane: each source adds its contribution to all of
/// its out-neighbors. The reduction order is source-major and the
/// traversal is sequential — with a parallel scheduler this kernel needs
/// atomics (see `pcpm_baselines::push`), which a generic algebra cannot
/// provide, so the generic backend keeps the deterministic serial loop.
pub struct PushBackend<A: Algebra> {
    /// Shared handle on the adjacency (zero-copy when prepared from an
    /// `Arc`).
    graph: Arc<Csr>,
    weights: Option<Vec<f32>>,
    preprocess: Duration,
    _algebra: std::marker::PhantomData<A>,
}

impl<A: Algebra> Backend<A> for PushBackend<A> {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        Ok(Self {
            graph: spec.graph_arc(),
            weights: spec.weights.map(|w| w.to_vec()),
            preprocess: t0.elapsed(),
            _algebra: std::marker::PhantomData,
        })
    }

    fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        y.fill(A::identity());
        let mut edge_idx = 0usize;
        for s in 0..self.graph.num_nodes() {
            let xv = x[s as usize];
            match &self.weights {
                None => {
                    for &t in self.graph.neighbors(s) {
                        let slot = &mut y[t as usize];
                        *slot = A::combine(*slot, A::extend(xv));
                    }
                    edge_idx += self.graph.neighbors(s).len();
                }
                Some(w) => {
                    for &t in self.graph.neighbors(s) {
                        let slot = &mut y[t as usize];
                        *slot = A::combine(*slot, A::extend_weighted(w[edge_idx], xv));
                        edge_idx += 1;
                    }
                }
            }
        }
        Ok(PhaseTimings {
            scatter: t0.elapsed(),
            gather: Duration::ZERO,
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "push",
            preprocess: self.preprocess,
            aux_memory_bytes: self.graph.memory_bytes()
                + self.weights.as_ref().map_or(0, |w| w.len() as u64 * 4),
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Edge-centric backend
// ---------------------------------------------------------------------------

/// Edge-centric dataplane: a COO edge list pre-sorted by destination bin
/// (X-Stream / Zhou et al. style); each bin's owner streams its edges and
/// accumulates into its exclusive slice of `y`.
pub struct EdgeCentricBackend<A: Algebra> {
    bin_width: u32,
    /// Edge sources sorted by destination bin.
    src: Vec<u32>,
    /// Edge destinations aligned with [`Self::src`].
    dst: Vec<u32>,
    /// Weights aligned with [`Self::src`].
    weights: Option<Vec<f32>>,
    /// `num_bins + 1` offsets into the sorted arrays.
    bin_off: Vec<u64>,
    /// Node count per bin (the `y` split), precomputed so steps do no
    /// setup work inside the timed region.
    bin_lens: Vec<usize>,
    preprocess: Duration,
    _algebra: std::marker::PhantomData<A>,
}

impl<A: Algebra> Backend<A> for EdgeCentricBackend<A> {
    fn prepare(spec: &PrepareSpec<'_>) -> Result<Self, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        let g = spec.graph;
        let n = g.num_nodes();
        let bin_width = spec.cfg.partition_nodes();
        let num_bins = if n == 0 { 0 } else { (n - 1) / bin_width + 1 };
        let m = g.num_edges() as usize;
        let mut counts = vec![0u64; num_bins as usize];
        for (_, t) in g.edges() {
            counts[(t / bin_width) as usize] += 1;
        }
        let mut bin_off = vec![0u64; num_bins as usize + 1];
        for b in 0..num_bins as usize {
            bin_off[b + 1] = bin_off[b] + counts[b];
        }
        let mut src = vec![0u32; m];
        let mut dst = vec![0u32; m];
        let mut weights = spec.weights.map(|_| vec![0.0f32; m]);
        let mut cursor = bin_off.clone();
        for (edge_idx, (s, t)) in g.edges().enumerate() {
            let c = &mut cursor[(t / bin_width) as usize];
            src[*c as usize] = s;
            dst[*c as usize] = t;
            if let (Some(w), Some(ew)) = (&mut weights, spec.weights) {
                w[*c as usize] = ew[edge_idx];
            }
            *c += 1;
        }
        let bin_lens: Vec<usize> = (0..num_bins)
            .map(|b| {
                let lo = b * bin_width;
                (n.min(lo.saturating_add(bin_width)) - lo) as usize
            })
            .collect();
        Ok(Self {
            bin_width,
            src,
            dst,
            weights,
            bin_off,
            bin_lens,
            preprocess: t0.elapsed(),
            _algebra: std::marker::PhantomData,
        })
    }

    fn step(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        let t0 = crate::telemetry::stopwatch();
        let slices = split_by_lens(y, &self.bin_lens);
        slices.into_par_iter().enumerate().for_each(|(b, ys)| {
            ys.fill(A::identity());
            let lo = self.bin_off[b] as usize;
            let hi = self.bin_off[b + 1] as usize;
            let bin_base = b as u32 * self.bin_width;
            match &self.weights {
                None => {
                    for i in lo..hi {
                        let slot = &mut ys[(self.dst[i] - bin_base) as usize];
                        *slot = A::combine(*slot, A::extend(x[self.src[i] as usize]));
                    }
                }
                Some(w) => {
                    for i in lo..hi {
                        let slot = &mut ys[(self.dst[i] - bin_base) as usize];
                        *slot =
                            A::combine(*slot, A::extend_weighted(w[i], x[self.src[i] as usize]));
                    }
                }
            }
        });
        Ok(PhaseTimings {
            scatter: Duration::ZERO,
            gather: t0.elapsed(),
            apply: Duration::ZERO,
        })
    }

    fn metrics(&self) -> BackendMetrics {
        BackendMetrics {
            name: "edge_centric",
            preprocess: self.preprocess,
            aux_memory_bytes: (self.src.len() * 4
                + self.dst.len() * 4
                + self.bin_off.len() * 8
                + self.weights.as_ref().map_or(0, |w| w.len() * 4))
                as u64,
            compression_ratio: None,
            bin_format: None,
            bin_compression: None,
            dest_stream_bytes: None,
            kernel: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{MinLabel, MinPlusF32, PlusF32};
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    /// Exact integer-valued inputs: every backend must produce
    /// bit-identical f32 sums.
    fn int_x(n: u32) -> Vec<f32> {
        (0..n).map(|v| (v % 13) as f32).collect()
    }

    fn reference(g: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            y[t as usize] += x[s as usize];
        }
        y
    }

    #[test]
    fn all_backends_match_reference_unweighted() {
        let g = rmat(&RmatConfig::graph500(9, 8, 3)).unwrap();
        let x = int_x(g.num_nodes());
        let want = reference(&g, &x);
        for kind in BackendKind::ALL {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(64 * 4)
                .backend(kind)
                .build()
                .unwrap();
            let mut y = vec![0.0f32; g.num_nodes() as usize];
            engine.step(&x, &mut y).unwrap();
            assert_eq!(y, want, "backend {}", kind.name());
        }
    }

    #[test]
    fn all_backends_match_on_weighted_min_plus() {
        // Eighth-grain weights keep every sum exact in f32.
        let g = erdos_renyi(200, 1600, 7).unwrap();
        let w = EdgeWeights::new(
            &g,
            (0..g.num_edges())
                .map(|i| ((i % 8) + 1) as f32 / 8.0)
                .collect(),
        )
        .unwrap();
        let x: Vec<f32> = (0..200).map(|v| (v % 5) as f32).collect();
        let mut outputs = Vec::new();
        for kind in BackendKind::ALL {
            let mut engine = Engine::<MinPlusF32>::builder(&g)
                .partition_bytes(32 * 4)
                .weights(&w)
                .backend(kind)
                .build()
                .unwrap();
            let mut y = vec![0.0f32; 200];
            engine.step(&x, &mut y).unwrap();
            outputs.push(y);
        }
        for other in &outputs[1..] {
            assert_eq!(&outputs[0], other);
        }
    }

    #[test]
    fn integer_algebra_runs_on_every_backend() {
        let g = rmat(&RmatConfig::graph500(8, 6, 11)).unwrap();
        let x: Vec<u32> = (0..g.num_nodes()).collect();
        let mut outputs = Vec::new();
        for kind in BackendKind::ALL {
            let mut engine = Engine::<MinLabel>::builder(&g)
                .partition_bytes(64 * 4)
                .backend(kind)
                .build()
                .unwrap();
            let mut y = vec![0u32; g.num_nodes() as usize];
            engine.step(&x, &mut y).unwrap();
            outputs.push(y);
        }
        for other in &outputs[1..] {
            assert_eq!(&outputs[0], other);
        }
    }

    #[test]
    fn compact_and_csr_traversal_variants_agree() {
        let g = rmat(&RmatConfig::graph500(9, 8, 19)).unwrap();
        let x = int_x(g.num_nodes());
        let want = reference(&g, &x);
        let variants: Vec<Engine<PlusF32>> = vec![
            Engine::builder(&g)
                .partition_bytes(512 * 4)
                .compact_bins(true)
                .build()
                .unwrap(),
            Engine::builder(&g)
                .partition_bytes(512 * 4)
                .scatter(ScatterKind::CsrTraversal)
                .build()
                .unwrap(),
            Engine::builder(&g)
                .partition_bytes(512 * 4)
                .gather(GatherKind::Branchy)
                .build()
                .unwrap(),
        ];
        for mut engine in variants {
            let mut y = vec![0.0f32; g.num_nodes() as usize];
            engine.step(&x, &mut y).unwrap();
            assert_eq!(y, want);
        }
    }

    #[test]
    fn build_time_rejection_of_bad_combinations() {
        let g = erdos_renyi(100, 400, 2).unwrap();
        // Compact + branchy gather: rejected at build, not at step.
        assert!(matches!(
            Engine::<PlusF32>::builder(&g)
                .partition_bytes(256)
                .compact_bins(true)
                .gather(GatherKind::Branchy)
                .build(),
            Err(PcpmError::BadConfig(_))
        ));
        // Non-wide bin formats on a non-PCPM backend.
        assert!(Engine::<PlusF32>::builder(&g)
            .partition_bytes(256)
            .compact_bins(true)
            .backend(BackendKind::Pull)
            .build()
            .is_err());
        assert!(Engine::<PlusF32>::builder(&g)
            .partition_bytes(256)
            .bin_format(BinFormatKind::Delta)
            .backend(BackendKind::EdgeCentric)
            .build()
            .is_err());
        // Branchy gather on a non-wide format.
        assert!(Engine::<PlusF32>::builder(&g)
            .partition_bytes(256)
            .bin_format(BinFormatKind::Delta)
            .gather(GatherKind::Branchy)
            .build()
            .is_err());
        // Ablation variants on a non-PCPM backend.
        assert!(Engine::<PlusF32>::builder(&g)
            .scatter(ScatterKind::CsrTraversal)
            .backend(BackendKind::Push)
            .build()
            .is_err());
        // Oversized compact partitions still rejected by config validation.
        assert!(Engine::<PlusF32>::builder(&g)
            .compact_bins(true)
            .build()
            .is_err());
    }

    #[test]
    fn built_engine_never_fails_on_variant_mismatch() {
        // Every successfully built engine must run every step without a
        // config error — the invariant the build-time validation buys.
        let g = erdos_renyi(150, 900, 4).unwrap();
        let x = int_x(150);
        for kind in BackendKind::ALL {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(128)
                .backend(kind)
                .build()
                .unwrap();
            let mut y = vec![0.0f32; 150];
            for _ in 0..3 {
                engine.step(&x, &mut y).unwrap();
            }
        }
    }

    #[test]
    fn report_accumulates_and_names_backend() {
        let g = erdos_renyi(100, 500, 9).unwrap();
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .build()
            .unwrap();
        let x = int_x(100);
        let mut y = vec![0.0f32; 100];
        for _ in 0..5 {
            engine.step(&x, &mut y).unwrap();
        }
        let report = engine.report();
        assert_eq!(report.backend, "pcpm");
        assert_eq!(report.steps, 5);
        assert!(report.compression_ratio.unwrap() >= 1.0);
        assert!(report.aux_memory_bytes > 0);
        assert_eq!(report.bin_format, Some("wide"));
        assert!((report.bin_compression.unwrap() - 1.0).abs() < 1e-12);
        let pull = Engine::<PlusF32>::builder(&g)
            .backend(BackendKind::Pull)
            .build()
            .unwrap();
        assert_eq!(pull.report().backend, "pull");
        assert!(pull.report().compression_ratio.is_none());
        assert!(pull.report().bin_format.is_none());
    }

    #[test]
    fn report_carries_per_format_compression() {
        let g = rmat(&RmatConfig::graph500(9, 8, 3)).unwrap();
        let mut ratios = Vec::new();
        for format in BinFormatKind::ALL {
            let engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(64 * 4)
                .bin_format(format)
                .build()
                .unwrap();
            let report = engine.report();
            assert_eq!(report.bin_format, Some(format.name()));
            ratios.push(report.bin_compression.unwrap());
        }
        assert!((ratios[0] - 1.0).abs() < 1e-12, "wide is the baseline");
        assert!((ratios[1] - 2.0).abs() < 1e-12, "compact halves dest IDs");
        assert!(ratios[2] > 2.0, "delta beats compact, got {}", ratios[2]);
    }

    #[test]
    fn step_validates_dimensions() {
        let g = erdos_renyi(10, 30, 1).unwrap();
        let mut engine = Engine::<PlusF32>::builder(&g).build().unwrap();
        let mut y = vec![0.0f32; 10];
        assert!(engine.step(&[0.0; 3], &mut y).is_err());
        let x = vec![0.0f32; 10];
        let mut y_bad = vec![0.0f32; 2];
        assert!(engine.step(&x, &mut y_bad).is_err());
    }

    /// Splits a graph edit into (new graph, batch): deletes the first
    /// edge of every source in `del_sources`, inserts `inserts`.
    fn edit(
        g: &Csr,
        del_sources: &[u32],
        inserts: &[(u32, u32)],
    ) -> (Csr, crate::update::UpdateBatch) {
        let mut deletes = Vec::new();
        for &s in del_sources {
            if let Some(&t) = g.neighbors(s).first() {
                deletes.push((s, t));
            }
        }
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.retain(|e| !deletes.contains(e));
        edges.extend_from_slice(inserts);
        edges.sort_unstable();
        edges.dedup();
        let g2 = Csr::from_edges(g.num_nodes(), &edges).unwrap();
        (
            g2,
            crate::update::UpdateBatch::from_parts(inserts.to_vec(), deletes),
        )
    }

    #[test]
    fn pcpm_update_repairs_in_place_and_matches_fresh_prepare() {
        let g = rmat(&RmatConfig::graph500(9, 8, 55)).unwrap();
        let x = int_x(g.num_nodes());
        let (g2, batch) = edit(&g, &[1, 2, 70], &[(3, 400), (65, 9)]);
        let g2 = Arc::new(g2);
        for format in BinFormatKind::ALL {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(64 * 4)
                .bin_format(format)
                .build()
                .unwrap();
            let outcome = engine.update(&g2, None, &batch).unwrap();
            match outcome {
                crate::update::UpdateOutcome::Repaired(stats) => {
                    // Sources 1, 2, 3 live in partition 0; 65, 70 in 1.
                    assert_eq!(stats.partitions_rebuilt, 2, "format={format}");
                    assert_eq!(stats.partitions_total, 8);
                }
                other => panic!("expected repair, got {other:?}"),
            }
            let mut fresh = Engine::<PlusF32>::builder(&g2)
                .partition_bytes(64 * 4)
                .bin_format(format)
                .build()
                .unwrap();
            let n = g2.num_nodes() as usize;
            let (mut ya, mut yb) = (vec![0.0f32; n], vec![0.0f32; n]);
            engine.step(&x, &mut ya).unwrap();
            fresh.step(&x, &mut yb).unwrap();
            assert_eq!(ya, yb, "format={format}");
        }
    }

    #[test]
    fn weighted_delta_update_repairs_weights() {
        // The delta format stores weights in the raw-edge layout; repair
        // must keep them aligned with the re-encoded byte stream.
        let g = erdos_renyi(200, 1600, 21).unwrap();
        let wf = |s: u32, t: u32| (((s + t) % 8) + 1) as f32 / 8.0;
        let w: Vec<f32> = g.edges().map(|(s, t)| wf(s, t)).collect();
        let weights = EdgeWeights::new(&g, w).unwrap();
        let (g2, batch) = edit(&g, &[7], &[(4, 150)]);
        let g2 = Arc::new(g2);
        let w2: Vec<f32> = g2.edges().map(|(s, t)| wf(s, t)).collect();
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(32 * 4)
            .bin_format(BinFormatKind::Delta)
            .weights(&weights)
            .build()
            .unwrap();
        assert!(matches!(
            engine.update(&g2, Some(&w2), &batch).unwrap(),
            crate::update::UpdateOutcome::Repaired(_)
        ));
        let w2e = EdgeWeights::new(&g2, w2).unwrap();
        let mut fresh = Engine::<PlusF32>::builder(&g2)
            .partition_bytes(32 * 4)
            .bin_format(BinFormatKind::Delta)
            .weights(&w2e)
            .build()
            .unwrap();
        let x = int_x(g2.num_nodes());
        let n = g2.num_nodes() as usize;
        let (mut ya, mut yb) = (vec![0.0f32; n], vec![0.0f32; n]);
        engine.step(&x, &mut ya).unwrap();
        fresh.step(&x, &mut yb).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn csr_traversal_ablation_repairs_against_new_graph() {
        let g = rmat(&RmatConfig::graph500(8, 6, 91)).unwrap();
        let x = int_x(g.num_nodes());
        let (g2, batch) = edit(&g, &[5], &[(2, 200)]);
        let g2 = Arc::new(g2);
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(32 * 4)
            .scatter(ScatterKind::CsrTraversal)
            .build()
            .unwrap();
        assert!(matches!(
            engine.update(&g2, None, &batch).unwrap(),
            crate::update::UpdateOutcome::Repaired(_)
        ));
        let mut y = vec![0.0f32; g2.num_nodes() as usize];
        engine.step(&x, &mut y).unwrap();
        assert_eq!(y, reference(&g2, &x));
    }

    #[test]
    fn non_pcpm_backends_rebuild_on_update() {
        let g = rmat(&RmatConfig::graph500(8, 6, 31)).unwrap();
        let x = int_x(g.num_nodes());
        let (g2, batch) = edit(&g, &[0, 9], &[(1, 100)]);
        let g2 = Arc::new(g2);
        let want = reference(&g2, &x);
        for kind in [
            BackendKind::Pull,
            BackendKind::Push,
            BackendKind::EdgeCentric,
        ] {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(64 * 4)
                .backend(kind)
                .build()
                .unwrap();
            assert_eq!(
                engine.update(&g2, None, &batch).unwrap(),
                crate::update::UpdateOutcome::Rebuilt,
                "backend {}",
                kind.name()
            );
            let mut y = vec![0.0f32; g2.num_nodes() as usize];
            engine.step(&x, &mut y).unwrap();
            assert_eq!(y, want, "backend {}", kind.name());
        }
    }

    #[test]
    fn update_rejects_out_of_range_batch() {
        let g = Arc::new(erdos_renyi(50, 200, 8).unwrap());
        let mut engine = Engine::<PlusF32>::builder(&g).build().unwrap();
        let batch = crate::update::UpdateBatch::from_parts(vec![(0, 99)], vec![]);
        assert!(matches!(
            engine.update(&g, None, &batch),
            Err(PcpmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn external_backend_cannot_be_rebuilt_through_update() {
        let g = Arc::new(erdos_renyi(40, 160, 5).unwrap());
        let spec = PrepareSpec {
            graph: &g,
            shared: Some(&g),
            weights: None,
            cfg: PcpmConfig::default(),
            scatter: ScatterKind::default(),
            gather: GatherKind::default(),
        };
        let backend = PullBackend::<PlusF32>::prepare(&spec).unwrap();
        let mut engine = Engine::from_backend(Box::new(backend), 40, 40);
        let batch = crate::update::UpdateBatch::from_parts(vec![(0, 1)], vec![]);
        assert!(matches!(
            engine.update(&g, None, &batch),
            Err(PcpmError::BadConfig(_))
        ));
    }

    #[test]
    fn builder_shared_makes_retaining_backends_zero_copy() {
        let g = Arc::new(erdos_renyi(100, 500, 3).unwrap());
        let base = Arc::strong_count(&g);
        let push = Engine::<PlusF32>::builder_shared(&g)
            .backend(BackendKind::Push)
            .build()
            .unwrap();
        // The push backend AND the engine's retained snapshot source
        // hold the SAME allocation, not deep copies.
        assert_eq!(Arc::strong_count(&g), base + 2);
        let ablation = Engine::<PlusF32>::builder_shared(&g)
            .partition_bytes(64 * 4)
            .scatter(ScatterKind::CsrTraversal)
            .build()
            .unwrap();
        assert_eq!(Arc::strong_count(&g), base + 4);
        drop(push);
        drop(ablation);
        assert_eq!(Arc::strong_count(&g), base);
    }

    #[test]
    fn weighted_pcpm_update_repairs_weights() {
        let g = erdos_renyi(200, 1600, 21).unwrap();
        // Weight is a pure function of the endpoints, so unchanged edges
        // keep their weight across the update (the repair contract).
        let wf = |s: u32, t: u32| (((s + t) % 8) + 1) as f32 / 8.0;
        let w: Vec<f32> = g.edges().map(|(s, t)| wf(s, t)).collect();
        let weights = EdgeWeights::new(&g, w).unwrap();
        let (g2, batch) = edit(&g, &[7], &[(4, 150)]);
        let g2 = Arc::new(g2);
        // Post-update weights, parallel to the new CSR edge order.
        let w2: Vec<f32> = g2.edges().map(|(s, t)| wf(s, t)).collect();
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(32 * 4)
            .weights(&weights)
            .build()
            .unwrap();
        assert!(matches!(
            engine.update(&g2, Some(&w2), &batch).unwrap(),
            crate::update::UpdateOutcome::Repaired(_)
        ));
        let w2e = EdgeWeights::new(&g2, w2.clone()).unwrap();
        let mut fresh = Engine::<PlusF32>::builder(&g2)
            .partition_bytes(32 * 4)
            .weights(&w2e)
            .build()
            .unwrap();
        let x = int_x(g2.num_nodes());
        let n = g2.num_nodes() as usize;
        let (mut ya, mut yb) = (vec![0.0f32; n], vec![0.0f32; n]);
        engine.step(&x, &mut ya).unwrap();
        fresh.step(&x, &mut yb).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn update_rejects_weightedness_change_and_short_weights() {
        let g = erdos_renyi(60, 300, 13).unwrap();
        let w = EdgeWeights::ones(&g);
        let (g2, batch) = edit(&g, &[2], &[(1, 50)]);
        let g2 = Arc::new(g2);
        // Weighted engine, no weights passed: refuse instead of silently
        // rebuilding unweighted.
        let mut weighted = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .weights(&w)
            .build()
            .unwrap();
        assert!(matches!(
            weighted.update(&g2, None, &batch),
            Err(PcpmError::BadConfig(_))
        ));
        // Unweighted engine, weights passed: same refusal.
        let w2 = vec![1.0f32; g2.num_edges() as usize];
        let mut unweighted = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .build()
            .unwrap();
        assert!(matches!(
            unweighted.update(&g2, Some(&w2), &batch),
            Err(PcpmError::BadConfig(_))
        ));
        // Weighted engine, stale-length weights: dimension error, not a
        // panic inside the parallel fill.
        let stale = vec![1.0f32; g.num_edges() as usize - 1];
        assert!(matches!(
            weighted.update(&g2, Some(&stale), &batch),
            Err(PcpmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn externally_prepared_pcpm_backend_repairs_with_its_own_partitioning() {
        // A PCPM backend wrapped via from_backend has no build recipe,
        // so Engine::update fills the spec with default config — the
        // repair must still use the partitioning the bins were built
        // with, not the default 64 Ki-node partitions.
        let g = rmat(&RmatConfig::graph500(9, 8, 37)).unwrap();
        let spec = PrepareSpec {
            graph: &g,
            shared: None,
            weights: None,
            cfg: PcpmConfig::default().with_partition_bytes(64 * 4),
            scatter: ScatterKind::default(),
            gather: GatherKind::default(),
        };
        let backend = PcpmBackend::<PlusF32>::prepare(&spec).unwrap();
        let n = g.num_nodes();
        let mut engine = Engine::from_backend(Box::new(backend), n, n);
        // Touch a high partition (far from partition 0).
        let (g2, batch) = edit(&g, &[400], &[(450, 3)]);
        let g2 = Arc::new(g2);
        assert!(matches!(
            engine.update(&g2, None, &batch).unwrap(),
            crate::update::UpdateOutcome::Repaired(_)
        ));
        let x = int_x(n);
        let mut y = vec![0.0f32; n as usize];
        engine.step(&x, &mut y).unwrap();
        assert_eq!(y, reference(&g2, &x));
    }

    #[test]
    fn empty_batch_update_is_a_cheap_noop() {
        let g = Arc::new(erdos_renyi(80, 400, 6).unwrap());
        for kind in BackendKind::ALL {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .partition_bytes(64 * 4)
                .backend(kind)
                .build()
                .unwrap();
            let outcome = engine
                .update(&g, None, &crate::update::UpdateBatch::default())
                .unwrap();
            assert!(
                matches!(
                    outcome,
                    crate::update::UpdateOutcome::Repaired(RepairStats {
                        partitions_rebuilt: 0,
                        ..
                    })
                ),
                "backend {}",
                kind.name()
            );
        }
    }

    #[test]
    fn empty_graph_on_every_backend() {
        let g = Csr::from_edges(0, &[]).unwrap();
        for kind in BackendKind::ALL {
            let mut engine = Engine::<PlusF32>::builder(&g)
                .backend(kind)
                .build()
                .unwrap();
            let mut y: Vec<f32> = vec![];
            engine.step(&[], &mut y).unwrap();
        }
    }
}
