//! Message bins: update values and MSB-demarcated destination IDs.
//!
//! Each destination partition conceptually owns one *update bin* and one
//! *destID bin* (paper §3.1, Fig. 3b). Physically both live in two global
//! arrays laid out **source-partition-major**: source partition `s` owns
//! the contiguous region `[region[s], region[s+1])`, subdivided by
//! destination partition. This gives every scatter worker one contiguous
//! writable slice (lock-free, fully safe splitting) while the gather phase
//! streams, for destination partition `p`, the `k_src` segments
//! `(s, p)` — each itself contiguous.
//!
//! Destination IDs are written **once** (they do not change across
//! PageRank iterations) with the MSB of the first ID of every message set,
//! marking where the next update value begins (§3.2). For weighted SpMV
//! the edge weights ride alongside the destination IDs (§3.5).
//!
//! [`BinSpace`] is the **wide** (32-bit global ID) encoding — the
//! [`WideFormat`](crate::format::WideFormat) storage of the
//! [`BinFormat`](crate::format::BinFormat) axis. The build/repair logic
//! lives in the shared skeleton of [`crate::format`]; this module only
//! keeps the storage type and its memory accounting.

use crate::format::{BinFormat, BinScalar, WideFormat};
use crate::png::{EdgeView, Png};

/// The statically pre-allocated message bins for one PNG layout.
///
/// Generic over the update scalar `T`: PageRank uses `f32`, the algebra
/// layer (connected components, BFS levels) uses integer labels. The
/// destination-ID stream and optional weights are scalar-independent.
#[derive(Clone, Debug)]
pub struct BinSpace<T = f32> {
    /// Update values, source-partition-major (`|E'|` entries).
    pub updates: Vec<T>,
    /// Destination IDs with MSB demarcation, source-partition-major
    /// (`|E|` entries). Written once at construction.
    pub dest_ids: Vec<u32>,
    /// Optional edge weights parallel to [`Self::dest_ids`].
    pub weights: Option<Vec<f32>>,
}

impl<T: BinScalar> BinSpace<T> {
    /// Allocates the bins and writes the destination-ID (and weight)
    /// streams for `png`, in parallel over source partitions.
    #[deprecated(
        since = "0.3.0",
        note = "construct through the format axis: `WideFormat::build` \
                (or the engine builder's `.bin_format(BinFormatKind::Wide)`)"
    )]
    pub fn build(view: EdgeView<'_>, png: &Png, edge_weights: Option<&[f32]>) -> Self {
        WideFormat::build(view, png, edge_weights)
    }

    /// Heap bytes held by the bins (for the communication accounting).
    pub fn memory_bytes(&self) -> u64 {
        (self.updates.len() * std::mem::size_of::<T>()
            + self.dest_ids.len() * 4
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::{ID_MASK, MSB_FLAG};
    use pcpm_graph::Csr;

    fn setup(q: u32) -> (Csr, Png) {
        let g = Csr::from_edges(
            9,
            &[
                (3, 2),
                (6, 0),
                (6, 1),
                (7, 2),
                (3, 4),
                (6, 3),
                (6, 4),
                (7, 5),
                (2, 8),
                (7, 8),
            ],
        )
        .unwrap();
        let parts = Partitioner::new(9, q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        (g, png)
    }

    fn build(g: &Csr, png: &Png, w: Option<&[f32]>) -> BinSpace {
        WideFormat::build(EdgeView::from_csr(g), png, w)
    }

    /// Decodes segment `(s, p)` into (source-order) messages of masked IDs.
    fn decode(png: &Png, bins: &BinSpace, s: u32, p: u32) -> Vec<Vec<u32>> {
        let part = png.part(s);
        let base = png.did_region()[s as usize];
        let lo = (base + part.did_off[p as usize]) as usize;
        let hi = (base + part.did_off[p as usize + 1]) as usize;
        let mut msgs: Vec<Vec<u32>> = Vec::new();
        for &id in &bins.dest_ids[lo..hi] {
            if id & MSB_FLAG != 0 {
                msgs.push(vec![id & ID_MASK]);
            } else {
                msgs.last_mut().expect("first entry must set MSB").push(id);
            }
        }
        msgs
    }

    #[test]
    fn msb_demarcation_round_trips_fig3() {
        let (g, png) = setup(3);
        let bins = build(&g, &png, None);
        // Fig. 4b: bin 0 receives from partition 2 the messages
        // 6 -> {0, 1} and 7 -> {2}.
        assert_eq!(decode(&png, &bins, 2, 0), vec![vec![0, 1], vec![2]]);
        // Bin 2 receives from partition 0: 2 -> {8}; from partition 2: 7 -> {8}.
        assert_eq!(decode(&png, &bins, 0, 2), vec![vec![8]]);
        assert_eq!(decode(&png, &bins, 2, 2), vec![vec![8]]);
    }

    #[test]
    fn deprecated_direct_construction_still_works() {
        // The 0.2 entry point remains callable for one release.
        let (g, png) = setup(3);
        #[allow(deprecated)]
        let old = BinSpace::<f32>::build(EdgeView::from_csr(&g), &png, None);
        let new = build(&g, &png, None);
        assert_eq!(old.dest_ids, new.dest_ids);
    }

    #[test]
    fn message_counts_match_png() {
        let (g, png) = setup(3);
        let bins = build(&g, &png, None);
        let k = png.dst_parts().num_partitions();
        let mut total_msgs = 0u64;
        let mut total_ids = 0u64;
        for s in 0..k {
            for p in 0..k {
                let msgs = decode(&png, &bins, s, p);
                total_msgs += msgs.len() as u64;
                total_ids += msgs.iter().map(|m| m.len() as u64).sum::<u64>();
                // One message per compressed edge in this row.
                assert_eq!(msgs.len(), png.part(s).row(p).len());
            }
        }
        assert_eq!(total_msgs, png.num_compressed_edges());
        assert_eq!(total_ids, g.num_edges());
    }

    #[test]
    fn decoded_structure_equals_original_adjacency() {
        let g = pcpm_graph::gen::erdos_renyi(64, 400, 17).unwrap();
        let parts = Partitioner::new(64, 10).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let bins = build(&g, &png, None);
        // Reconstruct every (src, dst) pair from the bins.
        let mut rebuilt: Vec<(u32, u32)> = Vec::new();
        for s in parts.iter() {
            for p in parts.iter() {
                let rows = png.part(s).row(p);
                let msgs = decode(&png, &bins, s, p);
                assert_eq!(rows.len(), msgs.len());
                for (&src, msg) in rows.iter().zip(&msgs) {
                    for &d in msg {
                        rebuilt.push((src, d));
                    }
                }
            }
        }
        rebuilt.sort_unstable();
        let mut original: Vec<(u32, u32)> = g.edges().collect();
        original.sort_unstable();
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn weights_ride_with_dest_ids() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 3), (2, 1)]).unwrap();
        // Weight of edge (s,t) is 10*s + t, in CSR edge order:
        // (0,1)=1, (0,3)=3, (2,1)=21.
        let w = vec![1.0f32, 3.0, 21.0];
        let parts = Partitioner::new(4, 2).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let bins = build(&g, &png, Some(&w));
        let bw = bins.weights.as_ref().unwrap();
        // For every bin entry, the weight must match the (masked src->dst) edge.
        for s in parts.iter() {
            let part = png.part(s);
            let base = png.did_region()[s as usize] as usize;
            for p in parts.iter() {
                let lo = base + part.did_off[p as usize] as usize;
                let hi = base + part.did_off[p as usize + 1] as usize;
                let rows = part.row(p);
                let mut row_idx = 0usize;
                for (offset, (&id, &weight)) in
                    bins.dest_ids[lo..hi].iter().zip(&bw[lo..hi]).enumerate()
                {
                    if id & MSB_FLAG != 0 && offset != 0 {
                        row_idx += 1;
                    }
                    let src = rows[row_idx];
                    let dst = id & ID_MASK;
                    let expected = (f32::from(src as u8) * 10.0) + f32::from(dst as u8);
                    assert_eq!(weight, expected, "edge ({src},{dst})");
                }
            }
        }
    }

    #[test]
    fn unweighted_bins_have_no_weights() {
        let (g, png) = setup(3);
        let bins = build(&g, &png, None);
        assert!(bins.weights.is_none());
        assert_eq!(bins.updates.len() as u64, png.num_compressed_edges());
        assert_eq!(bins.dest_ids.len() as u64, g.num_edges());
    }

    #[test]
    fn memory_accounting() {
        let (g, png) = setup(3);
        let bins = build(&g, &png, None);
        assert_eq!(bins.memory_bytes(), (8 * 4 + 10 * 4) as u64);
    }
}
