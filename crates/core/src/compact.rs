//! Compact 16-bit destination-ID bins (paper §6 future work).
//!
//! The paper's conclusion observes that PCPM "accesses nodes from only
//! one graph partition at a time", so G-Store's smallest-number-of-bits
//! representation can shrink the destination-ID bins: within a gather of
//! partition `p`, a destination is fully identified by its offset inside
//! the partition. With partitions of at most `2^15` nodes, a destination
//! fits in 15 bits plus the MSB demarcation flag — **halving** the
//! destID-bin traffic, the largest single term of PCPM's communication
//! model (`m·di` in Eq. 5).
//!
//! [`CompactBinSpace`] stores exactly that encoding — the
//! [`CompactFormat`](crate::format::CompactFormat) storage of the
//! [`BinFormat`](crate::format::BinFormat) axis; the build/repair logic
//! is the shared fixed-width skeleton in [`crate::format`].
//! [`gather_compact_branch_avoiding`] mirrors Algorithm 4 on it. The
//! engine switches when [`crate::PcpmConfig::bin_format`] selects
//! [`BinFormatKind::Compact`](crate::format::BinFormatKind) and the
//! partition size permits.

use crate::format::{BinFormat, BinScalar, CompactFormat};
use crate::kernel::{prefetch, KernelKind};
use crate::partition::split_by_lens;
use crate::png::{EdgeView, Png};
use rayon::prelude::*;

/// MSB flag in the 16-bit encoding.
pub const MSB_FLAG16: u16 = 0x8000;

/// Mask extracting the partition-local destination offset.
pub const ID_MASK16: u16 = 0x7FFF;

/// Largest partition size (in nodes) the compact encoding supports.
pub const MAX_COMPACT_PARTITION: u32 = 1 << 15;

/// Message bins with 16-bit partition-local destination IDs.
///
/// Generic over the update scalar `T`, exactly like
/// [`crate::bins::BinSpace`]: PageRank uses `f32`, the algebra layer uses
/// integer labels.
#[derive(Clone, Debug)]
pub struct CompactBinSpace<T = f32> {
    /// Update values, source-partition-major (`|E'|` entries).
    pub updates: Vec<T>,
    /// Partition-local destination offsets with MSB demarcation
    /// (`|E|` entries), written once.
    pub dest_ids: Vec<u16>,
    /// Optional edge weights parallel to [`Self::dest_ids`].
    pub weights: Option<Vec<f32>>,
}

impl<T: BinScalar> CompactBinSpace<T> {
    /// Builds the compact bins; the destination partitioner must satisfy
    /// `partition_size() <= MAX_COMPACT_PARTITION`.
    ///
    /// # Panics
    ///
    /// Panics if the partition size exceeds the 15-bit local ID range
    /// (engine code checks this before choosing the compact path).
    #[deprecated(
        since = "0.3.0",
        note = "construct through the format axis: `CompactFormat::build` \
                (or the engine builder's `.bin_format(BinFormatKind::Compact)`)"
    )]
    pub fn build(view: EdgeView<'_>, png: &Png, edge_weights: Option<&[f32]>) -> Self {
        CompactFormat::build(view, png, edge_weights)
    }

    /// Heap bytes held by the bins.
    pub fn memory_bytes(&self) -> u64 {
        (self.updates.len() * std::mem::size_of::<T>()
            + self.dest_ids.len() * 2
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }
}

/// Algorithm 4 over compact bins and the `(+, ×)` semiring.
pub fn gather_compact_branch_avoiding(png: &Png, bins: &CompactBinSpace, y: &mut [f32]) {
    gather_compact_algebra::<crate::algebra::PlusF32>(png, bins, y, KernelKind::Scalar);
}

/// Algorithm 4 over compact bins for an arbitrary
/// [`Algebra`](crate::algebra::Algebra): identical pointer arithmetic,
/// local 15-bit destination offsets (no base subtraction needed).
/// [`KernelKind::Unrolled`] applies entries 4-at-a-time in the scalar
/// order (bit-identical output) and prefetches the next segment.
pub fn gather_compact_algebra<A: crate::algebra::Algebra>(
    png: &Png,
    bins: &CompactBinSpace<A::T>,
    y: &mut [A::T],
    kernel: KernelKind,
) {
    assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    let lens = png.dst_parts().lens();
    let slices = split_by_lens(y, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    slices.into_par_iter().enumerate().for_each(|(p, ys)| {
        ys.fill(A::identity());
        for s in 0..k_src {
            let part = png.part(s);
            let ubase = png.upd_region()[s as usize] as usize;
            let dbase = png.did_region()[s as usize] as usize;
            let ulo = ubase + part.upd_off[p] as usize;
            let uhi = ubase + part.upd_off[p + 1] as usize;
            let dlo = dbase + part.did_off[p] as usize;
            let dhi = dbase + part.did_off[p + 1] as usize;
            let us = &bins.updates[ulo..uhi];
            let ds = &bins.dest_ids[dlo..dhi];
            if unrolled && s + 1 < k_src {
                let np = png.part(s + 1);
                let nb = png.did_region()[s as usize + 1] as usize;
                prefetch(&bins.dest_ids[nb + np.did_off[p] as usize..]);
            }
            match &bins.weights {
                None if unrolled => {
                    let mut up = usize::MAX;
                    macro_rules! step {
                        ($id:expr) => {{
                            let id = $id;
                            up = up.wrapping_add((id >> 15) as usize);
                            let slot = &mut ys[(id & ID_MASK16) as usize];
                            *slot = A::combine(*slot, A::extend(us[up]));
                        }};
                    }
                    let mut chunks = ds.chunks_exact(4);
                    for c in &mut chunks {
                        step!(c[0]);
                        step!(c[1]);
                        step!(c[2]);
                        step!(c[3]);
                    }
                    for &id in chunks.remainder() {
                        step!(id);
                    }
                }
                None => {
                    let mut up = usize::MAX;
                    for &id in ds {
                        up = up.wrapping_add((id >> 15) as usize);
                        let slot = &mut ys[(id & ID_MASK16) as usize];
                        *slot = A::combine(*slot, A::extend(us[up]));
                    }
                }
                Some(w) if unrolled => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    macro_rules! step {
                        ($id:expr, $wt:expr) => {{
                            let id = $id;
                            up = up.wrapping_add((id >> 15) as usize);
                            let slot = &mut ys[(id & ID_MASK16) as usize];
                            *slot = A::combine(*slot, A::extend_weighted($wt, us[up]));
                        }};
                    }
                    let mut dc = ds.chunks_exact(4);
                    let mut wc = ws.chunks_exact(4);
                    for (c, cw) in (&mut dc).zip(&mut wc) {
                        step!(c[0], cw[0]);
                        step!(c[1], cw[1]);
                        step!(c[2], cw[2]);
                        step!(c[3], cw[3]);
                    }
                    for (&id, &wt) in dc.remainder().iter().zip(wc.remainder()) {
                        step!(id, wt);
                    }
                }
                Some(w) => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    for (&id, &wt) in ds.iter().zip(ws) {
                        up = up.wrapping_add((id >> 15) as usize);
                        let slot = &mut ys[(id & ID_MASK16) as usize];
                        *slot = A::combine(*slot, A::extend_weighted(wt, us[up]));
                    }
                }
            }
        }
    });
}

/// Multi-query gather over compact bins: the 16-bit destID stream is
/// decoded once per batch and each entry applied to every query's
/// accumulator (see [`crate::gather::gather_algebra_many`] for the
/// contract; per-query output is bit-identical to
/// [`gather_compact_algebra`]).
pub fn gather_compact_algebra_many<A: crate::algebra::Algebra>(
    png: &Png,
    bins: &CompactBinSpace<A::T>,
    updates: &[&[A::T]],
    ys: &mut [&mut [A::T]],
    kernel: KernelKind,
) {
    assert_eq!(updates.len(), ys.len(), "one update stream per output");
    for y in ys.iter() {
        assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    }
    let lens = png.dst_parts().lens();
    let per_part = crate::gather::split_queries_by_parts(ys, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    per_part
        .into_par_iter()
        .enumerate()
        .for_each(|(p, mut ys_q)| {
            for ys in ys_q.iter_mut() {
                ys.fill(A::identity());
            }
            for s in 0..k_src {
                let part = png.part(s);
                let ubase = png.upd_region()[s as usize] as usize;
                let dbase = png.did_region()[s as usize] as usize;
                let ulo = ubase + part.upd_off[p] as usize;
                let dlo = dbase + part.did_off[p] as usize;
                let dhi = dbase + part.did_off[p + 1] as usize;
                let ds = &bins.dest_ids[dlo..dhi];
                if unrolled && s + 1 < k_src {
                    let np = png.part(s + 1);
                    let nb = png.did_region()[s as usize + 1] as usize;
                    prefetch(&bins.dest_ids[nb + np.did_off[p] as usize..]);
                }
                match &bins.weights {
                    None => {
                        let mut up = usize::MAX;
                        for &id in ds {
                            up = up.wrapping_add((id >> 15) as usize);
                            let local = (id & ID_MASK16) as usize;
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(*slot, A::extend(updates[q][ulo + up]));
                            }
                        }
                    }
                    Some(w) => {
                        let ws = &w[dlo..dhi];
                        let mut up = usize::MAX;
                        for (&id, &wt) in ds.iter().zip(ws) {
                            up = up.wrapping_add((id >> 15) as usize);
                            let local = (id & ID_MASK16) as usize;
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot =
                                    A::combine(*slot, A::extend_weighted(wt, updates[q][ulo + up]));
                            }
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinSpace;
    use crate::format::WideFormat;
    use crate::gather::gather_branch_avoiding;
    use crate::partition::Partitioner;
    use crate::scatter::png_scatter;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};
    use pcpm_graph::{Csr, EdgeWeights};

    fn setup(g: &Csr, q: u32) -> Png {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts)
    }

    fn build_wide(g: &Csr, png: &Png, w: Option<&[f32]>) -> BinSpace {
        WideFormat::build(EdgeView::from_csr(g), png, w)
    }

    fn build_compact(g: &Csr, png: &Png, w: Option<&[f32]>) -> CompactBinSpace {
        CompactFormat::build(EdgeView::from_csr(g), png, w)
    }

    #[test]
    fn compact_gather_equals_wide_gather() {
        let g = rmat(&RmatConfig::graph500(9, 8, 61)).unwrap();
        for q in [16u32, 100, 512] {
            let png = setup(&g, q);
            let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).sin()).collect();
            let mut wide = build_wide(&g, &png, None);
            let mut compact = build_compact(&g, &png, None);
            png_scatter(&png, &x, &mut wide.updates);
            png_scatter(&png, &x, &mut compact.updates);
            let mut yw = vec![0.0f32; g.num_nodes() as usize];
            let mut yc = vec![0.0f32; g.num_nodes() as usize];
            gather_branch_avoiding(&png, &wide, &mut yw);
            gather_compact_branch_avoiding(&png, &compact, &mut yc);
            assert_eq!(yw, yc, "q={q}");
        }
    }

    #[test]
    fn compact_weighted_gather_equals_wide() {
        let g = erdos_renyi(200, 1500, 3).unwrap();
        let w = EdgeWeights::random(&g, 8);
        let png = setup(&g, 64);
        let x: Vec<f32> = (0..200).map(|v| v as f32 * 0.25).collect();
        let mut wide = build_wide(&g, &png, Some(w.as_slice()));
        let mut compact = build_compact(&g, &png, Some(w.as_slice()));
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut compact.updates);
        let mut yw = vec![0.0f32; 200];
        let mut yc = vec![0.0f32; 200];
        gather_branch_avoiding(&png, &wide, &mut yw);
        gather_compact_branch_avoiding(&png, &compact, &mut yc);
        assert_eq!(yw, yc);
    }

    #[test]
    fn unrolled_kernel_bit_identical_to_scalar() {
        let g = rmat(&RmatConfig::graph500(9, 8, 61)).unwrap();
        let w = EdgeWeights::random(&g, 8);
        for weights in [None, Some(w.as_slice())] {
            let png = setup(&g, 100);
            let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).sin()).collect();
            let mut bins = build_compact(&g, &png, weights);
            png_scatter(&png, &x, &mut bins.updates);
            let n = g.num_nodes() as usize;
            let (mut ys, mut yu) = (vec![0.0f32; n], vec![0.0f32; n]);
            gather_compact_algebra::<crate::algebra::PlusF32>(
                &png,
                &bins,
                &mut ys,
                KernelKind::Scalar,
            );
            gather_compact_algebra::<crate::algebra::PlusF32>(
                &png,
                &bins,
                &mut yu,
                KernelKind::Unrolled,
            );
            assert_eq!(ys, yu, "weighted={}", weights.is_some());
        }
    }

    #[test]
    fn memory_footprint_is_halved_on_dest_ids() {
        let g = erdos_renyi(500, 5000, 5).unwrap();
        let png = setup(&g, 128);
        let wide = build_wide(&g, &png, None);
        let compact = build_compact(&g, &png, None);
        let dest_wide = wide.dest_ids.len() * 4;
        let dest_compact = compact.dest_ids.len() * 2;
        assert_eq!(dest_compact * 2, dest_wide);
        assert!(compact.memory_bytes() < wide.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "15-bit compact range")]
    fn oversized_partition_rejected() {
        let n = 70_000u32;
        let g = Csr::from_edges(n, &[(0, 1), (0, 65_000)]).unwrap();
        let png = setup(&g, n); // one partition of 70 K nodes > 2^15
        let _ = build_compact(&g, &png, None);
    }

    #[test]
    fn max_boundary_partition_size_works() {
        // Exactly 2^15-node partitions: local offsets use all 15 bits.
        let n = MAX_COMPACT_PARTITION * 2;
        let edges = [(0u32, MAX_COMPACT_PARTITION - 1), (0, n - 1), (1, 0)];
        let g = Csr::from_edges(n, &edges).unwrap();
        let png = setup(&g, MAX_COMPACT_PARTITION);
        let mut bins = build_compact(&g, &png, None);
        let mut x = vec![0.0f32; n as usize];
        x[0] = 5.0;
        x[1] = 7.0;
        png_scatter(&png, &x, &mut bins.updates);
        let mut y = vec![0.0f32; n as usize];
        gather_compact_branch_avoiding(&png, &bins, &mut y);
        assert_eq!(y[(MAX_COMPACT_PARTITION - 1) as usize], 5.0);
        assert_eq!(y[(n - 1) as usize], 5.0);
        assert_eq!(y[0], 7.0);
    }
}
