//! Compact 16-bit destination-ID bins (paper §6 future work).
//!
//! The paper's conclusion observes that PCPM "accesses nodes from only
//! one graph partition at a time", so G-Store's smallest-number-of-bits
//! representation can shrink the destination-ID bins: within a gather of
//! partition `p`, a destination is fully identified by its offset inside
//! the partition. With partitions of at most `2^15` nodes, a destination
//! fits in 15 bits plus the MSB demarcation flag — **halving** the
//! destID-bin traffic, the largest single term of PCPM's communication
//! model (`m·di` in Eq. 5).
//!
//! [`CompactBinSpace`] stores exactly that encoding;
//! [`gather_compact_branch_avoiding`] mirrors Algorithm 4 on it. The
//! engine switches automatically when
//! [`crate::PcpmConfig::compact_bins`] is set and the partition size
//! permits.

use crate::partition::split_by_lens;
use crate::png::{EdgeView, Png};
use rayon::prelude::*;

/// MSB flag in the 16-bit encoding.
pub const MSB_FLAG16: u16 = 0x8000;

/// Mask extracting the partition-local destination offset.
pub const ID_MASK16: u16 = 0x7FFF;

/// Largest partition size (in nodes) the compact encoding supports.
pub const MAX_COMPACT_PARTITION: u32 = 1 << 15;

/// Message bins with 16-bit partition-local destination IDs.
///
/// Generic over the update scalar `T`, exactly like
/// [`crate::bins::BinSpace`]: PageRank uses `f32`, the algebra layer uses
/// integer labels.
#[derive(Clone, Debug)]
pub struct CompactBinSpace<T = f32> {
    /// Update values, source-partition-major (`|E'|` entries).
    pub updates: Vec<T>,
    /// Partition-local destination offsets with MSB demarcation
    /// (`|E|` entries), written once.
    pub dest_ids: Vec<u16>,
    /// Optional edge weights parallel to [`Self::dest_ids`].
    pub weights: Option<Vec<f32>>,
}

impl<T: Copy + Default + Send + Sync> CompactBinSpace<T> {
    /// Builds the compact bins; the destination partitioner must satisfy
    /// `partition_size() <= MAX_COMPACT_PARTITION`.
    ///
    /// # Panics
    ///
    /// Panics if the partition size exceeds the 15-bit local ID range
    /// (engine code checks this before choosing the compact path).
    pub fn build(view: EdgeView<'_>, png: &Png, edge_weights: Option<&[f32]>) -> Self {
        let q = png.dst_parts().partition_size();
        assert!(
            q <= MAX_COMPACT_PARTITION,
            "partition size {q} exceeds the 15-bit compact range"
        );
        let updates = vec![T::default(); png.num_compressed_edges() as usize];
        let mut dest_ids = vec![0u16; png.num_raw_edges() as usize];
        let mut weights = edge_weights.map(|_| vec![0.0f32; png.num_raw_edges() as usize]);

        let did_lens = png.did_region_lens();
        let regions = split_by_lens(&mut dest_ids, &did_lens);
        match (&mut weights, edge_weights) {
            (Some(w), Some(ew)) => {
                let wregions = split_by_lens(w, &did_lens);
                regions
                    .into_par_iter()
                    .zip(wregions)
                    .enumerate()
                    .for_each(|(s, (dst, wdst))| {
                        fill_partition(view, png, s as u32, dst, Some((wdst, ew)));
                    });
            }
            _ => {
                regions.into_par_iter().enumerate().for_each(|(s, dst)| {
                    fill_partition(view, png, s as u32, dst, None);
                });
            }
        }
        Self {
            updates,
            dest_ids,
            weights,
        }
    }

    /// Incremental rebuild after a [`Png::repair`] — the 16-bit analogue
    /// of [`crate::bins::BinSpace::repair`]: touched source partitions
    /// are re-filled, untouched segments block-copied from the old
    /// arrays, and the scratch update array re-allocated.
    pub(crate) fn repair(
        &mut self,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        edge_weights: Option<&[f32]>,
    ) {
        self.updates = vec![T::default(); png.num_compressed_edges() as usize];
        let mut dest_ids = vec![0u16; png.num_raw_edges() as usize];
        let mut weights = edge_weights.map(|_| vec![0.0f32; png.num_raw_edges() as usize]);
        let did_lens = png.did_region_lens();
        let old = &self.dest_ids;
        let old_w = self.weights.as_deref();
        let regions = split_by_lens(&mut dest_ids, &did_lens);
        match (&mut weights, edge_weights) {
            (Some(w), Some(ew)) => {
                let wregions = split_by_lens(w, &did_lens);
                regions
                    .into_par_iter()
                    .zip(wregions)
                    .enumerate()
                    .for_each(|(s, (dst, wdst))| {
                        if touched[s] {
                            fill_partition(view, png, s as u32, dst, Some((wdst, ew)));
                        } else {
                            let lo = old_did_region[s] as usize;
                            dst.copy_from_slice(&old[lo..lo + dst.len()]);
                            let ow = old_w.expect("weighted bins keep weights");
                            wdst.copy_from_slice(&ow[lo..lo + wdst.len()]);
                        }
                    });
            }
            _ => {
                regions.into_par_iter().enumerate().for_each(|(s, dst)| {
                    if touched[s] {
                        fill_partition(view, png, s as u32, dst, None);
                    } else {
                        let lo = old_did_region[s] as usize;
                        dst.copy_from_slice(&old[lo..lo + dst.len()]);
                    }
                });
            }
        }
        self.dest_ids = dest_ids;
        self.weights = weights;
    }

    /// Heap bytes held by the bins.
    pub fn memory_bytes(&self) -> u64 {
        (self.updates.len() * std::mem::size_of::<T>()
            + self.dest_ids.len() * 2
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }
}

fn fill_partition(
    view: EdgeView<'_>,
    png: &Png,
    s: u32,
    region: &mut [u16],
    weights: Option<(&mut [f32], &[f32])>,
) {
    let q = png.dst_parts().partition_size();
    let part = png.part(s);
    let mut cursor: Vec<u64> = part.did_off[..part.did_off.len() - 1].to_vec();
    let mut wsplit = weights;
    for v in png.src_parts().range(s) {
        let nbrs = view.neighbors(v);
        let base = view.edge_range(v).start;
        let mut i = 0;
        while i < nbrs.len() {
            let p = nbrs[i] / q;
            let p_lo = p * q;
            let mut j = i + 1;
            while j < nbrs.len() && nbrs[j] / q == p {
                j += 1;
            }
            let c = cursor[p as usize] as usize;
            region[c] = (nbrs[i] - p_lo) as u16 | MSB_FLAG16;
            for (slot, &t) in region[c + 1..c + (j - i)].iter_mut().zip(&nbrs[i + 1..j]) {
                *slot = (t - p_lo) as u16;
            }
            if let Some((wregion, ew)) = wsplit.as_mut() {
                wregion[c..c + (j - i)]
                    .copy_from_slice(&ew[(base as usize + i)..(base as usize + j)]);
            }
            cursor[p as usize] += (j - i) as u64;
            i = j;
        }
    }
}

/// Algorithm 4 over compact bins and the `(+, ×)` semiring.
pub fn gather_compact_branch_avoiding(png: &Png, bins: &CompactBinSpace, y: &mut [f32]) {
    gather_compact_algebra::<crate::algebra::PlusF32>(png, bins, y);
}

/// Algorithm 4 over compact bins for an arbitrary
/// [`Algebra`](crate::algebra::Algebra): identical pointer arithmetic,
/// local 15-bit destination offsets (no base subtraction needed).
pub fn gather_compact_algebra<A: crate::algebra::Algebra>(
    png: &Png,
    bins: &CompactBinSpace<A::T>,
    y: &mut [A::T],
) {
    assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    let lens = png.dst_parts().lens();
    let slices = split_by_lens(y, &lens);
    let k_src = png.src_parts().num_partitions();
    slices.into_par_iter().enumerate().for_each(|(p, ys)| {
        ys.fill(A::identity());
        for s in 0..k_src {
            let part = png.part(s);
            let ubase = png.upd_region()[s as usize] as usize;
            let dbase = png.did_region()[s as usize] as usize;
            let ulo = ubase + part.upd_off[p] as usize;
            let uhi = ubase + part.upd_off[p + 1] as usize;
            let dlo = dbase + part.did_off[p] as usize;
            let dhi = dbase + part.did_off[p + 1] as usize;
            let us = &bins.updates[ulo..uhi];
            let ds = &bins.dest_ids[dlo..dhi];
            match &bins.weights {
                None => {
                    let mut up = usize::MAX;
                    for &id in ds {
                        up = up.wrapping_add((id >> 15) as usize);
                        let slot = &mut ys[(id & ID_MASK16) as usize];
                        *slot = A::combine(*slot, A::extend(us[up]));
                    }
                }
                Some(w) => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    for (&id, &wt) in ds.iter().zip(ws) {
                        up = up.wrapping_add((id >> 15) as usize);
                        let slot = &mut ys[(id & ID_MASK16) as usize];
                        *slot = A::combine(*slot, A::extend_weighted(wt, us[up]));
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinSpace;
    use crate::gather::gather_branch_avoiding;
    use crate::partition::Partitioner;
    use crate::scatter::png_scatter;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};
    use pcpm_graph::{Csr, EdgeWeights};

    fn setup(g: &Csr, q: u32) -> Png {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts)
    }

    #[test]
    fn compact_gather_equals_wide_gather() {
        let g = rmat(&RmatConfig::graph500(9, 8, 61)).unwrap();
        for q in [16u32, 100, 512] {
            let png = setup(&g, q);
            let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).sin()).collect();
            let mut wide: BinSpace = BinSpace::build(EdgeView::from_csr(&g), &png, None);
            let mut compact = CompactBinSpace::build(EdgeView::from_csr(&g), &png, None);
            png_scatter(&png, &x, &mut wide.updates);
            png_scatter(&png, &x, &mut compact.updates);
            let mut yw = vec![0.0f32; g.num_nodes() as usize];
            let mut yc = vec![0.0f32; g.num_nodes() as usize];
            gather_branch_avoiding(&png, &wide, &mut yw);
            gather_compact_branch_avoiding(&png, &compact, &mut yc);
            assert_eq!(yw, yc, "q={q}");
        }
    }

    #[test]
    fn compact_weighted_gather_equals_wide() {
        let g = erdos_renyi(200, 1500, 3).unwrap();
        let w = EdgeWeights::random(&g, 8);
        let png = setup(&g, 64);
        let x: Vec<f32> = (0..200).map(|v| v as f32 * 0.25).collect();
        let mut wide: BinSpace = BinSpace::build(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        let mut compact = CompactBinSpace::build(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut compact.updates);
        let mut yw = vec![0.0f32; 200];
        let mut yc = vec![0.0f32; 200];
        gather_branch_avoiding(&png, &wide, &mut yw);
        gather_compact_branch_avoiding(&png, &compact, &mut yc);
        assert_eq!(yw, yc);
    }

    #[test]
    fn memory_footprint_is_halved_on_dest_ids() {
        let g = erdos_renyi(500, 5000, 5).unwrap();
        let png = setup(&g, 128);
        let wide: BinSpace = BinSpace::build(EdgeView::from_csr(&g), &png, None);
        let compact: CompactBinSpace = CompactBinSpace::build(EdgeView::from_csr(&g), &png, None);
        let dest_wide = wide.dest_ids.len() * 4;
        let dest_compact = compact.dest_ids.len() * 2;
        assert_eq!(dest_compact * 2, dest_wide);
        assert!(compact.memory_bytes() < wide.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "15-bit compact range")]
    fn oversized_partition_rejected() {
        let n = 70_000u32;
        let g = Csr::from_edges(n, &[(0, 1), (0, 65_000)]).unwrap();
        let png = setup(&g, n); // one partition of 70 K nodes > 2^15
        let _: CompactBinSpace = CompactBinSpace::build(EdgeView::from_csr(&g), &png, None);
    }

    #[test]
    fn max_boundary_partition_size_works() {
        // Exactly 2^15-node partitions: local offsets use all 15 bits.
        let n = MAX_COMPACT_PARTITION * 2;
        let edges = [(0u32, MAX_COMPACT_PARTITION - 1), (0, n - 1), (1, 0)];
        let g = Csr::from_edges(n, &edges).unwrap();
        let png = setup(&g, MAX_COMPACT_PARTITION);
        let mut bins = CompactBinSpace::build(EdgeView::from_csr(&g), &png, None);
        let mut x = vec![0.0f32; n as usize];
        x[0] = 5.0;
        x[1] = 7.0;
        png_scatter(&png, &x, &mut bins.updates);
        let mut y = vec![0.0f32; n as usize];
        gather_compact_branch_avoiding(&png, &bins, &mut y);
        assert_eq!(y[(MAX_COMPACT_PARTITION - 1) as usize], 5.0);
        assert_eq!(y[(n - 1) as usize], 5.0);
        assert_eq!(y[0], 7.0);
    }
}
