//! Engine configuration.

use crate::error::PcpmError;
use crate::format::BinFormatKind;
use crate::kernel::KernelKind;

/// Size of one PageRank / update value in bytes (the paper uses 4-byte
/// values and indices throughout, §5.1).
pub const VALUE_BYTES: usize = 4;

/// Default partition footprint: 256 KB of vertex values, the empirically
/// optimal point found in the paper's design-space exploration (§5.3.2,
/// Fig. 13–14) for a 256 KB private L2.
pub const DEFAULT_PARTITION_BYTES: usize = 256 * 1024;

/// Configuration for the PCPM engine and the PageRank driver.
///
/// # Examples
///
/// ```
/// use pcpm_core::PcpmConfig;
///
/// let cfg = PcpmConfig::default().with_partition_bytes(64 * 1024);
/// assert_eq!(cfg.partition_nodes(), 16 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcpmConfig {
    /// Bytes of vertex values a partition may occupy; divided by
    /// [`VALUE_BYTES`] this gives the partition size `q` in nodes.
    pub partition_bytes: usize,
    /// Damping factor `d` of the PageRank recurrence (default 0.85).
    pub damping: f64,
    /// Number of PageRank iterations (the paper runs 20).
    pub iterations: usize,
    /// Optional early-exit tolerance on the L1 delta between successive
    /// PageRank vectors; `None` always runs all `iterations`.
    pub tolerance: Option<f64>,
    /// Redistribute the rank mass of dangling nodes uniformly. The paper's
    /// kernels drop it (mass decays); keep `false` to match.
    pub redistribute_dangling: bool,
    /// Physical destination-ID encoding of the PCPM bins: wide 32-bit
    /// global IDs (the paper's §3.2 layout), compact 16-bit
    /// partition-local IDs (§6; requires `partition_nodes() <= 2^15`),
    /// or delta-encoded varints (`--format delta`).
    pub bin_format: BinFormatKind,
    /// Thread count for the engine-owned worker pool (prepare, every
    /// step and incremental repair run on it); `None` uses the ambient
    /// global pool. Engine backends produce bit-identical results for
    /// any value (see the rayon shim's determinism contract); the one
    /// exception is the atomic-accumulation `push_pagerank` baseline
    /// driver in `pcpm-baselines`.
    pub threads: Option<usize>,
    /// Gather/decode kernel variant (`--kernel`). A runtime knob, not a
    /// layout property: it never affects bins on disk or in snapshots,
    /// and every variant produces bit-identical results.
    /// [`KernelKind::Auto`] (the default) resolves at pipeline build
    /// via the memsim-grounded model in [`crate::kernel::resolve_auto`].
    pub kernel: KernelKind,
}

impl Default for PcpmConfig {
    fn default() -> Self {
        Self {
            partition_bytes: DEFAULT_PARTITION_BYTES,
            damping: 0.85,
            iterations: 20,
            tolerance: None,
            redistribute_dangling: false,
            bin_format: BinFormatKind::Wide,
            threads: None,
            kernel: KernelKind::Auto,
        }
    }
}

impl PcpmConfig {
    /// Partition size `q` in nodes.
    pub fn partition_nodes(&self) -> u32 {
        (self.partition_bytes / VALUE_BYTES).max(1) as u32
    }

    /// Returns a copy with a different partition byte budget.
    pub fn with_partition_bytes(mut self, bytes: usize) -> Self {
        self.partition_bytes = bytes;
        self
    }

    /// Returns a copy with a different iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Returns a copy with a convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = Some(tol);
        self
    }

    /// Returns a copy with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Returns a copy with a different bin format.
    pub fn with_bin_format(mut self, format: BinFormatKind) -> Self {
        self.bin_format = format;
        self
    }

    /// Returns a copy with a different gather/decode kernel variant.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Returns a copy with compact 16-bit destination bins enabled
    /// (shorthand for `with_bin_format(BinFormatKind::Compact)`).
    pub fn with_compact_bins(mut self) -> Self {
        self.bin_format = BinFormatKind::Compact;
        self
    }

    /// Validates field ranges.
    pub fn validate(&self) -> Result<(), PcpmError> {
        if self.partition_bytes < VALUE_BYTES {
            return Err(PcpmError::PartitionTooSmall);
        }
        if !(0.0..=1.0).contains(&self.damping) {
            return Err(PcpmError::BadConfig("damping must be in [0, 1]"));
        }
        if let Some(t) = self.tolerance {
            // NaN must be rejected too, hence the explicit finite check.
            if !t.is_finite() || t <= 0.0 {
                return Err(PcpmError::BadConfig("tolerance must be positive"));
            }
        }
        if self.threads == Some(0) {
            return Err(PcpmError::BadConfig("threads must be at least 1"));
        }
        if self.bin_format == BinFormatKind::Compact
            && self.partition_nodes() > crate::compact::MAX_COMPACT_PARTITION
        {
            return Err(PcpmError::BadConfig(
                "compact bins require partitions of at most 2^15 nodes (128 KB of values)",
            ));
        }
        Ok(())
    }
}

/// Returns the process-wide shared worker pool for `threads`, building
/// it on first request and reusing it for every later one.
///
/// This is the fix for per-call pool churn: [`run_with_threads`] used to
/// build and tear down a brand-new pool (spawning and joining `threads`
/// OS threads) on **every** invocation — once per baseline-driver run,
/// once per prepare — which is exactly wrong for a serving deployment.
/// Pools returned here live for the process; workers for a given thread
/// count are spawned once, ever.
///
/// The unified [`Engine`](crate::Engine) is unaffected: it builds its
/// own engine-owned pool at construction and reuses it for prepare and
/// every step (one pool per engine, dropped with the engine).
pub fn shared_pool(threads: usize) -> std::sync::Arc<rayon::ThreadPool> {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let mut pools = POOLS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("pool cache lock");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build rayon pool"),
        )
    }))
}

/// Runs `f` on the shared pool for the configured thread count, or
/// inline on the ambient pool when unset. Shared by every kernel in the
/// workspace so thread-count sweeps treat all methods identically; the
/// pool is memoized per thread count (see [`shared_pool`]), so repeated
/// calls — the five baseline drivers, repeated prepares — never respawn
/// workers.
pub fn run_with_threads<R: Send>(threads: Option<usize>, f: impl FnOnce() -> R + Send) -> R {
    match threads {
        Some(t) => shared_pool(t).install(f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = PcpmConfig::default();
        assert_eq!(c.partition_bytes, 256 * 1024);
        assert_eq!(c.partition_nodes(), 65_536);
        assert_eq!(c.iterations, 20);
        assert!((c.damping - 0.85).abs() < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert_eq!(
            PcpmConfig::default().with_partition_bytes(0).validate(),
            Err(PcpmError::PartitionTooSmall)
        );
        let c = PcpmConfig {
            damping: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PcpmConfig {
            tolerance: Some(-1.0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PcpmConfig {
            tolerance: Some(f64::NAN),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PcpmConfig {
            threads: Some(0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = PcpmConfig::default()
            .with_partition_bytes(1024)
            .with_iterations(5)
            .with_tolerance(1e-9)
            .with_threads(2)
            .with_kernel(KernelKind::Unrolled);
        assert_eq!(c.partition_nodes(), 256);
        assert_eq!(c.iterations, 5);
        assert_eq!(c.tolerance, Some(1e-9));
        assert_eq!(c.threads, Some(2));
        assert_eq!(c.kernel, KernelKind::Unrolled);
    }

    #[test]
    fn run_with_threads_executes() {
        assert_eq!(run_with_threads(Some(2), || 41 + 1), 42);
        assert_eq!(run_with_threads(None, || 7), 7);
    }

    #[test]
    fn shared_pool_is_built_once_per_thread_count() {
        // Pool identity proves build-once/serve-many without racing on
        // the process-global spawn counters (other tests spawn their
        // own engine pools concurrently).
        let a = shared_pool(3);
        let b = shared_pool(3);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same pool on every call");
        let c = shared_pool(2);
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "per-thread-count pools");
        assert_eq!(a.current_num_threads(), 3);
        // And the memoized pool actually runs work.
        assert_eq!(run_with_threads(Some(3), || 6 * 7), 42);
    }
}
