//! Delta-packed destination bins: per-partition delta-encoded varints.
//!
//! The paper's PNG layout already compresses the *update* stream (one
//! update per compressed edge); the destination-ID stream stays at four
//! bytes per raw edge in the wide format and two in the compact one. This
//! module pushes further along the same axis: within a `(source
//! partition, destination bin)` segment, destinations are stored as a
//! byte-packed varint stream —
//!
//! - the **first** destination of a message is its partition-local offset
//!   (`dst − p·q`, always `< q`), tagged with the demarcation flag in the
//!   varint's least-significant bit (the MSB flag of §3.2, relocated so
//!   the payload stays dense);
//! - every **subsequent** destination is the gap to its predecessor
//!   (`dst − prev`; CSR neighbor lists are sorted, so gaps are ≥ 0 —
//!   `Csr::from_edges` keeps duplicate edges, which encode as a zero
//!   gap — and the common small gaps encode as one byte).
//!
//! On power-law graphs this lands at ~1–2 bytes per edge — below even the
//! compact format, with no partition-size restriction — shrinking the
//! `m·di` destID-scan term that dominates PCPM's communication model
//! (Eq. 5). The cost is a data-dependent decode in the gather (no longer
//! a pure pointer walk); the `formats` bench suite measures the trade.
//!
//! [`DeltaPackedBins`] keeps its own byte-offset geometry (`byte_region`
//! per source partition, `seg_off` per destination bin) because segment
//! lengths are data-dependent; the update stream and the optional weight
//! stream reuse the shared layouts, so scatter and weighted gather are
//! unchanged.

use crate::algebra::Algebra;
use crate::format::{build_weight_stream, repair_weight_stream, BinScalar, DestCursor};
use crate::kernel::{prefetch, KernelKind};
use crate::partition::split_by_lens;
use crate::png::{for_each_run, EdgeView, Png};
use rayon::prelude::*;

/// Message bins with a delta-encoded varint destination stream.
///
/// Construct through [`DeltaFormat`](crate::format::DeltaFormat) (or the
/// engine builder's `.bin_format(BinFormatKind::Delta)`); the fields are
/// internal because the byte geometry must stay consistent with the PNG.
#[derive(Clone, Debug)]
pub struct DeltaPackedBins<T = f32> {
    /// Update values, source-partition-major (`|E'|` entries) — the
    /// same layout as every other format.
    pub updates: Vec<T>,
    /// The varint-encoded destination stream, source-partition-major.
    dest_bytes: Vec<u8>,
    /// `k_src + 1` byte offsets of each source partition's region.
    byte_region: Vec<u64>,
    /// Per source partition: `k_dst + 1` byte offsets local to its
    /// region (the delta analogue of `BipartitePart::did_off`).
    seg_off: Vec<Vec<u64>>,
    /// Optional edge weights in raw-edge bin order (the wide layout).
    pub weights: Option<Vec<f32>>,
}

/// Appends `v` as a LEB128 varint (round-trip tests only; the encoder
/// proper writes in place through [`put_varint`]).
#[cfg(test)]
fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Per-window decode plan for the batched decoder, keyed by the 8
/// continuation (MSB) bits of an 8-byte window. The plan tells the hot
/// loop, without inspecting any payload byte, where each 1–2-byte
/// varint starts, how long it is, how many bytes the window consumes,
/// and whether a rare >= 3-byte varint interrupts the run.
#[derive(Clone, Copy)]
struct WordPlan {
    /// Varints fully contained in the window as 1–2-byte encodings.
    count: u8,
    /// Bytes those varints consume.
    consumed: u8,
    /// Byte offset of the `k`-th varint, packed as nibble `k` (0 for
    /// unused slots, whose extracted garbage is overwritten or
    /// truncated away). One register read per slot instead of a table
    /// byte load keeps the extraction loop free of memory traffic.
    offs: u64,
    /// The byte at `consumed` starts a >= 3-byte varint (two set
    /// continuation bits in a row) — fall back to [`read_varint`].
    long: bool,
}

const fn build_word_plans() -> [WordPlan; 256] {
    let mut lut = [WordPlan {
        count: 0,
        consumed: 0,
        offs: 0,
        long: false,
    }; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut pos = 0usize;
        let mut k = 0usize;
        while pos < 8 {
            if (m >> pos) & 1 == 0 {
                lut[m].offs |= (pos as u64) << (4 * k);
                pos += 1;
                k += 1;
            } else if pos + 1 >= 8 {
                // A 2-byte varint would cross the window edge: leave it
                // for the next (re-based) window or the tail loop.
                break;
            } else if (m >> (pos + 1)) & 1 == 1 {
                lut[m].long = true;
                break;
            } else {
                lut[m].offs |= (pos as u64) << (4 * k);
                pos += 2;
                k += 1;
            }
        }
        lut[m].count = k as u8;
        lut[m].consumed = pos as u8;
        m += 1;
    }
    lut
}

static WORD_PLANS: [WordPlan; 256] = build_word_plans();

/// Compacts the 8 byte-MSBs of `w` into one plan-table index
/// (bit `i` = continuation bit of byte `i`): mask the MSBs, then one
/// carry-free multiply sums the shifted copies so every MSB lands in
/// the top byte — three ops instead of an eight-way shift/or tree.
#[inline]
fn continuation_mask(w: u64) -> usize {
    ((w & 0x8080_8080_8080_8080).wrapping_mul(0x0002_0408_1020_4081) >> 56) as usize
}

/// Batched segment decoder: decodes **every** varint in `bytes` into
/// `out` (exactly the decoded sequence on return), separating decode
/// from apply so the apply loop runs branch-free over plain `u64`s.
///
/// The hot loop pulls one unaligned little-endian `u64` per iteration,
/// looks the window's continuation bits up in [`WORD_PLANS`], and
/// extracts up to eight 1–2-byte varints — the overwhelmingly common
/// case for partition-local deltas — as independent mask arithmetic:
/// no data-dependent branch per byte, no serial position chain from one
/// varint to the next, and one bounds check per window instead of per
/// byte. All 8 slots are extracted and stored unconditionally (garbage
/// slots land past `count` and are overwritten by the next window or
/// truncated), so the store loop is branch-free too. Longer varints
/// fall through to [`read_varint`], which stays the asserted-identical
/// fallback (`batched_decode_matches_read_varint` below fuzzes the
/// equivalence across every varint length; `tests/kernel_agreement.rs`
/// and `tests/parallel_determinism.rs` assert whole-kernel bit-identity
/// under `PCPM_TEST_KERNELS`).
#[inline]
pub(crate) fn decode_segment_into(bytes: &[u8], out: &mut Vec<u64>) {
    let len = bytes.len();
    // 8 slots of slack for the unconditional window stores; stale
    // contents past the final truncate are never observable.
    if out.len() < len + 8 {
        out.resize(len + 8, 0);
    }
    let mut pos = 0usize;
    let mut n = 0usize;
    while pos + 8 <= len {
        let w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        let plan = &WORD_PLANS[continuation_mask(w)];
        let offs = plan.offs;
        let dst = &mut out[n..n + 8];
        for (k, slot) in dst.iter_mut().enumerate() {
            // Each slot re-derives "am I a 2-byte varint?" from its own
            // continuation bit (bit 7 of the shifted window) instead of
            // the plan's `twos` bits: every operand then lives in the
            // same lane, so the whole extraction vectorizes cleanly.
            // The second byte of a genuine 2-byte varint is terminal
            // (MSB clear), so `(x >> 1) & 0x3f80` is exactly its 7
            // payload bits shifted into place.
            let x = w >> (8 * ((offs >> (4 * k)) & 0xf) as u32);
            let m = (((x << 56) as i64) >> 63) as u64;
            *slot = (x & 0x7f) | ((x >> 1) & 0x3f80 & m);
        }
        n += plan.count as usize;
        pos += plan.consumed as usize;
        if plan.long {
            // >= 3 encoded bytes: rare (gaps < 2^14 fit in two), and
            // this branch predicts well precisely because it is rare.
            out[n] = read_varint(bytes, &mut pos);
            n += 1;
        }
    }
    // Tail: fewer than 8 bytes left, decode them one varint at a time.
    while pos < len {
        out[n] = read_varint(bytes, &mut pos);
        n += 1;
    }
    out.truncate(n);
}

/// Encoded size of `v` as a LEB128 varint.
#[inline]
fn varint_len(v: u64) -> u64 {
    ((64 - v.leading_zeros() as u64).max(1)).div_ceil(7)
}

/// Writes `v` at `buf[*pos..]`, advancing `*pos`.
#[inline]
fn put_varint(buf: &mut [u8], pos: &mut usize, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[*pos] = byte;
            *pos += 1;
            break;
        }
        buf[*pos] = byte | 0x80;
        *pos += 1;
    }
}

/// Encodes the destination stream of source partition `s`: returns the
/// byte buffer plus its `k_dst + 1` local segment offsets. Two passes —
/// byte-count per destination bin, then fill through per-bin cursors
/// into one flat buffer — mirroring the fixed-width skeleton's cursor
/// scheme (no per-bin allocations, no re-copy).
fn encode_partition(view: EdgeView<'_>, png: &Png, s: u32) -> (Vec<u8>, Vec<u64>) {
    let k = png.dst_parts().num_partitions() as usize;
    let q = png.dst_parts().partition_size();
    let mut seg_len = vec![0u64; k];
    for_each_run(
        view,
        png.src_parts(),
        png.dst_parts(),
        s,
        |_v, p, run, _| {
            let mut len = varint_len(u64::from(run[0] - p * q) << 1 | 1);
            for pair in run.windows(2) {
                len += varint_len(u64::from(pair[1] - pair[0]) << 1);
            }
            seg_len[p as usize] += len;
        },
    );
    let mut seg_off = Vec::with_capacity(k + 1);
    seg_off.push(0u64);
    for &len in &seg_len {
        seg_off.push(seg_off.last().unwrap() + len);
    }
    let mut bytes = vec![0u8; *seg_off.last().unwrap() as usize];
    let mut cursor: Vec<usize> = seg_off[..k].iter().map(|&o| o as usize).collect();
    for_each_run(
        view,
        png.src_parts(),
        png.dst_parts(),
        s,
        |_v, p, run, _| {
            let pos = &mut cursor[p as usize];
            let p_base = p * q;
            put_varint(&mut bytes, pos, (u64::from(run[0] - p_base) << 1) | 1);
            for pair in run.windows(2) {
                put_varint(&mut bytes, pos, u64::from(pair[1] - pair[0]) << 1);
            }
        },
    );
    (bytes, seg_off)
}

impl<T: BinScalar> DeltaPackedBins<T> {
    /// Builds the delta bins for `png`, in parallel over source
    /// partitions (the [`BinFormat::build`](crate::format::BinFormat)
    /// entry point).
    pub(crate) fn build(view: EdgeView<'_>, png: &Png, edge_weights: Option<&[f32]>) -> Self {
        let updates = vec![T::default(); png.num_compressed_edges() as usize];
        let k_src = png.src_parts().num_partitions();
        let parts: Vec<(Vec<u8>, Vec<u64>)> = (0..k_src)
            .into_par_iter()
            .map(|s| encode_partition(view, png, s))
            .collect();
        let mut byte_region = Vec::with_capacity(parts.len() + 1);
        byte_region.push(0u64);
        for (bytes, _) in &parts {
            byte_region.push(byte_region.last().unwrap() + bytes.len() as u64);
        }
        let mut dest_bytes = Vec::with_capacity(*byte_region.last().unwrap() as usize);
        let mut seg_off = Vec::with_capacity(parts.len());
        for (bytes, offs) in parts {
            dest_bytes.extend_from_slice(&bytes);
            seg_off.push(offs);
        }
        let weights = edge_weights.map(|ew| build_weight_stream(view, png, ew));
        Self {
            updates,
            dest_bytes,
            byte_region,
            seg_off,
            weights,
        }
    }

    /// Incremental rebuild after a [`Png::repair`]: touched source
    /// partitions are re-encoded, untouched byte regions block-copied
    /// (their segment offsets are unchanged — only the region base
    /// moves). `old_did_region` positions the weight-stream copy.
    pub(crate) fn repair(
        &mut self,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        edge_weights: Option<&[f32]>,
    ) {
        self.updates = vec![T::default(); png.num_compressed_edges() as usize];
        let k_src = png.src_parts().num_partitions() as usize;
        let rebuilt: Vec<Option<(Vec<u8>, Vec<u64>)>> = (0..k_src)
            .into_par_iter()
            .map(|s| touched[s].then(|| encode_partition(view, png, s as u32)))
            .collect();
        let mut byte_region = Vec::with_capacity(k_src + 1);
        byte_region.push(0u64);
        for (s, part) in rebuilt.iter().enumerate() {
            let len = match part {
                Some((bytes, _)) => bytes.len() as u64,
                None => self.byte_region[s + 1] - self.byte_region[s],
            };
            byte_region.push(byte_region.last().unwrap() + len);
        }
        let mut dest_bytes = Vec::with_capacity(*byte_region.last().unwrap() as usize);
        for (s, part) in rebuilt.iter().enumerate() {
            match part {
                Some((bytes, _)) => dest_bytes.extend_from_slice(bytes),
                None => dest_bytes.extend_from_slice(
                    &self.dest_bytes
                        [self.byte_region[s] as usize..self.byte_region[s + 1] as usize],
                ),
            }
        }
        for (s, part) in rebuilt.into_iter().enumerate() {
            if let Some((_, offs)) = part {
                self.seg_off[s] = offs;
            }
        }
        self.byte_region = byte_region;
        self.dest_bytes = dest_bytes;
        let old_w = self.weights.take();
        self.weights = edge_weights.map(|ew| {
            let old = old_w.as_deref().expect("weighted bins keep weights");
            repair_weight_stream(old, view, png, old_did_region, touched, ew)
        });
    }

    /// Clones the serializable state (everything except the scratch
    /// update stream) for the engine-snapshot writer.
    pub(crate) fn export_state(&self) -> crate::snapshot::BinState {
        crate::snapshot::BinState::delta(
            self.dest_bytes.clone(),
            self.byte_region.clone(),
            self.seg_off.clone(),
            self.weights.clone(),
        )
    }

    /// Reassembles bins from deserialized state; the update stream is
    /// scratch, so it is freshly allocated at the identity-sized length.
    pub(crate) fn from_loaded(
        updates_len: usize,
        dest_bytes: Vec<u8>,
        byte_region: Vec<u64>,
        seg_off: Vec<Vec<u64>>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        Self {
            updates: vec![T::default(); updates_len],
            dest_bytes,
            byte_region,
            seg_off,
            weights,
        }
    }

    /// Heap bytes held by the bins (updates + byte stream + offsets +
    /// weights).
    pub fn memory_bytes(&self) -> u64 {
        let offsets =
            (self.byte_region.len() + self.seg_off.iter().map(Vec::len).sum::<usize>()) * 8;
        (self.updates.len() * std::mem::size_of::<T>()
            + self.dest_bytes.len()
            + offsets
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }

    /// Bytes of the varint destination stream alone.
    pub fn dest_stream_bytes(&self) -> u64 {
        self.dest_bytes.len() as u64
    }

    /// The raw byte segment of `(s, p)`.
    #[inline]
    fn segment(&self, s: usize, p: usize) -> &[u8] {
        let base = self.byte_region[s] as usize;
        let lo = base + self.seg_off[s][p] as usize;
        let hi = base + self.seg_off[s][p + 1] as usize;
        &self.dest_bytes[lo..hi]
    }

    /// A [`DestCursor`] over segment `(s, p)`.
    pub(crate) fn cursor(&self, png: &Png, s: u32, p: u32) -> DeltaCursor<'_> {
        DeltaCursor {
            bytes: self.segment(s as usize, p as usize),
            pos: 0,
            p_base: p * png.dst_parts().partition_size(),
            prev: 0,
        }
    }
}

/// Streaming varint decoder over one `(s, p)` segment.
pub struct DeltaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    p_base: u32,
    prev: u32,
}

impl DestCursor for DeltaCursor<'_> {
    #[inline]
    fn next_entry(&mut self) -> Option<(u32, bool)> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let v = read_varint(self.bytes, &mut self.pos);
        let first = v & 1 == 1;
        if first {
            self.prev = self.p_base + (v >> 1) as u32;
        } else {
            self.prev += (v >> 1) as u32;
        }
        Some((self.prev, first))
    }
}

/// Branch-avoiding gather over delta bins for an arbitrary
/// [`Algebra`]: the same segment walk as the wide/compact gathers, with
/// the pointer-arithmetic MSB trick carried in the varint's LSB. Decodes
/// entries in identical order, so output is bit-identical to the wide
/// format for any algebra.
///
/// `kernel` picks the decode strategy. [`KernelKind::Unrolled`] decodes
/// each segment into a per-partition scratch buffer in one pass
/// ([`decode_segment_into`]), prefetches the next segment, and applies
/// the decoded entries 4-at-a-time; any other value runs the original
/// scalar decode-in-loop. Both apply entries in exactly the same order,
/// so f32 output is bit-identical across kernels.
pub fn gather_delta_algebra<A: Algebra>(
    png: &Png,
    bins: &DeltaPackedBins<A::T>,
    y: &mut [A::T],
    kernel: KernelKind,
) {
    assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    let lens = png.dst_parts().lens();
    let slices = split_by_lens(y, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    slices.into_par_iter().enumerate().for_each(|(p, ys)| {
        ys.fill(A::identity());
        // One scratch buffer per destination partition, reused across
        // every source partition's segment (capacity converges to the
        // largest segment; cleared, never reallocated per segment).
        let mut scratch: Vec<u64> = Vec::new();
        for s in 0..k_src {
            let su = s as usize;
            let part = png.part(s);
            let ubase = png.upd_region()[su] as usize;
            let ulo = ubase + part.upd_off[p] as usize;
            let uhi = ubase + part.upd_off[p + 1] as usize;
            let us = &bins.updates[ulo..uhi];
            let bytes = bins.segment(su, p);
            if unrolled && s + 1 < k_src {
                prefetch(bins.segment(su + 1, p));
            }
            match &bins.weights {
                None if unrolled => {
                    decode_segment_into(bytes, &mut scratch);
                    let mut up = usize::MAX;
                    let mut local = 0usize;
                    macro_rules! step {
                        ($v:expr) => {{
                            let v = $v;
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            let slot = &mut ys[local];
                            *slot = A::combine(*slot, A::extend(us[up]));
                        }};
                    }
                    let mut chunks = scratch.chunks_exact(4);
                    for c in &mut chunks {
                        step!(c[0]);
                        step!(c[1]);
                        step!(c[2]);
                        step!(c[3]);
                    }
                    for &v in chunks.remainder() {
                        step!(v);
                    }
                }
                None => {
                    let mut up = usize::MAX;
                    let mut local = 0usize;
                    let mut pos = 0usize;
                    while pos < bytes.len() {
                        let v = read_varint(bytes, &mut pos);
                        // LSB = message start: advances the update
                        // pointer and resets the local offset; otherwise
                        // the payload is the gap to the previous dest.
                        up = up.wrapping_add((v & 1) as usize);
                        let d = (v >> 1) as usize;
                        local = if v & 1 == 1 { d } else { local + d };
                        let slot = &mut ys[local];
                        *slot = A::combine(*slot, A::extend(us[up]));
                    }
                }
                Some(w) if unrolled => {
                    let dbase = png.did_region()[su] as usize;
                    let dlo = dbase + part.did_off[p] as usize;
                    let dhi = dbase + part.did_off[p + 1] as usize;
                    let ws = &w[dlo..dhi];
                    decode_segment_into(bytes, &mut scratch);
                    let mut up = usize::MAX;
                    let mut local = 0usize;
                    let mut edge = 0usize;
                    macro_rules! step {
                        ($v:expr) => {{
                            let v = $v;
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            let slot = &mut ys[local];
                            *slot = A::combine(*slot, A::extend_weighted(ws[edge], us[up]));
                            edge += 1;
                        }};
                    }
                    let mut chunks = scratch.chunks_exact(4);
                    for c in &mut chunks {
                        step!(c[0]);
                        step!(c[1]);
                        step!(c[2]);
                        step!(c[3]);
                    }
                    for &v in chunks.remainder() {
                        step!(v);
                    }
                }
                Some(w) => {
                    let dbase = png.did_region()[su] as usize;
                    let dlo = dbase + part.did_off[p] as usize;
                    let dhi = dbase + part.did_off[p + 1] as usize;
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    let mut local = 0usize;
                    let mut pos = 0usize;
                    let mut edge = 0usize;
                    while pos < bytes.len() {
                        let v = read_varint(bytes, &mut pos);
                        up = up.wrapping_add((v & 1) as usize);
                        let d = (v >> 1) as usize;
                        local = if v & 1 == 1 { d } else { local + d };
                        let slot = &mut ys[local];
                        *slot = A::combine(*slot, A::extend_weighted(ws[edge], us[up]));
                        edge += 1;
                    }
                }
            }
        }
    });
}

/// Multi-query gather over delta bins: each varint is decoded **once**
/// per batch and the resulting `(update pointer, local offset)` pair is
/// applied to every query's accumulator — the whole point of the SpMM
/// path for this format, since the per-edge LEB128 decode is its gather
/// cost. `updates[q]` must share the `png_scatter` layout; per-query
/// output is bit-identical to [`gather_delta_algebra`].
pub fn gather_delta_algebra_many<A: Algebra>(
    png: &Png,
    bins: &DeltaPackedBins<A::T>,
    updates: &[&[A::T]],
    ys: &mut [&mut [A::T]],
    kernel: KernelKind,
) {
    assert_eq!(updates.len(), ys.len(), "one update stream per output");
    for y in ys.iter() {
        assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    }
    let lens = png.dst_parts().lens();
    let per_part = crate::gather::split_queries_by_parts(ys, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    per_part
        .into_par_iter()
        .enumerate()
        .for_each(|(p, mut ys_q)| {
            for ys in ys_q.iter_mut() {
                ys.fill(A::identity());
            }
            let mut scratch: Vec<u64> = Vec::new();
            for s in 0..k_src {
                let su = s as usize;
                let part = png.part(s);
                let ubase = png.upd_region()[su] as usize;
                let ulo = ubase + part.upd_off[p] as usize;
                let bytes = bins.segment(su, p);
                if unrolled && s + 1 < k_src {
                    prefetch(bins.segment(su + 1, p));
                }
                match &bins.weights {
                    None if unrolled => {
                        decode_segment_into(bytes, &mut scratch);
                        let mut up = usize::MAX;
                        let mut local = 0usize;
                        for &v in scratch.iter() {
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(*slot, A::extend(updates[q][ulo + up]));
                            }
                        }
                    }
                    None => {
                        let mut up = usize::MAX;
                        let mut local = 0usize;
                        let mut pos = 0usize;
                        while pos < bytes.len() {
                            let v = read_varint(bytes, &mut pos);
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(*slot, A::extend(updates[q][ulo + up]));
                            }
                        }
                    }
                    Some(w) if unrolled => {
                        let dbase = png.did_region()[su] as usize;
                        let dlo = dbase + part.did_off[p] as usize;
                        let dhi = dbase + part.did_off[p + 1] as usize;
                        let ws = &w[dlo..dhi];
                        decode_segment_into(bytes, &mut scratch);
                        let mut up = usize::MAX;
                        let mut local = 0usize;
                        for (edge, &v) in scratch.iter().enumerate() {
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(
                                    *slot,
                                    A::extend_weighted(ws[edge], updates[q][ulo + up]),
                                );
                            }
                        }
                    }
                    Some(w) => {
                        let dbase = png.did_region()[su] as usize;
                        let dlo = dbase + part.did_off[p] as usize;
                        let dhi = dbase + part.did_off[p + 1] as usize;
                        let ws = &w[dlo..dhi];
                        let mut up = usize::MAX;
                        let mut local = 0usize;
                        let mut pos = 0usize;
                        let mut edge = 0usize;
                        while pos < bytes.len() {
                            let v = read_varint(bytes, &mut pos);
                            up = up.wrapping_add((v & 1) as usize);
                            let d = (v >> 1) as usize;
                            local = if v & 1 == 1 { d } else { local + d };
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(
                                    *slot,
                                    A::extend_weighted(ws[edge], updates[q][ulo + up]),
                                );
                            }
                            edge += 1;
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{BinFormat, DeltaFormat, WideFormat};
    use crate::partition::Partitioner;
    use crate::scatter::png_scatter;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};
    use pcpm_graph::{Csr, EdgeWeights};

    fn setup(g: &Csr, q: u32) -> Png {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts)
    }

    #[test]
    fn varints_round_trip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX) << 1,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn delta_gather_equals_wide_gather() {
        let g = rmat(&RmatConfig::graph500(9, 8, 61)).unwrap();
        for q in [1u32, 16, 100, 512, 100_000] {
            let png = setup(&g, q);
            let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).sin()).collect();
            let mut wide = WideFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
            let mut delta = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
            png_scatter(&png, &x, &mut wide.updates);
            png_scatter(&png, &x, &mut delta.updates);
            let n = g.num_nodes() as usize;
            let (mut yw, mut yd) = (vec![0.0f32; n], vec![0.0f32; n]);
            crate::gather::gather_branch_avoiding(&png, &wide, &mut yw);
            for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
                gather_delta_algebra::<crate::algebra::PlusF32>(&png, &delta, &mut yd, kernel);
                assert_eq!(yw, yd, "q={q} kernel={kernel}");
            }
        }
    }

    #[test]
    fn batched_decode_matches_read_varint() {
        // Deterministic LCG over value magnitudes that cross every
        // varint length boundary, including max-length (10-byte) ones.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for trial in 0..200 {
            let len = (next() % 64) as usize;
            let values: Vec<u64> = (0..len)
                .map(|_| {
                    let bits = next() % 65; // 0..=64 significant bits
                    if bits == 0 {
                        0
                    } else {
                        next() & (u64::MAX >> (64 - bits))
                    }
                })
                .collect();
            let mut buf = Vec::new();
            for &v in &values {
                write_varint(&mut buf, v);
            }
            let mut batched = Vec::new();
            decode_segment_into(&buf, &mut batched);
            let mut scalar = Vec::new();
            let mut pos = 0usize;
            while pos < buf.len() {
                scalar.push(read_varint(&buf, &mut pos));
            }
            assert_eq!(batched, values, "trial {trial}");
            assert_eq!(batched, scalar, "trial {trial}");
        }
    }

    #[test]
    fn batched_decode_boundary_values() {
        // Every length boundary of the LEB128 encoding, in one stream.
        let values: Vec<u64> = (0..10)
            .flat_map(|b| {
                let lo = if b == 0 { 0 } else { 1u64 << (7 * b) };
                let hi = match 1u64.checked_shl(7 * (b + 1)) {
                    Some(x) => x - 1,
                    None => u64::MAX,
                };
                [lo, lo + 1, hi]
            })
            .chain([u64::MAX])
            .collect();
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut out = Vec::new();
        decode_segment_into(&buf, &mut out);
        assert_eq!(out, values);
        // Reuse must clear previous contents.
        decode_segment_into(&[5u8], &mut out);
        assert_eq!(out, vec![5]);
        decode_segment_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn delta_weighted_gather_equals_wide() {
        let g = erdos_renyi(200, 1500, 3).unwrap();
        let w = EdgeWeights::random(&g, 8);
        let png = setup(&g, 64);
        let x: Vec<f32> = (0..200).map(|v| v as f32 * 0.25).collect();
        let mut wide = WideFormat::build::<f32>(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        let mut delta = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut delta.updates);
        let (mut yw, mut yd) = (vec![0.0f32; 200], vec![0.0f32; 200]);
        crate::gather::gather_branch_avoiding(&png, &wide, &mut yw);
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            gather_delta_algebra::<crate::algebra::PlusF32>(&png, &delta, &mut yd, kernel);
            assert_eq!(yw, yd, "kernel={kernel}");
        }
    }

    #[test]
    fn delta_integer_algebra_matches_wide() {
        use crate::algebra::MinLabel;
        let g = rmat(&RmatConfig::graph500(9, 6, 23)).unwrap();
        let png = setup(&g, 128);
        let mut wide = WideFormat::build::<u32>(EdgeView::from_csr(&g), &png, None);
        let mut delta = DeltaFormat::build::<u32>(EdgeView::from_csr(&g), &png, None);
        let x: Vec<u32> = (0..g.num_nodes()).map(|v| v % 11).collect();
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut delta.updates);
        let n = g.num_nodes() as usize;
        let (mut yw, mut yd) = (vec![0u32; n], vec![0u32; n]);
        crate::gather::gather_algebra::<MinLabel>(&png, &wide, &mut yw);
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            gather_delta_algebra::<MinLabel>(&png, &delta, &mut yd, kernel);
            assert_eq!(yw, yd, "kernel={kernel}");
        }
    }

    #[test]
    fn dest_stream_beats_wide_and_memory_accounts() {
        let g = rmat(&RmatConfig::graph500(10, 8, 5)).unwrap();
        let png = setup(&g, 512);
        let wide = WideFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        let delta = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        assert!(delta.dest_stream_bytes() < wide.dest_ids.len() as u64 * 4 / 2);
        assert!(delta.memory_bytes() < wide.memory_bytes());
        assert!(delta.memory_bytes() > 0);
    }

    #[test]
    fn repair_equals_fresh_build() {
        let g = rmat(&RmatConfig::graph500(9, 8, 13)).unwrap();
        let q = 64u32;
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.retain(|&(s, _)| s != 1);
        edges.push((2, 500));
        edges.push((3 * q + 2, 17));
        edges.sort_unstable();
        edges.dedup();
        let g2 = Csr::from_edges(g.num_nodes(), &edges).unwrap();
        let mut png = setup(&g, q);
        let old_did_region = png.did_region().to_vec();
        let mut bins = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        let touched_list = [0u32, 3];
        png.repair(EdgeView::from_csr(&g2), &touched_list);
        let mut touched = vec![false; png.src_parts().num_partitions() as usize];
        for &s in &touched_list {
            touched[s as usize] = true;
        }
        bins.repair(
            EdgeView::from_csr(&g2),
            &png,
            &old_did_region,
            &touched,
            None,
        );
        let fresh = DeltaFormat::build::<f32>(EdgeView::from_csr(&g2), &png, None);
        assert_eq!(bins.dest_bytes, fresh.dest_bytes);
        assert_eq!(bins.byte_region, fresh.byte_region);
        assert_eq!(bins.seg_off, fresh.seg_off);
        assert_eq!(bins.updates.len(), fresh.updates.len());
    }

    #[test]
    fn duplicate_edges_round_trip() {
        // `Csr::from_edges` keeps duplicates; they must encode as a
        // zero gap, not underflow (regression: the encoder once stored
        // gap-1 and panicked on multigraphs).
        let g = Csr::from_edges(4, &[(0, 1), (0, 1), (0, 2), (2, 3), (2, 3)]).unwrap();
        let png = setup(&g, 2);
        let mut wide = WideFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        let mut delta = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        let x = vec![1.0f32, 2.0, 4.0, 8.0];
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut delta.updates);
        let (mut yw, mut yd) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        crate::gather::gather_branch_avoiding(&png, &wide, &mut yw);
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            gather_delta_algebra::<crate::algebra::PlusF32>(&png, &delta, &mut yd, kernel);
            assert_eq!(yw, yd, "kernel={kernel}");
            assert_eq!(yd[1], 2.0, "duplicate edge (0,1) counted twice");
            assert_eq!(yd[3], 8.0, "duplicate edge (2,3) counted twice");
        }
    }

    #[test]
    fn empty_graph_delta_bins() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let png = setup(&g, 4);
        let bins = DeltaFormat::build::<f32>(EdgeView::from_csr(&g), &png, None);
        assert_eq!(bins.dest_stream_bytes(), 0);
        let mut y: Vec<f32> = vec![];
        for kernel in [KernelKind::Scalar, KernelKind::Unrolled] {
            gather_delta_algebra::<crate::algebra::PlusF32>(&png, &bins, &mut y, kernel);
        }
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::partition::Partitioner;
    use pcpm_graph::gen::{rmat, RmatConfig};
    use std::time::Instant;

    fn best_of<F: FnMut() -> u64>(mut f: F, edges: u64) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            let reps = 60u64;
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / (reps * edges) as f64);
        }
        best
    }

    #[test]
    #[ignore]
    fn probe_decode_cost() {
        let g = rmat(&RmatConfig::graph500(12, 8, 42)).unwrap();
        for q in [256u32, 512, 1024, 2048] {
            let parts = Partitioner::new(g.num_nodes(), q).unwrap();
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            let bins = DeltaPackedBins::<f32>::build(EdgeView::from_csr(&g), &png, None);
            let k = png.src_parts().num_partitions() as usize;
            let edges: u64 = png.num_raw_edges();
            let total_bytes: usize = (0..k)
                .flat_map(|s| (0..k).map(move |p| (s, p)))
                .map(|(s, p)| bins.segment(s, p).len())
                .sum();
            let us = &bins.updates;
            let mut ys = vec![0.0f32; q as usize + 8];
            let mut scratch = Vec::new();

            let a = best_of(
                || {
                    for p in 0..k {
                        for s in 0..k {
                            let bytes = bins.segment(s, p);
                            let mut up = usize::MAX;
                            let mut local = 0usize;
                            let mut pos = 0usize;
                            while pos < bytes.len() {
                                let v = read_varint(bytes, &mut pos);
                                up = up.wrapping_add((v & 1) as usize);
                                let d = (v >> 1) as usize;
                                local = if v & 1 == 1 { d } else { local + d };
                                ys[local] += us[up];
                            }
                        }
                    }
                    ys[0] as u64
                },
                edges,
            );

            let b = best_of(
                || {
                    let mut sink = 0u64;
                    for p in 0..k {
                        for s in 0..k {
                            decode_segment_into(bins.segment(s, p), &mut scratch);
                            sink = sink.wrapping_add(scratch.len() as u64);
                        }
                    }
                    sink
                },
                edges,
            );

            let c = best_of(
                || {
                    for p in 0..k {
                        for s in 0..k {
                            decode_segment_into(bins.segment(s, p), &mut scratch);
                            let mut up = usize::MAX;
                            let mut local = 0usize;
                            for &v in scratch.iter() {
                                up = up.wrapping_add((v & 1) as usize);
                                let d = (v >> 1) as usize;
                                local = if v & 1 == 1 { d } else { local + d };
                                ys[local] += us[up];
                            }
                        }
                    }
                    ys[0] as u64
                },
                edges,
            );

            println!(
                "q={q:5} parts={k:3} bytes/edge={:.3} scalar={a:.3} decode={b:.3} \
                 batched={c:.3} ratio={:.2}x",
                total_bytes as f64 / edges as f64,
                a / c
            );
        }
    }
}
