//! The PCPM pipeline: a reusable scatter/gather dataplane over a fixed
//! structure, generic over the gather [`Algebra`] and the physical
//! [`BinFormat`].
//!
//! [`FormatPipeline<A, F>`] is the statically-typed dataplane: PNG layout
//! plus `F`'s bin storage, with one shared implementation of build,
//! incremental repair and the scatter→gather round — the skeleton that
//! used to be copy-pasted per encoding. [`PcpmPipeline<A>`] wraps it in a
//! runtime-selected enum (one variant per [`BinFormatKind`]) for callers
//! that pick the format from a [`PcpmConfig`], and is the type the
//! ablation benches switch scatter/gather variants on per call.
//!
//! Most callers should not touch either type directly: the unified
//! [`Engine`](crate::backend::Engine) builder wraps them as the
//! [`BackendKind::Pcpm`](crate::backend::BackendKind) dataplane and fixes
//! the phase variants at build time.

use crate::algebra::{Algebra, PlusF32};
use crate::bins::BinSpace;
use crate::config::PcpmConfig;
use crate::error::PcpmError;
use crate::format::{
    dest_compression, BinFormat, BinFormatKind, CompactFormat, DeltaFormat, WideFormat,
};
use crate::kernel::KernelKind;
use crate::partition::Partitioner;
use crate::png::{EdgeView, Png};
use crate::pr::PhaseTimings;
use crate::scatter::csr_scatter;
use crate::update::RepairStats;
use pcpm_graph::Csr;
use std::time::Duration;

/// Which scatter implementation to run (Algorithm 3 vs Algorithm 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScatterKind {
    /// PNG-driven branchless scatter (the paper's design, §3.3).
    #[default]
    Png,
    /// Original-CSR traversal with per-edge partition comparison (§3.2),
    /// kept as the data-layout ablation.
    CsrTraversal,
}

/// Which gather implementation to run (Algorithm 4 vs Algorithm 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GatherKind {
    /// Branch-avoiding pointer arithmetic (§3.4).
    #[default]
    BranchAvoiding,
    /// Conditional MSB check, kept as the branch-avoidance ablation
    /// (wide bin format only).
    Branchy,
}

/// A built PCPM dataplane (PNG layout + message bins) over a fixed edge
/// structure, statically typed over the gather algebra and the bin
/// format.
pub struct FormatPipeline<A: Algebra, F: BinFormat> {
    num_src: u32,
    num_dst: u32,
    png: Png,
    bins: F::Bins<A::T>,
    preprocess: Duration,
    /// The concrete gather kernel, resolved from [`PcpmConfig::kernel`]
    /// at build time (never [`KernelKind::Auto`]).
    kernel: KernelKind,
}

impl<A: Algebra, F: BinFormat> FormatPipeline<A, F> {
    /// Builds the pipeline from a raw (possibly rectangular) edge view.
    ///
    /// Runs on the caller's current rayon pool — the unified
    /// [`Engine`](crate::backend::Engine) builder installs its
    /// engine-owned pool around this, so no nested pool is created.
    pub(crate) fn from_view(
        view: EdgeView<'_>,
        cfg: &PcpmConfig,
        weights: Option<&[f32]>,
    ) -> Result<Self, PcpmError> {
        let max_dim = u64::from(view.num_src()).max(u64::from(view.num_dst()));
        if max_dim > pcpm_graph::MAX_NODES {
            return Err(PcpmError::TooManyNodes(max_dim));
        }
        let q = cfg.partition_nodes();
        let src_parts = Partitioner::new(view.num_src(), q)?;
        let dst_parts = Partitioner::new(view.num_dst(), q)?;
        let t0 = crate::telemetry::stopwatch();
        let _span = crate::telemetry::span("prepare");
        let png = Png::build(view, src_parts, dst_parts);
        F::validate_layout(&png)?;
        let bins = F::build(view, &png, weights);
        let kernel = cfg.kernel.resolve(
            F::KIND,
            png.num_raw_edges(),
            png.src_parts().num_partitions(),
            png.dst_parts().num_partitions(),
        );
        Ok(Self {
            num_src: view.num_src(),
            num_dst: view.num_dst(),
            png,
            bins,
            preprocess: t0.elapsed(),
            kernel,
        })
    }

    /// Rehydrates a pipeline from snapshot state: no partitioning, PNG
    /// build or bin encoding runs — the structures are adopted as-is.
    /// `preprocess` records the load wall-clock (the only preprocessing
    /// this process paid).
    pub(crate) fn from_loaded(
        num_src: u32,
        num_dst: u32,
        png: Png,
        bins: F::Bins<A::T>,
        preprocess: Duration,
        kernel: KernelKind,
    ) -> Self {
        let kernel = kernel.resolve(
            F::KIND,
            png.num_raw_edges(),
            png.src_parts().num_partitions(),
            png.dst_parts().num_partitions(),
        );
        Self {
            num_src,
            num_dst,
            png,
            bins,
            preprocess,
            kernel,
        }
    }

    /// The serializable dataplane state for the engine-snapshot writer.
    pub(crate) fn export_state(&self) -> crate::snapshot::DataplaneState {
        crate::snapshot::DataplaneState::new(self.png.clone(), F::export_state(&self.bins))
    }

    /// Number of source nodes (length of `x`).
    pub fn num_src(&self) -> u32 {
        self.num_src
    }

    /// Number of destination nodes (length of `y`).
    pub fn num_dst(&self) -> u32 {
        self.num_dst
    }

    /// The PNG layout (for inspection and the memory replays).
    pub fn png(&self) -> &Png {
        &self.png
    }

    /// The bin storage.
    pub fn bins(&self) -> &F::Bins<A::T> {
        &self.bins
    }

    /// The concrete gather kernel this pipeline runs (`Auto` already
    /// resolved at build time).
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Heap bytes held by the message bins.
    pub fn bin_memory_bytes(&self) -> u64 {
        F::aux_memory_bytes(&self.bins)
    }

    /// Destination-ID compression relative to the wide baseline
    /// (`4·|E| / dest-stream bytes`): 1.0 wide, 2.0 compact, measured
    /// for delta.
    pub fn bin_compression(&self) -> f64 {
        dest_compression(self.png.num_raw_edges(), F::dest_stream_bytes(&self.bins))
    }

    /// PNG compression ratio `r = |E| / |E'|`.
    pub fn compression_ratio(&self) -> f64 {
        self.png.compression_ratio()
    }

    /// Physical bytes of the destination-ID bin stream — the sequential
    /// scan every gather pass pays, the paper's bandwidth-bound term.
    pub fn dest_stream_bytes(&self) -> u64 {
        F::dest_stream_bytes(&self.bins)
    }

    /// Pre-processing wall-clock time (PNG build + bin writing), Table 8.
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess
    }

    /// Whether the pipeline carries per-edge weights in its bins.
    pub fn is_weighted(&self) -> bool {
        F::has_weights(&self.bins)
    }

    /// Incrementally repairs the prepared state after an edge-set change:
    /// the PNG parts and bin segments of the `touched_parts` *source*
    /// partitions are rebuilt against `view` (the post-update structure);
    /// every other partition's segments are block-copied. With a batch
    /// touching few partitions this is far cheaper than a fresh build —
    /// the counting/filling scans run only over the touched adjacency.
    ///
    /// `view` must keep the dimensions the pipeline was built with, and
    /// `weights` (the full post-update edge-weight slice, parallel to
    /// `view`'s targets) must be present exactly when the pipeline was
    /// built weighted. Repair models *structural* change only: the
    /// weight of every edge outside `touched_parts` must equal its
    /// pre-update value, because untouched bin segments (weights
    /// included) are block-copied, not re-read from `weights`. Mutating
    /// weights of unchanged edges requires a fresh build.
    pub fn repair(
        &mut self,
        view: EdgeView<'_>,
        weights: Option<&[f32]>,
        touched_parts: &[u32],
    ) -> Result<RepairStats, PcpmError> {
        if view.num_src() != self.num_src || view.num_dst() != self.num_dst {
            return Err(PcpmError::DimensionMismatch {
                expected: self.num_src as usize,
                got: view.num_src() as usize,
            });
        }
        if weights.is_some() != self.is_weighted() {
            return Err(PcpmError::BadConfig(
                "repair must supply weights exactly when the pipeline was built weighted",
            ));
        }
        let k = self.png.src_parts().num_partitions();
        let mut touched = vec![false; k as usize];
        for &s in touched_parts {
            if s >= k {
                return Err(PcpmError::BadConfig(
                    "touched source partition out of range",
                ));
            }
            touched[s as usize] = true;
        }
        let t0 = crate::telemetry::stopwatch();
        let _span = crate::telemetry::span_n("repair", touched_parts.len() as u64);
        let old_did_region = self.png.did_region().to_vec();
        self.png.repair(view, touched_parts);
        F::repair(
            &mut self.bins,
            view,
            &self.png,
            &old_did_region,
            &touched,
            weights,
        );
        // Repair is (re-)pre-processing: fold it into the reported cost.
        self.preprocess += t0.elapsed();
        let stats = RepairStats {
            partitions_rebuilt: touched_parts.len() as u32,
            partitions_total: k,
        };
        let tm = crate::telemetry::counters();
        tm.add_partitions_repaired(u64::from(stats.partitions_rebuilt));
        tm.add_partitions_copied(u64::from(
            stats
                .partitions_total
                .saturating_sub(stats.partitions_rebuilt),
        ));
        Ok(stats)
    }

    /// One `y = ⊕ Aᵀ·x` round with explicit phase variants.
    ///
    /// `graph` is required when `scatter` is [`ScatterKind::CsrTraversal`]
    /// (the ablation needs the original adjacency); the branchy gather is
    /// implemented only by the wide format.
    pub fn spmv_with(
        &mut self,
        x: &[A::T],
        y: &mut [A::T],
        scatter: ScatterKind,
        gather: GatherKind,
        graph: Option<&Csr>,
    ) -> Result<PhaseTimings, PcpmError> {
        if x.len() != self.num_src as usize {
            return Err(PcpmError::DimensionMismatch {
                expected: self.num_src as usize,
                got: x.len(),
            });
        }
        if y.len() != self.num_dst as usize {
            return Err(PcpmError::DimensionMismatch {
                expected: self.num_dst as usize,
                got: y.len(),
            });
        }
        let t0 = crate::telemetry::stopwatch();
        {
            let _span = crate::telemetry::span("scatter");
            match scatter {
                ScatterKind::Png => F::scatter_into(&self.png, x, &mut self.bins),
                ScatterKind::CsrTraversal => {
                    let g = graph.ok_or(PcpmError::BadConfig(
                        "CsrTraversal scatter requires the original graph",
                    ))?;
                    csr_scatter(
                        EdgeView::from_csr(g),
                        &self.png,
                        x,
                        F::updates_mut(&mut self.bins),
                    );
                }
            }
        }
        let scatter_t = t0.elapsed();
        let t1 = crate::telemetry::stopwatch();
        {
            let _span = crate::telemetry::span("gather");
            match gather {
                GatherKind::BranchAvoiding => {
                    F::gather_from::<A>(&self.png, &self.bins, y, self.kernel)
                }
                GatherKind::Branchy => F::gather_branchy_from::<A>(&self.png, &self.bins, y)?,
            }
        }
        let gather_t = t1.elapsed();
        // Phase-call-granularity counters from analytically known
        // quantities: one relaxed add each, nothing per edge. The gather
        // scans the whole destID stream once; the delta format decodes
        // one varint per destID entry (= raw edge).
        let tm = crate::telemetry::counters();
        if tm.is_enabled() {
            tm.add_scatter_ns(scatter_t.as_nanos() as u64);
            tm.add_gather_ns(gather_t.as_nanos() as u64);
            tm.add_dest_stream_bytes_read(F::dest_stream_bytes(&self.bins));
            tm.add_bins_decoded(u64::from(self.png.dst_parts().num_partitions()));
            if F::KIND == BinFormatKind::Delta {
                tm.add_varint_decodes(self.png.num_raw_edges());
            }
            self.record_kernel_counters(gather_t);
        }
        Ok(PhaseTimings {
            scatter: scatter_t,
            gather: gather_t,
            apply: Duration::ZERO,
        })
    }

    /// One column-blocked SpMM round: `ys[q] = ⊕ Aᵀ·xs[q]` for every
    /// query in the batch, scanning the destination-ID stream **once**.
    ///
    /// The scatter writes one update stream per query (the layout is
    /// format-independent); the gather decodes each bin segment once and
    /// applies every entry to all `Q` accumulators, so the destID bytes
    /// — and, for the delta format, the per-edge varint decode — are
    /// amortized across the batch. Per-query output is bit-identical to
    /// `Q` sequential [`FormatPipeline::spmv_with`] calls. The branchy
    /// gather ablation has no batched kernel; callers route it through
    /// the sequential path.
    pub fn spmv_many_with(
        &mut self,
        xs: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        scatter: ScatterKind,
        graph: Option<&Csr>,
    ) -> Result<PhaseTimings, PcpmError> {
        if xs.len() != ys.len() {
            return Err(PcpmError::BadConfig(
                "spmv_many_with requires one output vector per input vector",
            ));
        }
        for x in xs {
            if x.len() != self.num_src as usize {
                return Err(PcpmError::DimensionMismatch {
                    expected: self.num_src as usize,
                    got: x.len(),
                });
            }
        }
        for y in ys.iter() {
            if y.len() != self.num_dst as usize {
                return Err(PcpmError::DimensionMismatch {
                    expected: self.num_dst as usize,
                    got: y.len(),
                });
            }
        }
        if xs.is_empty() {
            return Ok(PhaseTimings::default());
        }
        let ne = self.png.num_compressed_edges() as usize;
        let t0 = crate::telemetry::stopwatch();
        // One scratch update stream per query, all in png_scatter's
        // layout (the bins' own update stream stays untouched).
        let mut multi: Vec<Vec<A::T>> = xs.iter().map(|_| vec![A::T::default(); ne]).collect();
        {
            let _span = crate::telemetry::span("scatter_many");
            for (x, upd) in xs.iter().zip(multi.iter_mut()) {
                match scatter {
                    ScatterKind::Png => crate::scatter::png_scatter(&self.png, x, upd),
                    ScatterKind::CsrTraversal => {
                        let g = graph.ok_or(PcpmError::BadConfig(
                            "CsrTraversal scatter requires the original graph",
                        ))?;
                        csr_scatter(EdgeView::from_csr(g), &self.png, x, upd);
                    }
                }
            }
        }
        let scatter_t = t0.elapsed();
        let t1 = crate::telemetry::stopwatch();
        {
            let _span = crate::telemetry::span("gather_many");
            let upd_refs: Vec<&[A::T]> = multi.iter().map(|v| v.as_slice()).collect();
            F::gather_many_from::<A>(&self.png, &self.bins, &upd_refs, ys, self.kernel);
        }
        let gather_t = t1.elapsed();
        // The batched pass scans the destID stream (and decodes delta
        // varints) exactly once however many queries it carries — that
        // is the amortization these counters make observable.
        let tm = crate::telemetry::counters();
        if tm.is_enabled() {
            tm.add_scatter_ns(scatter_t.as_nanos() as u64);
            tm.add_gather_ns(gather_t.as_nanos() as u64);
            tm.add_dest_stream_bytes_read(F::dest_stream_bytes(&self.bins));
            tm.add_bins_decoded(u64::from(self.png.dst_parts().num_partitions()));
            if F::KIND == BinFormatKind::Delta {
                tm.add_varint_decodes(self.png.num_raw_edges());
            }
            self.record_kernel_counters(gather_t);
        }
        Ok(PhaseTimings {
            scatter: scatter_t,
            gather: gather_t,
            apply: Duration::ZERO,
        })
    }

    /// Per-kernel telemetry, recorded once per gather pass from
    /// analytically known quantities (the caller has already checked
    /// `is_enabled`). The unrolled delta kernel decodes one segment per
    /// (src, dst) partition pair into an 8-bytes-per-entry scratch
    /// buffer; the fixed-width and scalar paths touch no scratch.
    fn record_kernel_counters(&self, gather_t: Duration) {
        let tm = crate::telemetry::counters();
        match self.kernel {
            KernelKind::Unrolled => {
                tm.add_gather_unrolled_ns(gather_t.as_nanos() as u64);
                if F::KIND == BinFormatKind::Delta {
                    let segs = u64::from(self.png.src_parts().num_partitions())
                        * u64::from(self.png.dst_parts().num_partitions());
                    tm.add_kernel_segments_decoded(segs);
                    tm.add_kernel_scratch_bytes(
                        crate::kernel::SCRATCH_BYTES_PER_EDGE * self.png.num_raw_edges(),
                    );
                }
            }
            _ => tm.add_gather_scalar_ns(gather_t.as_nanos() as u64),
        }
    }
}

/// The runtime-selected pipeline: one [`FormatPipeline`] variant per
/// [`BinFormatKind`], chosen from [`PcpmConfig::bin_format`].
enum AnyPipeline<A: Algebra> {
    Wide(FormatPipeline<A, WideFormat>),
    Compact(FormatPipeline<A, CompactFormat>),
    Delta(FormatPipeline<A, DeltaFormat>),
}

/// Dispatches a method call to whichever format variant is live.
macro_rules! with_pipeline {
    ($self:expr, $p:ident => $body:expr) => {
        match &$self.inner {
            AnyPipeline::Wide($p) => $body,
            AnyPipeline::Compact($p) => $body,
            AnyPipeline::Delta($p) => $body,
        }
    };
}

macro_rules! with_pipeline_mut {
    ($self:expr, $p:ident => $body:expr) => {
        match &mut $self.inner {
            AnyPipeline::Wide($p) => $body,
            AnyPipeline::Compact($p) => $body,
            AnyPipeline::Delta($p) => $body,
        }
    };
}

/// A built PCPM dataplane with the bin format selected at runtime,
/// generic over the gather algebra.
pub struct PcpmPipeline<A: Algebra = PlusF32> {
    inner: AnyPipeline<A>,
}

/// The original f32 PCPM engine, now an alias of the algebra-generic
/// pipeline specialized to the `(+, ×)` semiring.
#[deprecated(
    since = "0.2.0",
    note = "use `pcpm_core::Engine::builder(..)` (or `PcpmPipeline<PlusF32>` for per-call variant switching)"
)]
pub type PcpmEngine = PcpmPipeline<PlusF32>;

impl<A: Algebra> PcpmPipeline<A> {
    /// Builds the pipeline for a square graph.
    pub fn new(graph: &Csr, cfg: &PcpmConfig) -> Result<Self, PcpmError> {
        cfg.validate()?;
        Self::from_view(EdgeView::from_csr(graph), cfg, None)
    }

    /// Builds the pipeline for a square graph with per-edge weights
    /// (parallel to the CSR targets array).
    pub fn new_weighted(
        graph: &Csr,
        weights: &pcpm_graph::EdgeWeights,
        cfg: &PcpmConfig,
    ) -> Result<Self, PcpmError> {
        cfg.validate()?;
        Self::from_view(EdgeView::from_csr(graph), cfg, Some(weights.as_slice()))
    }

    /// Builds the pipeline from a raw (possibly rectangular) edge view,
    /// selecting the format from `cfg.bin_format`.
    pub(crate) fn from_view(
        view: EdgeView<'_>,
        cfg: &PcpmConfig,
        weights: Option<&[f32]>,
    ) -> Result<Self, PcpmError> {
        let inner = match cfg.bin_format {
            BinFormatKind::Wide => {
                AnyPipeline::Wide(FormatPipeline::from_view(view, cfg, weights)?)
            }
            BinFormatKind::Compact => {
                AnyPipeline::Compact(FormatPipeline::from_view(view, cfg, weights)?)
            }
            BinFormatKind::Delta => {
                AnyPipeline::Delta(FormatPipeline::from_view(view, cfg, weights)?)
            }
        };
        Ok(Self { inner })
    }

    /// Dissolves into the statically-typed wide pipeline, when the wide
    /// format is live (the memory replays inspect wide bins directly).
    pub fn as_wide(&self) -> Option<&FormatPipeline<A, WideFormat>> {
        match &self.inner {
            AnyPipeline::Wide(p) => Some(p),
            _ => None,
        }
    }

    /// Number of source nodes (length of `x`).
    pub fn num_src(&self) -> u32 {
        with_pipeline!(self, p => p.num_src())
    }

    /// Number of destination nodes (length of `y`).
    pub fn num_dst(&self) -> u32 {
        with_pipeline!(self, p => p.num_dst())
    }

    /// The PNG layout (for inspection and the memory replays).
    pub fn png(&self) -> &Png {
        with_pipeline!(self, p => p.png())
    }

    /// The wide bins, when the pipeline uses the 32-bit encoding.
    pub fn bins(&self) -> Option<&BinSpace<A::T>> {
        self.as_wide().map(|p| p.bins())
    }

    /// Heap bytes held by the message bins (any format).
    pub fn bin_memory_bytes(&self) -> u64 {
        with_pipeline!(self, p => p.bin_memory_bytes())
    }

    /// Destination-ID compression relative to the wide baseline.
    pub fn bin_compression(&self) -> f64 {
        with_pipeline!(self, p => p.bin_compression())
    }

    /// Physical bytes of the destination-ID bin stream.
    pub fn dest_stream_bytes(&self) -> u64 {
        with_pipeline!(self, p => p.dest_stream_bytes())
    }

    /// PNG compression ratio `r = |E| / |E'|`.
    pub fn compression_ratio(&self) -> f64 {
        with_pipeline!(self, p => p.compression_ratio())
    }

    /// Pre-processing wall-clock time (PNG build + bin writing), Table 8.
    pub fn preprocess_time(&self) -> Duration {
        with_pipeline!(self, p => p.preprocess_time())
    }

    /// The physical bin format this pipeline built.
    pub fn bin_format(&self) -> BinFormatKind {
        match &self.inner {
            AnyPipeline::Wide(_) => BinFormatKind::Wide,
            AnyPipeline::Compact(_) => BinFormatKind::Compact,
            AnyPipeline::Delta(_) => BinFormatKind::Delta,
        }
    }

    /// Whether the pipeline built the compact 16-bit bins.
    pub fn is_compact(&self) -> bool {
        self.bin_format() == BinFormatKind::Compact
    }

    /// The concrete gather kernel this pipeline runs (`Auto` already
    /// resolved at build time).
    pub fn kernel(&self) -> KernelKind {
        with_pipeline!(self, p => p.kernel())
    }

    /// Whether the pipeline carries per-edge weights in its bins.
    pub fn is_weighted(&self) -> bool {
        with_pipeline!(self, p => p.is_weighted())
    }

    /// Incrementally repairs the prepared state after an edge-set
    /// change — see [`FormatPipeline::repair`].
    pub fn repair(
        &mut self,
        view: EdgeView<'_>,
        weights: Option<&[f32]>,
        touched_parts: &[u32],
    ) -> Result<RepairStats, PcpmError> {
        with_pipeline_mut!(self, p => p.repair(view, weights, touched_parts))
    }

    /// One `y = ⊕ Aᵀ·x` round with the default (paper) scatter and
    /// gather.
    pub fn spmv(&mut self, x: &[A::T], y: &mut [A::T]) -> Result<PhaseTimings, PcpmError> {
        self.spmv_with(x, y, ScatterKind::Png, GatherKind::BranchAvoiding, None)
    }

    /// One round with explicit phase variants — see
    /// [`FormatPipeline::spmv_with`].
    pub fn spmv_with(
        &mut self,
        x: &[A::T],
        y: &mut [A::T],
        scatter: ScatterKind,
        gather: GatherKind,
        graph: Option<&Csr>,
    ) -> Result<PhaseTimings, PcpmError> {
        with_pipeline_mut!(self, p => p.spmv_with(x, y, scatter, gather, graph))
    }

    /// One column-blocked SpMM round — see
    /// [`FormatPipeline::spmv_many_with`].
    pub fn spmv_many_with(
        &mut self,
        xs: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        scatter: ScatterKind,
        graph: Option<&Csr>,
    ) -> Result<PhaseTimings, PcpmError> {
        with_pipeline_mut!(self, p => p.spmv_many_with(xs, ys, scatter, graph))
    }

    /// Boxes the live variant as a [`Backend`](crate::backend::Backend)
    /// (the rectangular SpMV front end plugs in through this).
    pub(crate) fn into_boxed_backend(self) -> Box<dyn crate::backend::Backend<A>> {
        match self.inner {
            AnyPipeline::Wide(p) => Box::new(crate::backend::PcpmBackend::from_pipeline(p)),
            AnyPipeline::Compact(p) => Box::new(crate::backend::PcpmBackend::from_pipeline(p)),
            AnyPipeline::Delta(p) => Box::new(crate::backend::PcpmBackend::from_pipeline(p)),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    fn reference(g: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            y[t as usize] += x[s as usize];
        }
        y
    }

    #[test]
    fn engine_spmv_matches_reference() {
        let g = erdos_renyi(300, 2400, 8).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(64 * 4); // q = 64
        let mut eng = PcpmEngine::new(&g, &cfg).unwrap();
        let x: Vec<f32> = (0..300).map(|v| (v as f32).sqrt()).collect();
        let mut y = vec![0.0f32; 300];
        eng.spmv(&x, &mut y).unwrap();
        let want = reference(&g, &x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn all_variant_combinations_agree() {
        let g = rmat(&RmatConfig::graph500(8, 6, 77)).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(40 * 4);
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 17) as f32).collect();
        let mut outputs = Vec::new();
        for scatter in [ScatterKind::Png, ScatterKind::CsrTraversal] {
            for gather in [GatherKind::BranchAvoiding, GatherKind::Branchy] {
                let mut eng = PcpmEngine::new(&g, &cfg).unwrap();
                let mut y = vec![0.0f32; g.num_nodes() as usize];
                eng.spmv_with(&x, &mut y, scatter, gather, Some(&g))
                    .unwrap();
                outputs.push(y);
            }
        }
        for other in &outputs[1..] {
            assert_eq!(&outputs[0], other);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let g = erdos_renyi(10, 30, 1).unwrap();
        let mut eng = PcpmEngine::new(&g, &PcpmConfig::default()).unwrap();
        let mut y = vec![0.0f32; 10];
        assert!(matches!(
            eng.spmv(&[0.0; 3], &mut y),
            Err(PcpmError::DimensionMismatch {
                expected: 10,
                got: 3
            })
        ));
        let x = vec![0.0f32; 10];
        let mut y_bad = vec![0.0f32; 4];
        assert!(eng.spmv(&x, &mut y_bad).is_err());
    }

    #[test]
    fn csr_traversal_without_graph_errors() {
        let g = erdos_renyi(10, 30, 1).unwrap();
        let mut eng = PcpmEngine::new(&g, &PcpmConfig::default()).unwrap();
        let x = vec![0.0f32; 10];
        let mut y = vec![0.0f32; 10];
        assert!(eng
            .spmv_with(
                &x,
                &mut y,
                ScatterKind::CsrTraversal,
                GatherKind::BranchAvoiding,
                None
            )
            .is_err());
    }

    #[test]
    fn repeated_spmv_reuses_bins() {
        let g = erdos_renyi(100, 500, 4).unwrap();
        let mut eng = PcpmEngine::new(&g, &PcpmConfig::default()).unwrap();
        let x: Vec<f32> = vec![1.0; 100];
        let mut y1 = vec![0.0f32; 100];
        let mut y2 = vec![0.0f32; 100];
        eng.spmv(&x, &mut y1).unwrap();
        eng.spmv(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn compression_ratio_exposed() {
        let g = rmat(&RmatConfig::graph500(8, 8, 5)).unwrap();
        let eng = PcpmEngine::new(&g, &PcpmConfig::default()).unwrap();
        assert!(eng.compression_ratio() >= 1.0);
    }

    #[test]
    fn integer_algebra_pipeline_runs_min_label() {
        use crate::algebra::MinLabel;
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (3, 2)]).unwrap();
        let cfg = PcpmConfig::default().with_partition_bytes(8);
        let mut pipe = PcpmPipeline::<MinLabel>::new(&g, &cfg).unwrap();
        let x: Vec<u32> = vec![0, 1, 2, 3];
        let mut y = vec![u32::MAX; 4];
        pipe.spmv(&x, &mut y).unwrap();
        assert_eq!(y, vec![u32::MAX, 0, 1, u32::MAX]);
    }

    #[test]
    fn every_format_integer_algebra_matches_wide() {
        use crate::algebra::MinLevel;
        let g = rmat(&RmatConfig::graph500(9, 6, 23)).unwrap();
        let wide_cfg = PcpmConfig::default().with_partition_bytes(128 * 4);
        let mut wide = PcpmPipeline::<MinLevel>::new(&g, &wide_cfg).unwrap();
        let x: Vec<u32> = (0..g.num_nodes()).map(|v| v % 11).collect();
        let n = g.num_nodes() as usize;
        let mut yw = vec![0u32; n];
        wide.spmv(&x, &mut yw).unwrap();
        for format in [BinFormatKind::Compact, BinFormatKind::Delta] {
            let cfg = wide_cfg.with_bin_format(format);
            let mut pipe = PcpmPipeline::<MinLevel>::new(&g, &cfg).unwrap();
            let mut y = vec![0u32; n];
            pipe.spmv(&x, &mut y).unwrap();
            assert_eq!(yw, y, "format {format}");
        }
    }

    #[test]
    fn every_format_engine_matches_wide_engine() {
        let g = rmat(&RmatConfig::graph500(9, 8, 41)).unwrap();
        let wide_cfg = PcpmConfig::default().with_partition_bytes(512 * 4);
        let mut wide = PcpmEngine::new(&g, &wide_cfg).unwrap();
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).cos()).collect();
        let mut yw = vec![0.0f32; g.num_nodes() as usize];
        wide.spmv(&x, &mut yw).unwrap();
        assert!(wide.bins().is_some());
        assert!((wide.bin_compression() - 1.0).abs() < 1e-12);
        for format in [BinFormatKind::Compact, BinFormatKind::Delta] {
            let cfg = wide_cfg.with_bin_format(format);
            let mut pipe = PcpmEngine::new(&g, &cfg).unwrap();
            let mut y = vec![0.0f32; g.num_nodes() as usize];
            pipe.spmv(&x, &mut y).unwrap();
            assert_eq!(yw, y, "format {format}");
            // Every non-wide destination stream is smaller.
            assert!(pipe.bin_memory_bytes() < wide.bin_memory_bytes());
            assert!(pipe.bin_compression() > 1.9, "format {format}");
            assert!(pipe.bins().is_none());
            assert_eq!(pipe.bin_format(), format);
        }
    }

    #[test]
    fn compact_with_oversized_partition_is_rejected() {
        let g = erdos_renyi(100, 400, 2).unwrap();
        // Default 256 KB partitions are 64 Ki nodes > 2^15.
        let cfg = PcpmConfig::default().with_compact_bins();
        assert!(PcpmEngine::new(&g, &cfg).is_err());
        // Delta has no partition-size restriction.
        let delta = PcpmConfig::default().with_bin_format(BinFormatKind::Delta);
        assert!(PcpmEngine::new(&g, &delta).is_ok());
    }

    #[test]
    fn non_wide_formats_reject_branchy_gather() {
        let g = erdos_renyi(100, 400, 2).unwrap();
        for format in [BinFormatKind::Compact, BinFormatKind::Delta] {
            let cfg = PcpmConfig::default()
                .with_partition_bytes(256)
                .with_bin_format(format);
            let mut eng = PcpmEngine::new(&g, &cfg).unwrap();
            let x = vec![0.0f32; 100];
            let mut y = vec![0.0f32; 100];
            assert!(
                eng.spmv_with(&x, &mut y, ScatterKind::Png, GatherKind::Branchy, None)
                    .is_err(),
                "format {format}"
            );
        }
    }
}
