//! Error type for the PCPM engine.

use std::fmt;

/// Errors produced while configuring or running the PCPM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcpmError {
    /// The partition size must hold at least one node.
    PartitionTooSmall,
    /// Input vector length does not match the engine's source dimension.
    DimensionMismatch {
        /// What the engine expected.
        expected: usize,
        /// What the caller supplied.
        got: usize,
    },
    /// The graph exceeds the `2^31` node limit imposed by the MSB trick.
    TooManyNodes(u64),
    /// A configuration field is out of its valid range.
    BadConfig(&'static str),
}

impl fmt::Display for PcpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcpmError::PartitionTooSmall => {
                write!(f, "partition size must hold at least one node")
            }
            PcpmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            PcpmError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceeds the 2^31 PCPM limit (MSB is reserved)")
            }
            PcpmError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for PcpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_problem() {
        assert!(PcpmError::PartitionTooSmall
            .to_string()
            .contains("partition"));
        assert!(PcpmError::DimensionMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains("expected 3"));
        assert!(PcpmError::TooManyNodes(1 << 33).to_string().contains("MSB"));
        assert!(PcpmError::BadConfig("damping")
            .to_string()
            .contains("damping"));
    }
}
