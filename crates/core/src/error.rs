//! Error type for the PCPM engine.

use std::fmt;

/// Errors produced while configuring or running the PCPM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcpmError {
    /// The partition size must hold at least one node.
    PartitionTooSmall,
    /// Input vector length does not match the engine's source dimension.
    DimensionMismatch {
        /// What the engine expected.
        expected: usize,
        /// What the caller supplied.
        got: usize,
    },
    /// The graph exceeds the `2^31` node limit imposed by the MSB trick.
    TooManyNodes(u64),
    /// A configuration field is out of its valid range.
    BadConfig(&'static str),
    /// An engine-snapshot file could not be written, read or trusted.
    Snapshot(SnapshotError),
}

/// Typed failures of the engine-snapshot cache (`pcpm_core::snapshot`).
///
/// Every way a snapshot file can be wrong maps to a distinct variant, so
/// callers (the CLI, the replay harness, serving layers) can decide
/// between "rebuild the cache" (corruption, version skew) and "the
/// caller asked for something else" (config mismatch) without string
/// matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying filesystem failure (kind + message, stringified so the
    /// error stays `Clone + Eq`).
    Io(String),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The payload checksum does not match the header — the file was
    /// corrupted or truncated after the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload that was actually read.
        computed: u64,
    },
    /// The payload is structurally invalid (truncated section, internal
    /// inconsistency) even though the checksum matched.
    Corrupt(&'static str),
    /// The snapshot is valid but was built under a different
    /// configuration than the caller requires (`partition bytes`,
    /// `bin format`, `weighted`, or `graph`).
    ConfigMismatch {
        /// Which configuration axis disagreed.
        field: &'static str,
    },
    /// The engine cannot be snapshotted (non-PCPM dataplane, or an
    /// externally prepared backend with no retained graph).
    Unsupported(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O: {msg}"),
            SnapshotError::BadMagic => write!(f, "not a pcpm snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} unsupported (this build reads up to {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (header {stored:#018x}, payload {computed:#018x})"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::ConfigMismatch { field } => {
                write!(f, "snapshot config mismatch on {field}")
            }
            SnapshotError::Unsupported(msg) => write!(f, "snapshot unsupported: {msg}"),
        }
    }
}

impl From<SnapshotError> for PcpmError {
    fn from(e: SnapshotError) -> Self {
        PcpmError::Snapshot(e)
    }
}

impl fmt::Display for PcpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcpmError::PartitionTooSmall => {
                write!(f, "partition size must hold at least one node")
            }
            PcpmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            PcpmError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceeds the 2^31 PCPM limit (MSB is reserved)")
            }
            PcpmError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            PcpmError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PcpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_problem() {
        assert!(PcpmError::PartitionTooSmall
            .to_string()
            .contains("partition"));
        assert!(PcpmError::DimensionMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains("expected 3"));
        assert!(PcpmError::TooManyNodes(1 << 33).to_string().contains("MSB"));
        assert!(PcpmError::BadConfig("damping")
            .to_string()
            .contains("damping"));
    }
}
