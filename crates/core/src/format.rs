//! The `BinFormat` axis: one dataplane interface, N physical bin
//! encodings.
//!
//! PR 1 unified *execution* behind the [`Backend`](crate::backend::Backend)
//! trait; this module does the same for the PCPM *storage layer*. The
//! paper's message bins admit several physical destination-ID encodings —
//! wide 32-bit global IDs (§3.2), compact 16-bit partition-local IDs (§6)
//! and the delta-varint stream of [`DeltaPackedBins`](crate::delta) — all
//! sharing the same update-stream layout and the same build/repair
//! skeleton. A [`BinFormat`] captures exactly the variation points:
//!
//! - how one PNG message run is **encoded** into the destination stream
//!   ([`BinFormat::build`] / [`BinFormat::repair`]),
//! - how the gather **decodes** it back ([`BinFormat::gather_from`],
//!   or entry-by-entry through a [`DestCursor`]),
//! - how much auxiliary memory the encoding costs
//!   ([`BinFormat::aux_memory_bytes`], [`BinFormat::dest_stream_bytes`]).
//!
//! The scatter phase is format-independent (updates are laid out
//! identically for every format), so [`BinFormat::scatter_into`] defaults
//! to the shared PNG scatter.
//!
//! The runtime selector is [`BinFormatKind`]
//! ([`PcpmConfig::bin_format`](crate::PcpmConfig::bin_format), the CLI's
//! `--format` flag); the statically-typed entry points are the three
//! marker types [`WideFormat`], [`CompactFormat`] and [`DeltaFormat`].

use crate::algebra::Algebra;
use crate::bins::BinSpace;
use crate::compact::CompactBinSpace;
use crate::delta::DeltaPackedBins;
use crate::error::PcpmError;
use crate::kernel::KernelKind;
use crate::partition::split_by_lens;
use crate::png::{for_each_run, EdgeView, Png};
use rayon::prelude::*;

/// Scalars that may flow through the update bins: every
/// [`Algebra::T`](crate::algebra::Algebra) satisfies this.
pub trait BinScalar: Copy + Default + Send + Sync + std::fmt::Debug + 'static {}
impl<T: Copy + Default + Send + Sync + std::fmt::Debug + 'static> BinScalar for T {}

/// Runtime selector for the physical bin encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BinFormatKind {
    /// 32-bit global destination IDs with MSB demarcation (the paper's
    /// §3.2 layout; no partition-size restriction).
    #[default]
    Wide,
    /// 16-bit partition-local destination IDs (§6 / G-Store); requires
    /// partitions of at most 2^15 nodes and halves the destID traffic.
    Compact,
    /// Per-partition delta-encoded varints (PNG-style compressed IDs);
    /// no partition-size restriction, typically 1–2 bytes per edge.
    Delta,
}

impl BinFormatKind {
    /// All formats, for sweep tests and benches.
    pub const ALL: [BinFormatKind; 3] = [
        BinFormatKind::Wide,
        BinFormatKind::Compact,
        BinFormatKind::Delta,
    ];

    /// The format name as reported in metrics and accepted by `--format`.
    pub fn name(self) -> &'static str {
        match self {
            BinFormatKind::Wide => "wide",
            BinFormatKind::Compact => "compact",
            BinFormatKind::Delta => "delta",
        }
    }
}

impl std::fmt::Display for BinFormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BinFormatKind {
    type Err = PcpmError;

    fn from_str(s: &str) -> Result<Self, PcpmError> {
        match s {
            "wide" => Ok(BinFormatKind::Wide),
            "compact" => Ok(BinFormatKind::Compact),
            "delta" => Ok(BinFormatKind::Delta),
            _ => Err(PcpmError::BadConfig(
                "unknown bin format (expected wide|compact|delta)",
            )),
        }
    }
}

/// Streaming decoder over one `(source partition, destination partition)`
/// destination-ID segment: yields each raw edge's destination in bin
/// order, flagging the first entry of every message.
///
/// Every format can decode itself through this interface (the format
/// round-trip tests and debugging helpers use it); the hot gather loops
/// are specialized per format but produce the identical entry sequence.
pub trait DestCursor {
    /// The next `(global destination ID, starts_new_message)` entry, or
    /// `None` at the end of the segment.
    fn next_entry(&mut self) -> Option<(u32, bool)>;
}

/// A physical bin encoding: storage type, build/repair, scatter/gather
/// and memory accounting.
///
/// Implementations are zero-sized marker types ([`WideFormat`],
/// [`CompactFormat`], [`DeltaFormat`]); the engine picks one statically
/// (`PcpmBackend<A, F>`) or dispatches at runtime from
/// [`BinFormatKind`].
pub trait BinFormat: Send + Sync + 'static {
    /// The bin storage built over a PNG, generic over the update scalar.
    type Bins<T: BinScalar>: Send + Sync + Clone + std::fmt::Debug;

    /// The segment decoder (see [`DestCursor`]).
    type Cursor<'a>: DestCursor;

    /// The runtime tag of this format.
    const KIND: BinFormatKind;

    /// Rejects PNG layouts this format cannot encode (e.g. compact's
    /// 15-bit partition-size limit). Called before [`BinFormat::build`].
    fn validate_layout(png: &Png) -> Result<(), PcpmError> {
        let _ = png;
        Ok(())
    }

    /// Allocates the bins and writes the destination-ID (and weight)
    /// streams for `png`, in parallel over source partitions.
    fn build<T: BinScalar>(view: EdgeView<'_>, png: &Png, weights: Option<&[f32]>)
        -> Self::Bins<T>;

    /// Incrementally rebuilds the bins after a [`Png::repair`]: touched
    /// source partitions are re-encoded from `view`, untouched segments
    /// are block-copied. `png` must already be repaired;
    /// `old_did_region` is the raw-edge region prefix *before* the
    /// repair; `touched` is a per-source-partition mask.
    fn repair<T: BinScalar>(
        bins: &mut Self::Bins<T>,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        weights: Option<&[f32]>,
    );

    /// One scatter round: writes `x` into the update stream. The update
    /// layout is format-independent, so this defaults to the shared PNG
    /// scatter (Algorithm 3).
    fn scatter_into<T: BinScalar>(png: &Png, x: &[T], bins: &mut Self::Bins<T>) {
        crate::scatter::png_scatter(png, x, Self::updates_mut(bins));
    }

    /// One gather round: reduces every message into `y` under `A`
    /// (branch-avoiding, Algorithm 4 adapted to the encoding).
    /// `kernel` selects the decode/accumulate variant (see
    /// [`KernelKind`]); all variants apply entries in identical order,
    /// so output is bit-identical across kernels.
    fn gather_from<A: Algebra>(
        png: &Png,
        bins: &Self::Bins<A::T>,
        y: &mut [A::T],
        kernel: KernelKind,
    );

    /// One multi-query gather round (the SpMM inner loop): decodes each
    /// destination-ID segment **once** and applies every entry to all
    /// `Q` accumulators, so the dest-stream bytes (and, for delta, the
    /// per-edge varint decodes) are paid once per batch. `updates[q]`
    /// must share the layout [`BinFormat::scatter_into`] writes; each
    /// query's output is bit-identical to a solo
    /// [`BinFormat::gather_from`] over the same update stream.
    fn gather_many_from<A: Algebra>(
        png: &Png,
        bins: &Self::Bins<A::T>,
        updates: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        kernel: KernelKind,
    );

    /// The branchy-gather ablation (Algorithm 2). Only the wide format
    /// implements it; everything else reports a config error.
    fn gather_branchy_from<A: Algebra>(
        png: &Png,
        bins: &Self::Bins<A::T>,
        y: &mut [A::T],
    ) -> Result<(), PcpmError> {
        let _ = (png, bins, y);
        Err(PcpmError::BadConfig(
            "the branchy gather ablation requires the wide bin format",
        ))
    }

    /// Mutable access to the update stream (the CSR-traversal scatter
    /// ablation writes it directly).
    fn updates_mut<T: BinScalar>(bins: &mut Self::Bins<T>) -> &mut [T];

    /// Whether the bins carry per-edge weights.
    fn has_weights<T: BinScalar>(bins: &Self::Bins<T>) -> bool;

    /// Heap bytes held by the bins (updates + destination stream +
    /// offsets + weights).
    fn aux_memory_bytes<T: BinScalar>(bins: &Self::Bins<T>) -> u64;

    /// Bytes of the destination-ID stream alone (the term the encodings
    /// compete on; the wide format spends `4·|E|`).
    fn dest_stream_bytes<T: BinScalar>(bins: &Self::Bins<T>) -> u64;

    /// A [`DestCursor`] over segment `(s, p)`.
    fn cursor<'a, T: BinScalar>(
        bins: &'a Self::Bins<T>,
        png: &Png,
        s: u32,
        p: u32,
    ) -> Self::Cursor<'a>;

    /// Clones the serializable part of the bins (destination stream +
    /// optional weight stream) for the engine-snapshot writer; the
    /// update stream is scratch and excluded.
    fn export_state<T: BinScalar>(bins: &Self::Bins<T>) -> crate::snapshot::BinState;
}

/// Destination-ID compression relative to the wide baseline
/// (`4·|E| / dest_stream_bytes`); 1.0 for an edgeless graph.
pub fn dest_compression(raw_edges: u64, dest_bytes: u64) -> f64 {
    if dest_bytes == 0 {
        1.0
    } else {
        (raw_edges * 4) as f64 / dest_bytes as f64
    }
}

// ---------------------------------------------------------------------------
// Shared fixed-width build/repair skeleton (wide + compact)
// ---------------------------------------------------------------------------

/// A fixed-width destination encoding: one storage unit per raw edge.
/// Captures the only difference between the wide and compact dataplanes'
/// build/repair code — everything else (region splitting, parallel fill,
/// block-copy repair, weight streams) is the shared skeleton below.
pub(crate) trait FixedDestEncode: Send + Sync + 'static {
    /// Storage unit (`u32` wide, `u16` compact).
    type Unit: Copy + Default + Send + Sync;

    /// Encodes one message run (`out.len() == run.len()`, first entry
    /// carries the demarcation flag). `p_base` is the destination
    /// partition's first node ID.
    fn encode_run(out: &mut [Self::Unit], run: &[u32], p_base: u32);
}

pub(crate) struct WideEncode;

impl FixedDestEncode for WideEncode {
    type Unit = u32;

    #[inline]
    fn encode_run(out: &mut [u32], run: &[u32], _p_base: u32) {
        out[0] = run[0] | crate::MSB_FLAG;
        out[1..].copy_from_slice(&run[1..]);
    }
}

pub(crate) struct CompactEncode;

impl FixedDestEncode for CompactEncode {
    type Unit = u16;

    #[inline]
    fn encode_run(out: &mut [u16], run: &[u32], p_base: u32) {
        out[0] = (run[0] - p_base) as u16 | crate::compact::MSB_FLAG16;
        for (slot, &t) in out[1..].iter_mut().zip(&run[1..]) {
            *slot = (t - p_base) as u16;
        }
    }
}

/// Writes the destination segments (and, when weighted, the weight
/// segments — one combined scan) of source partition `s` into its
/// region through `E`.
fn fill_fixed_partition<E: FixedDestEncode>(
    view: EdgeView<'_>,
    png: &Png,
    s: u32,
    region: &mut [E::Unit],
    weights: Option<(&mut [f32], &[f32])>,
) {
    let q = png.dst_parts().partition_size();
    let part = png.part(s);
    // Per-destination-partition write cursors, local to this region.
    let mut cursor: Vec<u64> = part.did_off[..part.did_off.len() - 1].to_vec();
    let mut wsplit = weights;
    for_each_run(
        view,
        png.src_parts(),
        png.dst_parts(),
        s,
        |_v, p, run, base| {
            let c = cursor[p as usize] as usize;
            E::encode_run(&mut region[c..c + run.len()], run, p * q);
            if let Some((wregion, ew)) = wsplit.as_mut() {
                wregion[c..c + run.len()]
                    .copy_from_slice(&ew[base as usize..base as usize + run.len()]);
            }
            cursor[p as usize] += run.len() as u64;
        },
    );
}

/// The shared fixed-width build: allocate, split, fill in parallel.
/// Returns `(updates, dest_stream, weights)`.
pub(crate) fn build_fixed<E: FixedDestEncode, T: BinScalar>(
    view: EdgeView<'_>,
    png: &Png,
    edge_weights: Option<&[f32]>,
) -> (Vec<T>, Vec<E::Unit>, Option<Vec<f32>>) {
    let updates = vec![T::default(); png.num_compressed_edges() as usize];
    let mut dest = vec![E::Unit::default(); png.num_raw_edges() as usize];
    let mut weights = edge_weights.map(|_| vec![0.0f32; png.num_raw_edges() as usize]);
    let did_lens = png.did_region_lens();
    let regions = split_by_lens(&mut dest, &did_lens);
    match (&mut weights, edge_weights) {
        (Some(w), Some(ew)) => {
            let wregions = split_by_lens(w, &did_lens);
            regions
                .into_par_iter()
                .zip(wregions)
                .enumerate()
                .for_each(|(s, (region, wregion))| {
                    fill_fixed_partition::<E>(view, png, s as u32, region, Some((wregion, ew)));
                });
        }
        _ => {
            regions.into_par_iter().enumerate().for_each(|(s, region)| {
                fill_fixed_partition::<E>(view, png, s as u32, region, None);
            });
        }
    }
    (updates, dest, weights)
}

/// The shared fixed-width repair: touched partitions are re-encoded,
/// untouched segments block-copied from `old_dest` / `old_weights` at
/// their pre-repair offsets.
pub(crate) fn repair_fixed<E: FixedDestEncode, T: BinScalar>(
    old_dest: &[E::Unit],
    old_weights: Option<&[f32]>,
    view: EdgeView<'_>,
    png: &Png,
    old_did_region: &[u64],
    touched: &[bool],
    edge_weights: Option<&[f32]>,
) -> (Vec<T>, Vec<E::Unit>, Option<Vec<f32>>) {
    let updates = vec![T::default(); png.num_compressed_edges() as usize];
    let mut dest = vec![E::Unit::default(); png.num_raw_edges() as usize];
    let mut weights = edge_weights.map(|_| vec![0.0f32; png.num_raw_edges() as usize]);
    let did_lens = png.did_region_lens();
    let regions = split_by_lens(&mut dest, &did_lens);
    match (&mut weights, edge_weights) {
        (Some(w), Some(ew)) => {
            let old_w = old_weights.expect("weighted bins keep weights");
            let wregions = split_by_lens(w, &did_lens);
            regions
                .into_par_iter()
                .zip(wregions)
                .enumerate()
                .for_each(|(s, (region, wregion))| {
                    if touched[s] {
                        fill_fixed_partition::<E>(view, png, s as u32, region, Some((wregion, ew)));
                    } else {
                        let lo = old_did_region[s] as usize;
                        region.copy_from_slice(&old_dest[lo..lo + region.len()]);
                        wregion.copy_from_slice(&old_w[lo..lo + wregion.len()]);
                    }
                });
        }
        _ => {
            regions.into_par_iter().enumerate().for_each(|(s, region)| {
                if touched[s] {
                    fill_fixed_partition::<E>(view, png, s as u32, region, None);
                } else {
                    let lo = old_did_region[s] as usize;
                    region.copy_from_slice(&old_dest[lo..lo + region.len()]);
                }
            });
        }
    }
    (updates, dest, weights)
}

/// Writes the per-edge weight stream in raw-edge bin order (the layout
/// the wide format's destination IDs use; every format stores weights
/// this way, so the gather can zip weights with decoded entries). The
/// fixed-width formats fill weights inline with the destination scan;
/// these helpers serve formats with their own dest geometry (delta).
pub(crate) fn build_weight_stream(view: EdgeView<'_>, png: &Png, ew: &[f32]) -> Vec<f32> {
    let mut w = vec![0.0f32; png.num_raw_edges() as usize];
    let did_lens = png.did_region_lens();
    let regions = split_by_lens(&mut w, &did_lens);
    regions.into_par_iter().enumerate().for_each(|(s, region)| {
        fill_weight_partition(view, png, s as u32, region, ew);
    });
    w
}

/// The weight-stream analogue of the fixed repair.
pub(crate) fn repair_weight_stream(
    old: &[f32],
    view: EdgeView<'_>,
    png: &Png,
    old_did_region: &[u64],
    touched: &[bool],
    ew: &[f32],
) -> Vec<f32> {
    let mut w = vec![0.0f32; png.num_raw_edges() as usize];
    let did_lens = png.did_region_lens();
    let regions = split_by_lens(&mut w, &did_lens);
    regions.into_par_iter().enumerate().for_each(|(s, region)| {
        if touched[s] {
            fill_weight_partition(view, png, s as u32, region, ew);
        } else {
            let lo = old_did_region[s] as usize;
            region.copy_from_slice(&old[lo..lo + region.len()]);
        }
    });
    w
}

fn fill_weight_partition(view: EdgeView<'_>, png: &Png, s: u32, region: &mut [f32], ew: &[f32]) {
    let part = png.part(s);
    let mut cursor: Vec<u64> = part.did_off[..part.did_off.len() - 1].to_vec();
    for_each_run(
        view,
        png.src_parts(),
        png.dst_parts(),
        s,
        |_v, p, run, base| {
            let c = cursor[p as usize] as usize;
            region[c..c + run.len()].copy_from_slice(&ew[base as usize..base as usize + run.len()]);
            cursor[p as usize] += run.len() as u64;
        },
    );
}

// ---------------------------------------------------------------------------
// The three formats
// ---------------------------------------------------------------------------

/// 32-bit global destination IDs (the paper's §3.2 layout).
pub struct WideFormat;

/// Cursor over a wide segment.
pub struct WideCursor<'a> {
    ids: std::slice::Iter<'a, u32>,
}

impl DestCursor for WideCursor<'_> {
    #[inline]
    fn next_entry(&mut self) -> Option<(u32, bool)> {
        self.ids
            .next()
            .map(|&id| (id & crate::ID_MASK, id & crate::MSB_FLAG != 0))
    }
}

impl BinFormat for WideFormat {
    type Bins<T: BinScalar> = BinSpace<T>;
    type Cursor<'a> = WideCursor<'a>;

    const KIND: BinFormatKind = BinFormatKind::Wide;

    fn build<T: BinScalar>(view: EdgeView<'_>, png: &Png, weights: Option<&[f32]>) -> BinSpace<T> {
        let (updates, dest_ids, weights) = build_fixed::<WideEncode, T>(view, png, weights);
        BinSpace {
            updates,
            dest_ids,
            weights,
        }
    }

    fn repair<T: BinScalar>(
        bins: &mut BinSpace<T>,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        weights: Option<&[f32]>,
    ) {
        let (updates, dest_ids, new_weights) = repair_fixed::<WideEncode, T>(
            &bins.dest_ids,
            bins.weights.as_deref(),
            view,
            png,
            old_did_region,
            touched,
            weights,
        );
        bins.updates = updates;
        bins.dest_ids = dest_ids;
        bins.weights = new_weights;
    }

    fn gather_from<A: Algebra>(
        png: &Png,
        bins: &BinSpace<A::T>,
        y: &mut [A::T],
        kernel: KernelKind,
    ) {
        crate::gather::gather_algebra_kernel::<A>(png, bins, y, kernel);
    }

    fn gather_many_from<A: Algebra>(
        png: &Png,
        bins: &BinSpace<A::T>,
        updates: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        kernel: KernelKind,
    ) {
        crate::gather::gather_algebra_many::<A>(png, bins, updates, ys, kernel);
    }

    fn gather_branchy_from<A: Algebra>(
        png: &Png,
        bins: &BinSpace<A::T>,
        y: &mut [A::T],
    ) -> Result<(), PcpmError> {
        crate::gather::gather_algebra_branchy::<A>(png, bins, y);
        Ok(())
    }

    fn updates_mut<T: BinScalar>(bins: &mut BinSpace<T>) -> &mut [T] {
        &mut bins.updates
    }

    fn has_weights<T: BinScalar>(bins: &BinSpace<T>) -> bool {
        bins.weights.is_some()
    }

    fn aux_memory_bytes<T: BinScalar>(bins: &BinSpace<T>) -> u64 {
        bins.memory_bytes()
    }

    fn dest_stream_bytes<T: BinScalar>(bins: &BinSpace<T>) -> u64 {
        bins.dest_ids.len() as u64 * 4
    }

    fn cursor<'a, T: BinScalar>(
        bins: &'a BinSpace<T>,
        png: &Png,
        s: u32,
        p: u32,
    ) -> WideCursor<'a> {
        let part = png.part(s);
        let base = png.did_region()[s as usize];
        let lo = (base + part.did_off[p as usize]) as usize;
        let hi = (base + part.did_off[p as usize + 1]) as usize;
        WideCursor {
            ids: bins.dest_ids[lo..hi].iter(),
        }
    }

    fn export_state<T: BinScalar>(bins: &BinSpace<T>) -> crate::snapshot::BinState {
        crate::snapshot::BinState::wide(bins.dest_ids.clone(), bins.weights.clone())
    }
}

/// 16-bit partition-local destination IDs (§6 future work).
pub struct CompactFormat;

/// Cursor over a compact segment.
pub struct CompactCursor<'a> {
    ids: std::slice::Iter<'a, u16>,
    p_base: u32,
}

impl DestCursor for CompactCursor<'_> {
    #[inline]
    fn next_entry(&mut self) -> Option<(u32, bool)> {
        self.ids.next().map(|&id| {
            (
                self.p_base + u32::from(id & crate::compact::ID_MASK16),
                id & crate::compact::MSB_FLAG16 != 0,
            )
        })
    }
}

impl BinFormat for CompactFormat {
    type Bins<T: BinScalar> = CompactBinSpace<T>;
    type Cursor<'a> = CompactCursor<'a>;

    const KIND: BinFormatKind = BinFormatKind::Compact;

    fn validate_layout(png: &Png) -> Result<(), PcpmError> {
        if png.dst_parts().partition_size() > crate::compact::MAX_COMPACT_PARTITION {
            return Err(PcpmError::BadConfig(
                "compact bins require partitions of at most 2^15 nodes (128 KB of values)",
            ));
        }
        Ok(())
    }

    fn build<T: BinScalar>(
        view: EdgeView<'_>,
        png: &Png,
        weights: Option<&[f32]>,
    ) -> CompactBinSpace<T> {
        let q = png.dst_parts().partition_size();
        assert!(
            q <= crate::compact::MAX_COMPACT_PARTITION,
            "partition size {q} exceeds the 15-bit compact range"
        );
        let (updates, dest_ids, weights) = build_fixed::<CompactEncode, T>(view, png, weights);
        CompactBinSpace {
            updates,
            dest_ids,
            weights,
        }
    }

    fn repair<T: BinScalar>(
        bins: &mut CompactBinSpace<T>,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        weights: Option<&[f32]>,
    ) {
        let (updates, dest_ids, new_weights) = repair_fixed::<CompactEncode, T>(
            &bins.dest_ids,
            bins.weights.as_deref(),
            view,
            png,
            old_did_region,
            touched,
            weights,
        );
        bins.updates = updates;
        bins.dest_ids = dest_ids;
        bins.weights = new_weights;
    }

    fn gather_from<A: Algebra>(
        png: &Png,
        bins: &CompactBinSpace<A::T>,
        y: &mut [A::T],
        kernel: KernelKind,
    ) {
        crate::compact::gather_compact_algebra::<A>(png, bins, y, kernel);
    }

    fn gather_many_from<A: Algebra>(
        png: &Png,
        bins: &CompactBinSpace<A::T>,
        updates: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        kernel: KernelKind,
    ) {
        crate::compact::gather_compact_algebra_many::<A>(png, bins, updates, ys, kernel);
    }

    fn updates_mut<T: BinScalar>(bins: &mut CompactBinSpace<T>) -> &mut [T] {
        &mut bins.updates
    }

    fn has_weights<T: BinScalar>(bins: &CompactBinSpace<T>) -> bool {
        bins.weights.is_some()
    }

    fn aux_memory_bytes<T: BinScalar>(bins: &CompactBinSpace<T>) -> u64 {
        bins.memory_bytes()
    }

    fn dest_stream_bytes<T: BinScalar>(bins: &CompactBinSpace<T>) -> u64 {
        bins.dest_ids.len() as u64 * 2
    }

    fn cursor<'a, T: BinScalar>(
        bins: &'a CompactBinSpace<T>,
        png: &Png,
        s: u32,
        p: u32,
    ) -> CompactCursor<'a> {
        let part = png.part(s);
        let base = png.did_region()[s as usize];
        let lo = (base + part.did_off[p as usize]) as usize;
        let hi = (base + part.did_off[p as usize + 1]) as usize;
        CompactCursor {
            ids: bins.dest_ids[lo..hi].iter(),
            p_base: p * png.dst_parts().partition_size(),
        }
    }

    fn export_state<T: BinScalar>(bins: &CompactBinSpace<T>) -> crate::snapshot::BinState {
        crate::snapshot::BinState::compact(bins.dest_ids.clone(), bins.weights.clone())
    }
}

/// Delta-encoded varint destination IDs (see [`crate::delta`]).
pub struct DeltaFormat;

impl BinFormat for DeltaFormat {
    type Bins<T: BinScalar> = DeltaPackedBins<T>;
    type Cursor<'a> = crate::delta::DeltaCursor<'a>;

    const KIND: BinFormatKind = BinFormatKind::Delta;

    fn build<T: BinScalar>(
        view: EdgeView<'_>,
        png: &Png,
        weights: Option<&[f32]>,
    ) -> DeltaPackedBins<T> {
        DeltaPackedBins::build(view, png, weights)
    }

    fn repair<T: BinScalar>(
        bins: &mut DeltaPackedBins<T>,
        view: EdgeView<'_>,
        png: &Png,
        old_did_region: &[u64],
        touched: &[bool],
        weights: Option<&[f32]>,
    ) {
        bins.repair(view, png, old_did_region, touched, weights);
    }

    fn gather_from<A: Algebra>(
        png: &Png,
        bins: &DeltaPackedBins<A::T>,
        y: &mut [A::T],
        kernel: KernelKind,
    ) {
        crate::delta::gather_delta_algebra::<A>(png, bins, y, kernel);
    }

    fn gather_many_from<A: Algebra>(
        png: &Png,
        bins: &DeltaPackedBins<A::T>,
        updates: &[&[A::T]],
        ys: &mut [&mut [A::T]],
        kernel: KernelKind,
    ) {
        crate::delta::gather_delta_algebra_many::<A>(png, bins, updates, ys, kernel);
    }

    fn updates_mut<T: BinScalar>(bins: &mut DeltaPackedBins<T>) -> &mut [T] {
        &mut bins.updates
    }

    fn has_weights<T: BinScalar>(bins: &DeltaPackedBins<T>) -> bool {
        bins.weights.is_some()
    }

    fn aux_memory_bytes<T: BinScalar>(bins: &DeltaPackedBins<T>) -> u64 {
        bins.memory_bytes()
    }

    fn dest_stream_bytes<T: BinScalar>(bins: &DeltaPackedBins<T>) -> u64 {
        bins.dest_stream_bytes()
    }

    fn cursor<'a, T: BinScalar>(
        bins: &'a DeltaPackedBins<T>,
        png: &Png,
        s: u32,
        p: u32,
    ) -> crate::delta::DeltaCursor<'a> {
        bins.cursor(png, s, p)
    }

    fn export_state<T: BinScalar>(bins: &DeltaPackedBins<T>) -> crate::snapshot::BinState {
        bins.export_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};
    use pcpm_graph::Csr;

    fn build_png(g: &Csr, q: u32) -> Png {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts)
    }

    /// Decodes every `(s, p)` segment of `F` into message lists through
    /// the cursor interface.
    fn decode_all<F: BinFormat>(png: &Png, bins: &F::Bins<f32>) -> Vec<Vec<Vec<u32>>> {
        let mut all = Vec::new();
        for s in png.src_parts().iter() {
            for p in png.dst_parts().iter() {
                let mut cur = F::cursor(bins, png, s, p);
                let mut msgs: Vec<Vec<u32>> = Vec::new();
                while let Some((dst, first)) = cur.next_entry() {
                    if first {
                        msgs.push(vec![dst]);
                    } else {
                        msgs.last_mut().expect("first entry flagged").push(dst);
                    }
                }
                all.push(msgs);
            }
        }
        all
    }

    #[test]
    fn every_format_decodes_the_same_messages() {
        let g = rmat(&RmatConfig::graph500(9, 8, 61)).unwrap();
        for q in [16u32, 100, 512] {
            let png = build_png(&g, q);
            let view = EdgeView::from_csr(&g);
            let wide = WideFormat::build::<f32>(view, &png, None);
            let compact = CompactFormat::build::<f32>(view, &png, None);
            let delta = DeltaFormat::build::<f32>(view, &png, None);
            let want = decode_all::<WideFormat>(&png, &wide);
            assert_eq!(want, decode_all::<CompactFormat>(&png, &compact), "q={q}");
            assert_eq!(want, decode_all::<DeltaFormat>(&png, &delta), "q={q}");
            // Entry counts: one decoded entry per raw edge.
            let total: usize = want.iter().flatten().map(Vec::len).sum();
            assert_eq!(total as u64, g.num_edges());
        }
    }

    #[test]
    fn dest_stream_strictly_shrinks_wide_to_delta() {
        let g = erdos_renyi(600, 6000, 7).unwrap();
        let png = build_png(&g, 128);
        let view = EdgeView::from_csr(&g);
        let wide = WideFormat::build::<f32>(view, &png, None);
        let compact = CompactFormat::build::<f32>(view, &png, None);
        let delta = DeltaFormat::build::<f32>(view, &png, None);
        let w = WideFormat::dest_stream_bytes(&wide);
        let c = CompactFormat::dest_stream_bytes(&compact);
        let d = DeltaFormat::dest_stream_bytes(&delta);
        assert_eq!(c * 2, w);
        assert!(d < c, "delta ({d}) must beat compact ({c})");
        assert!(dest_compression(g.num_edges(), d) > 2.0);
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in BinFormatKind::ALL {
            assert_eq!(kind.name().parse::<BinFormatKind>().unwrap(), kind);
        }
        assert!("warp".parse::<BinFormatKind>().is_err());
    }

    #[test]
    fn compact_layout_validation_rejects_oversized_partitions() {
        let n = 70_000u32;
        let g = Csr::from_edges(n, &[(0, 1), (0, 65_000)]).unwrap();
        let png = build_png(&g, n);
        assert!(CompactFormat::validate_layout(&png).is_err());
        assert!(WideFormat::validate_layout(&png).is_ok());
        assert!(DeltaFormat::validate_layout(&png).is_ok());
    }
}
