//! PCPM gather phase.
//!
//! Two implementations of the same reduction, both generic over the
//! gather [`Algebra`] (f32 PageRank sums, min-label, min-plus, …):
//!
//! - [`gather_algebra`] — Algorithm 4: the MSB of each destination ID is
//!   *added* to the update pointer instead of being branched on, so the
//!   inner loop has no unpredictable control flow (§3.4).
//! - [`gather_algebra_branchy`] — Algorithm 2's gather: `if MSB(id) != 0
//!   { pop update }`. Mispredicts on every message boundary; kept for the
//!   branch-avoidance ablation benches.
//!
//! [`gather_branch_avoiding`] and [`gather_branchy`] are the `(+, ×)` /
//! `f32` specializations the PageRank driver uses.
//!
//! Both are parallel over destination partitions: worker `p` owns the
//! partial-sum slice of partition `p` exclusively, so the phase is
//! lock-free. Updates and destination IDs are streamed segment by segment
//! (one segment per source partition, each contiguous).

use crate::algebra::Algebra;
use crate::bins::BinSpace;
use crate::kernel::{prefetch, KernelKind};
use crate::partition::split_by_lens;
use crate::png::Png;
use crate::ID_MASK;
use rayon::prelude::*;

/// Algorithm 4 over the `(+, ×)` semiring: branch-avoiding gather.
/// Accumulates all messages into `y` (which is zeroed first). `y.len()`
/// must equal the destination node count.
pub fn gather_branch_avoiding(png: &Png, bins: &BinSpace, y: &mut [f32]) {
    gather_algebra::<crate::algebra::PlusF32>(png, bins, y);
}

/// Algorithm 2 gather over the `(+, ×)` semiring: branch on the MSB flag
/// (ablation baseline).
pub fn gather_branchy(png: &Png, bins: &BinSpace, y: &mut [f32]) {
    gather_algebra_branchy::<crate::algebra::PlusF32>(png, bins, y);
}

/// Branch-avoiding gather (Algorithm 4) over an arbitrary [`Algebra`].
///
/// The reduction into `y` starts from `A::identity()` per node; callers
/// that need "keep my own value" semantics (label propagation, BFS)
/// combine `y` with the previous vertex state afterwards.
pub fn gather_algebra<A: Algebra>(png: &Png, bins: &BinSpace<A::T>, y: &mut [A::T]) {
    run_gather::<A>(png, bins, y, false, KernelKind::Scalar);
}

/// [`gather_algebra`] with an explicit kernel variant.
/// [`KernelKind::Unrolled`] applies entries 4-at-a-time (in exactly the
/// scalar order, so f32 output stays bit-identical) and prefetches the
/// next destID segment; any other value runs the scalar loop.
pub fn gather_algebra_kernel<A: Algebra>(
    png: &Png,
    bins: &BinSpace<A::T>,
    y: &mut [A::T],
    kernel: KernelKind,
) {
    run_gather::<A>(png, bins, y, false, kernel);
}

/// Branchy gather (Algorithm 2) over an arbitrary [`Algebra`] — the
/// branch-avoidance ablation, byte-identical output to
/// [`gather_algebra`]. Always scalar: the ablation exists to measure
/// the per-entry branch, which unrolling would blur.
pub fn gather_algebra_branchy<A: Algebra>(png: &Png, bins: &BinSpace<A::T>, y: &mut [A::T]) {
    run_gather::<A>(png, bins, y, true, KernelKind::Scalar);
}

/// Splits each of the `Q` output vectors by destination-partition `lens`
/// and transposes the result: `out[p][q]` is query `q`'s slice of
/// partition `p`. Shared by every format's multi-query gather so worker
/// `p` owns its region of *all* `Q` outputs in fully safe code.
pub(crate) fn split_queries_by_parts<'a, T>(
    ys: &'a mut [&mut [T]],
    lens: &[usize],
) -> Vec<Vec<&'a mut [T]>> {
    let mut per_part: Vec<Vec<&'a mut [T]>> =
        lens.iter().map(|_| Vec::with_capacity(ys.len())).collect();
    for y in ys.iter_mut() {
        for (p, s) in split_by_lens(y, lens).into_iter().enumerate() {
            per_part[p].push(s);
        }
    }
    per_part
}

/// Multi-query branch-avoiding gather (the SpMM inner loop): one pass
/// over the MSB-demarcated destID stream applies each decoded entry to
/// every query's accumulator, so the bin-stream bytes are read once per
/// batch instead of once per query. `updates[q]` must share the layout
/// `png_scatter` produces; each query's output is bit-identical to a
/// solo [`gather_algebra`] over the same update stream.
pub fn gather_algebra_many<A: Algebra>(
    png: &Png,
    bins: &BinSpace<A::T>,
    updates: &[&[A::T]],
    ys: &mut [&mut [A::T]],
    kernel: KernelKind,
) {
    assert_eq!(updates.len(), ys.len(), "one update stream per output");
    for y in ys.iter() {
        assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    }
    let lens = png.dst_parts().lens();
    let per_part = split_queries_by_parts(ys, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    per_part
        .into_par_iter()
        .enumerate()
        .for_each(|(p, mut ys_q)| {
            for ys in ys_q.iter_mut() {
                ys.fill(A::identity());
            }
            let base = png.dst_parts().range(p as u32).start as usize;
            for s in 0..k_src {
                let part = png.part(s);
                let ubase = png.upd_region()[s as usize] as usize;
                let dbase = png.did_region()[s as usize] as usize;
                let ulo = ubase + part.upd_off[p] as usize;
                let dlo = dbase + part.did_off[p] as usize;
                let dhi = dbase + part.did_off[p + 1] as usize;
                let ds = &bins.dest_ids[dlo..dhi];
                // The entry loop already amortizes over Q accumulators;
                // the unrolled kernel's win here is keeping the next
                // segment's head in flight.
                if unrolled && s + 1 < k_src {
                    let np = png.part(s + 1);
                    let nb = png.did_region()[s as usize + 1] as usize;
                    prefetch(&bins.dest_ids[nb + np.did_off[p] as usize..]);
                }
                match &bins.weights {
                    None => {
                        let mut up = usize::MAX;
                        for &id in ds {
                            up = up.wrapping_add((id >> 31) as usize);
                            let local = (id & ID_MASK) as usize - base;
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot = A::combine(*slot, A::extend(updates[q][ulo + up]));
                            }
                        }
                    }
                    Some(w) => {
                        let ws = &w[dlo..dhi];
                        let mut up = usize::MAX;
                        for (&id, &wt) in ds.iter().zip(ws) {
                            up = up.wrapping_add((id >> 31) as usize);
                            let local = (id & ID_MASK) as usize - base;
                            for (q, ys) in ys_q.iter_mut().enumerate() {
                                let slot = &mut ys[local];
                                *slot =
                                    A::combine(*slot, A::extend_weighted(wt, updates[q][ulo + up]));
                            }
                        }
                    }
                }
            }
        });
}

fn run_gather<A: Algebra>(
    png: &Png,
    bins: &BinSpace<A::T>,
    y: &mut [A::T],
    branchy: bool,
    kernel: KernelKind,
) {
    assert_eq!(y.len(), png.dst_parts().num_nodes() as usize, "y length");
    let lens = png.dst_parts().lens();
    let slices = split_by_lens(y, &lens);
    let k_src = png.src_parts().num_partitions();
    let unrolled = kernel == KernelKind::Unrolled;
    slices.into_par_iter().enumerate().for_each(|(p, ys)| {
        ys.fill(A::identity());
        let base = png.dst_parts().range(p as u32).start as usize;
        for s in 0..k_src {
            let part = png.part(s);
            let ubase = png.upd_region()[s as usize] as usize;
            let dbase = png.did_region()[s as usize] as usize;
            let ulo = ubase + part.upd_off[p] as usize;
            let uhi = ubase + part.upd_off[p + 1] as usize;
            let dlo = dbase + part.did_off[p] as usize;
            let dhi = dbase + part.did_off[p + 1] as usize;
            let us = &bins.updates[ulo..uhi];
            let ds = &bins.dest_ids[dlo..dhi];
            if unrolled && s + 1 < k_src {
                let np = png.part(s + 1);
                let nb = png.did_region()[s as usize + 1] as usize;
                prefetch(&bins.dest_ids[nb + np.did_off[p] as usize..]);
            }
            match (branchy, &bins.weights) {
                (false, None) if unrolled => {
                    let mut up = usize::MAX;
                    macro_rules! step {
                        ($id:expr) => {{
                            let id = $id;
                            up = up.wrapping_add((id >> 31) as usize);
                            let slot = &mut ys[(id & ID_MASK) as usize - base];
                            *slot = A::combine(*slot, A::extend(us[up]));
                        }};
                    }
                    let mut chunks = ds.chunks_exact(4);
                    for c in &mut chunks {
                        step!(c[0]);
                        step!(c[1]);
                        step!(c[2]);
                        step!(c[3]);
                    }
                    for &id in chunks.remainder() {
                        step!(id);
                    }
                }
                (false, None) => {
                    // `up` starts one before the segment; the first entry
                    // always carries the MSB flag and advances it to 0.
                    let mut up = usize::MAX;
                    for &id in ds {
                        up = up.wrapping_add((id >> 31) as usize);
                        let slot = &mut ys[(id & ID_MASK) as usize - base];
                        *slot = A::combine(*slot, A::extend(us[up]));
                    }
                }
                (false, Some(w)) if unrolled => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    macro_rules! step {
                        ($id:expr, $wt:expr) => {{
                            let id = $id;
                            up = up.wrapping_add((id >> 31) as usize);
                            let slot = &mut ys[(id & ID_MASK) as usize - base];
                            *slot = A::combine(*slot, A::extend_weighted($wt, us[up]));
                        }};
                    }
                    let mut dc = ds.chunks_exact(4);
                    let mut wc = ws.chunks_exact(4);
                    for (c, cw) in (&mut dc).zip(&mut wc) {
                        step!(c[0], cw[0]);
                        step!(c[1], cw[1]);
                        step!(c[2], cw[2]);
                        step!(c[3], cw[3]);
                    }
                    for (&id, &wt) in dc.remainder().iter().zip(wc.remainder()) {
                        step!(id, wt);
                    }
                }
                (false, Some(w)) => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    for (&id, &wt) in ds.iter().zip(ws) {
                        up = up.wrapping_add((id >> 31) as usize);
                        let slot = &mut ys[(id & ID_MASK) as usize - base];
                        *slot = A::combine(*slot, A::extend_weighted(wt, us[up]));
                    }
                }
                (true, None) => {
                    let mut up = usize::MAX;
                    for &id in ds {
                        if id >> 31 != 0 {
                            up = up.wrapping_add(1);
                        }
                        let slot = &mut ys[(id & ID_MASK) as usize - base];
                        *slot = A::combine(*slot, A::extend(us[up]));
                    }
                }
                (true, Some(w)) => {
                    let ws = &w[dlo..dhi];
                    let mut up = usize::MAX;
                    for (&id, &wt) in ds.iter().zip(ws) {
                        if id >> 31 != 0 {
                            up = up.wrapping_add(1);
                        }
                        let slot = &mut ys[(id & ID_MASK) as usize - base];
                        *slot = A::combine(*slot, A::extend_weighted(wt, us[up]));
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{BinFormat, WideFormat};
    use crate::partition::Partitioner;
    use crate::png::EdgeView;
    use crate::scatter::png_scatter;
    use pcpm_graph::{Csr, EdgeWeights};

    fn full_spmv(g: &Csr, q: u32, x: &[f32], branchy: bool) -> Vec<f32> {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        let png = Png::build(EdgeView::from_csr(g), parts, parts);
        let mut bins = WideFormat::build(EdgeView::from_csr(g), &png, None);
        png_scatter(&png, x, &mut bins.updates);
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        if branchy {
            gather_branchy(&png, &bins, &mut y);
        } else {
            gather_branch_avoiding(&png, &bins, &mut y);
        }
        y
    }

    /// Dense reference: y[t] = sum over edges (s -> t) of x[s].
    fn reference(g: &Csr, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            y[t as usize] += x[s as usize];
        }
        y
    }

    #[test]
    fn gather_computes_transposed_spmv() {
        let g = pcpm_graph::gen::erdos_renyi(200, 1500, 5).unwrap();
        let x: Vec<f32> = (0..200).map(|v| (v as f32 * 0.37).cos()).collect();
        for q in [1u32, 7, 50, 200, 1000] {
            let y = full_spmv(&g, q, &x, false);
            let want = reference(&g, &x);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-4, "q={q} node {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unrolled_kernel_bit_identical_to_scalar() {
        let g = pcpm_graph::gen::rmat(&pcpm_graph::gen::RmatConfig::graph500(9, 7, 17)).unwrap();
        let x: Vec<f32> = (0..g.num_nodes())
            .map(|v| (v as f32 * 0.61).sin())
            .collect();
        for q in [1u32, 13, 128, 4096] {
            let parts = Partitioner::new(g.num_nodes(), q).unwrap();
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            let mut bins = WideFormat::build(EdgeView::from_csr(&g), &png, None);
            png_scatter(&png, &x, &mut bins.updates);
            let n = g.num_nodes() as usize;
            let (mut ys, mut yu) = (vec![0.0f32; n], vec![0.0f32; n]);
            gather_algebra_kernel::<crate::algebra::PlusF32>(
                &png,
                &bins,
                &mut ys,
                KernelKind::Scalar,
            );
            gather_algebra_kernel::<crate::algebra::PlusF32>(
                &png,
                &bins,
                &mut yu,
                KernelKind::Unrolled,
            );
            assert_eq!(ys, yu, "q={q}");
        }
    }

    #[test]
    fn unrolled_weighted_kernel_bit_identical_to_scalar() {
        let g = pcpm_graph::gen::erdos_renyi(300, 2500, 9).unwrap();
        let w = EdgeWeights::random(&g, 4);
        let parts = Partitioner::new(300, 64).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let mut bins = WideFormat::build(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        let x: Vec<f32> = (0..300).map(|v| (v as f32 * 0.11).cos()).collect();
        png_scatter(&png, &x, &mut bins.updates);
        let (mut ys, mut yu) = (vec![0.0f32; 300], vec![0.0f32; 300]);
        gather_algebra_kernel::<crate::algebra::PlusF32>(&png, &bins, &mut ys, KernelKind::Scalar);
        gather_algebra_kernel::<crate::algebra::PlusF32>(
            &png,
            &bins,
            &mut yu,
            KernelKind::Unrolled,
        );
        assert_eq!(ys, yu);
    }

    #[test]
    fn branchy_equals_branch_avoiding() {
        let g = pcpm_graph::gen::rmat(&pcpm_graph::gen::RmatConfig::graph500(9, 6, 2)).unwrap();
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| v as f32 + 1.0).collect();
        let a = full_spmv(&g, 37, &x, false);
        let b = full_spmv(&g, 37, &x, true);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_gather_scales_by_edge_weight() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 3), (2, 1), (2, 3)]).unwrap();
        let w = EdgeWeights::new(&g, vec![2.0, 4.0, 8.0, 16.0]).unwrap();
        let parts = Partitioner::new(4, 2).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let mut bins = WideFormat::build(EdgeView::from_csr(&g), &png, Some(w.as_slice()));
        let x = vec![1.0f32, 0.0, 10.0, 0.0];
        png_scatter(&png, &x, &mut bins.updates);
        let mut y = vec![0.0f32; 4];
        gather_branch_avoiding(&png, &bins, &mut y);
        // y[1] = 2*x[0] + 8*x[2] = 82; y[3] = 4*x[0] + 16*x[2] = 164.
        assert_eq!(y, vec![0.0, 82.0, 0.0, 164.0]);
        let mut yb = vec![0.0f32; 4];
        gather_branchy(&png, &bins, &mut yb);
        assert_eq!(y, yb);
    }

    #[test]
    fn gather_zeroes_stale_output() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        let parts = Partitioner::new(2, 1).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let mut bins = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        png_scatter(&png, &[3.0, 0.0], &mut bins.updates);
        let mut y = vec![99.0f32; 2];
        gather_branch_avoiding(&png, &bins, &mut y);
        assert_eq!(y, vec![0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "y length")]
    fn wrong_output_length_panics() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        let parts = Partitioner::new(2, 1).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let bins = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        let mut y = vec![0.0f32; 5];
        gather_branch_avoiding(&png, &bins, &mut y);
    }
}
