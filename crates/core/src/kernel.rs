//! Runtime-dispatched gather/decode kernel variants.
//!
//! The gather inner loops come in two implementations per bin format:
//!
//! - [`KernelKind::Scalar`] — the original one-entry-at-a-time loops.
//!   For the delta format this decodes each varint inline inside the
//!   apply loop, paying a data-dependent branch per encoded byte.
//! - [`KernelKind::Unrolled`] — batched kernels. The delta path first
//!   decodes a whole bin segment into a reusable scratch buffer with a
//!   branch-reduced 1–2-byte fast path, then applies the decoded
//!   entries in a 4-wide unrolled loop; the fixed-width paths unroll
//!   the apply loop 4×. Entries are always applied in exactly the
//!   scalar order, so f32 results are bit-identical by construction.
//!
//! [`KernelKind::Auto`] (the default) resolves to one of the concrete
//! kernels at pipeline-build time via [`resolve_auto`], a closed-form
//! cost comparison grounded in the paper's cache-line/DRAM model. The
//! same decision function backs `pcpm_memsim::predict_kernel`, so the
//! simulator's prediction and the engine's auto-selection can never
//! disagree.

use crate::format::BinFormatKind;
use std::fmt;
use std::str::FromStr;

/// Which gather/decode kernel variant the pipeline runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Pick the predicted-fastest concrete kernel at build time.
    #[default]
    Auto,
    /// The original scalar loops (asserted-identical fallback).
    Scalar,
    /// Batched segment decode + 4-wide unrolled apply loops.
    Unrolled,
}

impl KernelKind {
    /// Every kernel variant, in dispatch order.
    pub const ALL: [KernelKind; 3] = [KernelKind::Auto, KernelKind::Scalar, KernelKind::Unrolled];

    /// Stable lowercase name (CLI / JSON / report).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled => "unrolled",
        }
    }

    /// Resolves `Auto` against graph statistics; concrete kinds pass
    /// through unchanged. The result is never [`KernelKind::Auto`].
    pub fn resolve(
        self,
        format: BinFormatKind,
        raw_edges: u64,
        k_src: u32,
        k_dst: u32,
    ) -> KernelKind {
        match self {
            KernelKind::Auto => resolve_auto(format, raw_edges, k_src, k_dst),
            concrete => concrete,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelKind::Auto),
            "scalar" => Ok(KernelKind::Scalar),
            "unrolled" => Ok(KernelKind::Unrolled),
            other => Err(format!(
                "unknown kernel '{other}' (expected auto|scalar|unrolled)"
            )),
        }
    }
}

/// Software-prefetch hint: touches the head of `data` so its first
/// cache line is in flight while the current segment finishes. Safe
/// (no `core::arch` intrinsics — the crate forbids unsafe): a plain
/// read the optimizer must keep because of `black_box`. Gated to
/// 64-bit targets, where the extra load is measurably free; elsewhere
/// it compiles to nothing.
#[cfg(target_pointer_width = "64")]
#[inline(always)]
pub(crate) fn prefetch<T: Copy>(data: &[T]) {
    if let Some(&head) = data.first() {
        core::hint::black_box(head);
    }
}

/// No-op fallback on non-64-bit targets.
#[cfg(not(target_pointer_width = "64"))]
#[inline(always)]
pub(crate) fn prefetch<T: Copy>(_data: &[T]) {}

/// Scratch bytes per decoded delta entry (one `u64` each).
pub const SCRATCH_BYTES_PER_EDGE: u64 = 8;

/// Cache budget for the delta scratch buffer: one segment's decoded
/// entries should stay resident while the apply loop re-reads them.
/// 256 KiB matches the paper's per-partition cache budget (a typical
/// L2 slice) that `PcpmConfig::default().partition_bytes` targets.
pub const SCRATCH_CACHE_BUDGET: u64 = 256 * 1024;

/// The shared auto-selection decision: given the bin format and graph
/// shape, predict which concrete kernel wins and return it.
///
/// The model (constants calibrated against `BENCH_kernels.json`):
///
/// - **Fixed-width formats (wide/compact):** the unrolled apply loop
///   strictly reduces per-entry loop overhead and touches no extra
///   memory, so `Unrolled` always wins.
/// - **Delta:** the batched decoder trades the per-byte decode branch
///   for a scratch-buffer round trip of [`SCRATCH_BYTES_PER_EDGE`]
///   bytes per entry. While the average segment's scratch fits in
///   cache ([`SCRATCH_CACHE_BUDGET`]) that round trip is nearly free
///   and `Unrolled` wins; once a segment's decoded form spills, every
///   entry pays a DRAM write+read that outweighs the saved branch
///   misses, so `Scalar` wins.
///
/// Never returns [`KernelKind::Auto`].
pub fn resolve_auto(format: BinFormatKind, raw_edges: u64, k_src: u32, k_dst: u32) -> KernelKind {
    match format {
        BinFormatKind::Wide | BinFormatKind::Compact => KernelKind::Unrolled,
        BinFormatKind::Delta => {
            let segments = u64::from(k_src.max(1)) * u64::from(k_dst.max(1));
            let avg_segment_edges = raw_edges / segments.max(1);
            if avg_segment_edges * SCRATCH_BYTES_PER_EDGE <= SCRATCH_CACHE_BUDGET {
                KernelKind::Unrolled
            } else {
                KernelKind::Scalar
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in KernelKind::ALL {
            assert_eq!(k.name().parse::<KernelKind>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        assert!("simd".parse::<KernelKind>().is_err());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(KernelKind::default(), KernelKind::Auto);
    }

    #[test]
    fn resolve_never_returns_auto() {
        for fmt in BinFormatKind::ALL {
            for edges in [0u64, 1, 1 << 20, 1 << 40] {
                for k in [1u32, 16, 1024] {
                    let r = KernelKind::Auto.resolve(fmt, edges, k, k);
                    assert_ne!(r, KernelKind::Auto, "{fmt:?} {edges} {k}");
                }
            }
        }
    }

    #[test]
    fn concrete_kinds_pass_through() {
        for fmt in BinFormatKind::ALL {
            assert_eq!(
                KernelKind::Scalar.resolve(fmt, 1 << 30, 2, 2),
                KernelKind::Scalar
            );
            assert_eq!(
                KernelKind::Unrolled.resolve(fmt, 1 << 30, 2, 2),
                KernelKind::Unrolled
            );
        }
    }

    #[test]
    fn fixed_width_formats_always_unroll() {
        for fmt in [BinFormatKind::Wide, BinFormatKind::Compact] {
            assert_eq!(resolve_auto(fmt, u64::MAX / 8, 1, 1), KernelKind::Unrolled);
        }
    }

    #[test]
    fn delta_spills_to_scalar_on_huge_segments() {
        // Average segment fits the scratch budget -> unrolled.
        assert_eq!(
            resolve_auto(BinFormatKind::Delta, 1 << 20, 8, 8),
            KernelKind::Unrolled
        );
        // One enormous segment (no partitioning) -> decoded scratch
        // spills cache -> scalar.
        assert_eq!(
            resolve_auto(BinFormatKind::Delta, 1 << 30, 1, 1),
            KernelKind::Scalar
        );
    }
}
