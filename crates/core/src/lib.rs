//! Partition-Centric Processing Methodology (PCPM).
//!
//! This crate implements the paper's primary contribution: a
//! partition-centric Gather-Apply-Scatter engine for PageRank and generic
//! SpMV that
//!
//! 1. propagates **one update per (source node, destination partition)**
//!    pair instead of one per edge (§3.2),
//! 2. stores messages in statically pre-allocated, per-partition **bins**
//!    whose disjoint write offsets make both phases lock-free (§3.1),
//! 3. uses the **PNG** (Partition-Node bipartite Graph) data layout to
//!    stream updates one bin at a time with no unused-edge reads and no
//!    random DRAM writes (§3.3),
//! 4. replaces the data-dependent MSB branch in the gather phase with
//!    **branch-avoiding** pointer arithmetic (§3.4).
//!
//! The main entry point is the unified [`backend::Engine`], built via
//! [`Engine::builder`](backend::Engine::builder): one algebra-generic
//! execution API in front of pluggable [`backend::Backend`] dataplanes
//! (the PCPM pipeline plus the pull / push / edge-centric baselines).
//! [`pagerank::pagerank`] is the PageRank driver on top of it, and
//! [`spmv::SpmvMatrix`] is the weighted / non-square generalisation of
//! §3.5.
//!
//! # Examples
//!
//! Run one scatter→gather round through the builder API:
//!
//! ```
//! use pcpm_graph::Csr;
//! use pcpm_core::{Engine, BackendKind};
//! use pcpm_core::algebra::PlusF32;
//!
//! let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]).unwrap();
//! let mut engine = Engine::<PlusF32>::builder(&g)
//!     .partition_bytes(8)
//!     .backend(BackendKind::Pcpm)
//!     .build()
//!     .unwrap();
//! let mut y = vec![0.0f32; 4];
//! engine.step(&[1.0, 1.0, 1.0, 1.0], &mut y).unwrap();
//! assert_eq!(y, vec![2.0, 1.0, 1.0, 0.0]);
//! ```
//!
//! The PageRank driver threads the same engine, reporting the PNG
//! compression ratio alongside the scores:
//!
//! ```
//! use pcpm_graph::Csr;
//! use pcpm_core::{pagerank::pagerank, config::PcpmConfig};
//!
//! let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]).unwrap();
//! let result = pagerank(&g, &PcpmConfig::default()).unwrap();
//! assert_eq!(result.scores.len(), 4);
//! let total: f64 = result.scores.iter().map(|&x| f64::from(x)).sum();
//! assert!(total > 0.5 && total <= 1.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod backend;
pub mod bins;
pub mod compact;
pub mod config;
pub mod delta;
pub mod engine;
pub mod error;
pub mod format;
pub mod gather;
pub mod kernel;
pub mod pagerank;
pub mod partition;
pub mod png;
pub mod pr;
pub mod scatter;
pub mod snapshot;
pub mod spmv;
pub mod telemetry;
pub mod update;

pub use backend::{
    Backend, BackendKind, Engine, EngineBuilder, ExecutionReport, SnapshotEngineBuilder,
};
pub use config::PcpmConfig;
pub use delta::DeltaPackedBins;
#[allow(deprecated)]
pub use engine::PcpmEngine;
pub use engine::{FormatPipeline, GatherKind, PcpmPipeline, ScatterKind};
pub use error::PcpmError;
pub use error::SnapshotError;
pub use format::{BinFormat, BinFormatKind, CompactFormat, DeltaFormat, DestCursor, WideFormat};
pub use kernel::KernelKind;
pub use partition::Partitioner;
pub use png::Png;
pub use pr::{PhaseTimings, PrResult};
pub use snapshot::Snapshot;
pub use update::{EdgeOp, EdgeUpdate, RepairStats, UpdateBatch, UpdateOutcome};

/// Bit mask extracting the true node ID from a destination-bin entry
/// (clears the MSB demarcation flag, paper §3.2).
pub const ID_MASK: u32 = 0x7FFF_FFFF;

/// MSB flag marking the first destination ID of a message.
pub const MSB_FLAG: u32 = 0x8000_0000;
