//! PCPM PageRank driver (Algorithms 2–4 end to end) on the unified
//! [`Engine`] API.
//!
//! Implements the iteration of Eq. 1 with the *scaled-value* convention of
//! Algorithm 2: the propagated array `x` holds `PR(v) / |No(v)|`, so the
//! scatter phase copies values verbatim and the apply phase folds both the
//! damping update and the next iteration's out-degree division into one
//! parallel pass. Dangling nodes propagate nothing; their mass is dropped
//! (the paper's convention) unless
//! [`PcpmConfig::redistribute_dangling`] is set.
//!
//! [`pagerank_on`] runs the same driver over any [`BackendKind`] — the
//! apples-to-apples kernel comparison the paper's Fig. 7 makes.

use crate::algebra::PlusF32;
use crate::backend::{BackendKind, Engine};
use crate::config::PcpmConfig;
use crate::engine::{GatherKind, PcpmPipeline, ScatterKind};
use crate::error::PcpmError;
use crate::pr::{PhaseTimings, PrResult};
use pcpm_graph::Csr;
use rayon::prelude::*;

/// Phase-implementation choices for ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcpmVariant {
    /// Scatter implementation.
    pub scatter: ScatterKind,
    /// Gather implementation.
    pub gather: GatherKind,
}

/// Runs PageRank with the paper's full design (PNG scatter +
/// branch-avoiding gather).
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::erdos_renyi;
/// use pcpm_core::{pagerank::pagerank, PcpmConfig};
///
/// let g = erdos_renyi(100, 600, 1).unwrap();
/// let r = pagerank(&g, &PcpmConfig::default().with_iterations(5)).unwrap();
/// assert_eq!(r.iterations, 5);
/// ```
pub fn pagerank(graph: &Csr, cfg: &PcpmConfig) -> Result<PrResult, PcpmError> {
    pagerank_on(graph, cfg, BackendKind::Pcpm)
}

/// Runs PageRank through any backend dataplane of the unified engine.
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::erdos_renyi;
/// use pcpm_core::{pagerank::pagerank_on, BackendKind, PcpmConfig};
///
/// let g = erdos_renyi(100, 600, 1).unwrap();
/// let cfg = PcpmConfig::default().with_iterations(5);
/// let pcpm = pagerank_on(&g, &cfg, BackendKind::Pcpm).unwrap();
/// let pull = pagerank_on(&g, &cfg, BackendKind::Pull).unwrap();
/// for (a, b) in pcpm.scores.iter().zip(&pull.scores) {
///     assert!((a - b).abs() < 1e-6);
/// }
/// ```
pub fn pagerank_on(
    graph: &Csr,
    cfg: &PcpmConfig,
    backend: BackendKind,
) -> Result<PrResult, PcpmError> {
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .backend(backend)
        .build()?;
    pagerank_with_unified_engine(graph, cfg, &mut engine, None)
}

/// Runs PageRank with explicit scatter/gather variants (the PCPM phase
/// ablations).
pub fn pagerank_with_variant(
    graph: &Csr,
    cfg: &PcpmConfig,
    variant: PcpmVariant,
) -> Result<PrResult, PcpmError> {
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(*cfg)
        .scatter(variant.scatter)
        .gather(variant.gather)
        .build()?;
    pagerank_with_unified_engine(graph, cfg, &mut engine, None)
}

/// Runs PageRank warm-started from a previous score vector.
///
/// Incremental workloads (a graph that gained a few edges, or a damping
/// sweep) converge in far fewer iterations from a nearby fixed point than
/// from the uniform vector. Pair with [`PcpmConfig::with_tolerance`].
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::erdos_renyi;
/// use pcpm_core::{pagerank::{pagerank, pagerank_warm_start}, PcpmConfig};
///
/// let g = erdos_renyi(200, 1200, 1).unwrap();
/// let cfg = PcpmConfig::default().with_iterations(100).with_tolerance(1e-9);
/// let cold = pagerank(&g, &cfg).unwrap();
/// let warm = pagerank_warm_start(&g, &cfg, &cold.scores).unwrap();
/// assert!(warm.iterations <= 2, "already at the fixed point");
/// ```
pub fn pagerank_warm_start(
    graph: &Csr,
    cfg: &PcpmConfig,
    initial: &[f32],
) -> Result<PrResult, PcpmError> {
    if initial.len() != graph.num_nodes() as usize {
        return Err(PcpmError::DimensionMismatch {
            expected: graph.num_nodes() as usize,
            got: initial.len(),
        });
    }
    let mut engine = Engine::<PlusF32>::builder(graph).config(*cfg).build()?;
    pagerank_with_unified_engine(graph, cfg, &mut engine, Some(initial))
}

/// Runs PageRank on a pre-built unified engine (lets callers amortize
/// pre-processing across runs, or inject an external [`crate::Backend`]).
pub fn pagerank_with_unified_engine(
    graph: &Csr,
    cfg: &PcpmConfig,
    engine: &mut Engine<PlusF32>,
    initial: Option<&[f32]>,
) -> Result<PrResult, PcpmError> {
    let n = graph.num_nodes() as usize;
    if engine.num_src() as usize != n || engine.num_dst() as usize != n {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    cfg.validate()?;
    let report = engine.report();
    // The whole loop runs on the engine-owned pool: step, apply and
    // dangling phases share it, keeping thread-pinned runs deterministic.
    let core = engine.run(|engine| iterate(graph, cfg, initial, |x, y| engine.step(x, y)))?;
    Ok(assemble(core, report.preprocess, report.compression_ratio))
}

/// Runs PageRank on a pre-built PCPM pipeline with per-call phase
/// variants (the benches time phases in isolation through this).
pub fn pagerank_with_engine(
    graph: &Csr,
    cfg: &PcpmConfig,
    variant: PcpmVariant,
    engine: &mut PcpmPipeline<PlusF32>,
) -> Result<PrResult, PcpmError> {
    let n = graph.num_nodes() as usize;
    if engine.num_src() as usize != n || engine.num_dst() as usize != n {
        return Err(PcpmError::DimensionMismatch {
            expected: n,
            got: engine.num_src() as usize,
        });
    }
    cfg.validate()?;
    let preprocess = engine.preprocess_time();
    let ratio = engine.compression_ratio();
    let threads = cfg.threads;
    let core = crate::config::run_with_threads(threads, || {
        iterate(graph, cfg, None, |x, y| {
            engine.spmv_with(x, y, variant.scatter, variant.gather, Some(graph))
        })
    })?;
    Ok(assemble(core, preprocess, Some(ratio)))
}

/// Everything the iteration loop produces before the engine report is
/// folded in.
struct DriverCore {
    scores: Vec<f32>,
    iterations: usize,
    converged: bool,
    last_delta: f64,
    timings: PhaseTimings,
}

fn assemble(
    core: DriverCore,
    preprocess: std::time::Duration,
    compression_ratio: Option<f64>,
) -> PrResult {
    PrResult {
        scores: core.scores,
        iterations: core.iterations,
        converged: core.converged,
        last_delta: core.last_delta,
        timings: core.timings,
        preprocess,
        compression_ratio,
    }
}

/// The damping / dangling / convergence loop, generic over the step.
fn iterate<F>(
    graph: &Csr,
    cfg: &PcpmConfig,
    initial: Option<&[f32]>,
    mut step: F,
) -> Result<DriverCore, PcpmError>
where
    F: FnMut(&[f32], &mut [f32]) -> Result<PhaseTimings, PcpmError>,
{
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Ok(DriverCore {
            scores: vec![],
            iterations: 0,
            converged: true,
            last_delta: 0.0,
            timings: PhaseTimings::default(),
        });
    }
    let damping = cfg.damping as f32;
    let base = ((1.0 - cfg.damping) / n as f64) as f32;
    let out_deg = graph.out_degrees();
    let inv_deg: Vec<f32> = out_deg
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
        .collect();

    let mut pr: Vec<f32> = match initial {
        Some(init) => init.to_vec(),
        None => vec![1.0 / n as f32; n],
    };
    // Scaled propagation values x[v] = PR(v) / |No(v)|.
    let mut x: Vec<f32> = pr.iter().zip(&inv_deg).map(|(&p, &i)| p * i).collect();
    let mut sums: Vec<f32> = vec![0.0; n];

    let mut timings = PhaseTimings::default();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut last_delta = f64::INFINITY;

    for _ in 0..cfg.iterations {
        timings += step(&x, &mut sums)?;
        iterations += 1;

        let t0 = crate::telemetry::stopwatch();
        let dangling_bonus = if cfg.redistribute_dangling {
            let mass: f64 = pr
                .par_iter()
                .zip(&out_deg)
                .filter(|(_, &d)| d == 0)
                .map(|(&p, _)| f64::from(p))
                .sum();
            (cfg.damping * mass / n as f64) as f32
        } else {
            0.0
        };
        let delta: f64 = pr
            .par_iter_mut()
            .zip(&sums)
            .map(|(p, &s)| {
                let new = base + damping * s + dangling_bonus;
                let d = f64::from((new - *p).abs());
                *p = new;
                d
            })
            .sum();
        x.par_iter_mut()
            .zip(&pr)
            .zip(&inv_deg)
            .for_each(|((xv, &p), &i)| *xv = p * i);
        timings.apply += t0.elapsed();

        last_delta = delta;
        if let Some(tol) = cfg.tolerance {
            if delta < tol {
                converged = true;
                break;
            }
        }
    }

    Ok(DriverCore {
        scores: pr,
        iterations,
        converged,
        last_delta,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GatherKind, ScatterKind};
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};

    /// Serial f64 oracle with the same dangling convention.
    fn oracle(graph: &Csr, cfg: &PcpmConfig) -> Vec<f64> {
        let n = graph.num_nodes() as usize;
        let d = cfg.damping;
        let mut pr = vec![1.0 / n as f64; n];
        let out_deg = graph.out_degrees();
        for _ in 0..cfg.iterations {
            let mut sums = vec![0.0f64; n];
            for (s, t) in graph.edges() {
                sums[t as usize] += pr[s as usize] / f64::from(out_deg[s as usize]);
            }
            let dangling: f64 = if cfg.redistribute_dangling {
                (0..n)
                    .filter(|&v| out_deg[v] == 0)
                    .map(|v| pr[v])
                    .sum::<f64>()
                    * d
                    / n as f64
            } else {
                0.0
            };
            for v in 0..n {
                pr[v] = (1.0 - d) / n as f64 + d * sums[v] + dangling;
            }
        }
        pr
    }

    fn assert_close(scores: &[f32], want: &[f64], tol: f64) {
        let scale = want.iter().cloned().fold(0.0f64, f64::max);
        for (i, (&a, &b)) in scores.iter().zip(want).enumerate() {
            assert!(
                (f64::from(a) - b).abs() <= tol * scale,
                "node {i}: {a} vs {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn matches_oracle_on_er_graph() {
        let g = erdos_renyi(500, 4000, 12).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(10)
            .with_partition_bytes(128 * 4);
        let r = pagerank(&g, &cfg).unwrap();
        assert_close(&r.scores, &oracle(&g, &cfg), 1e-3);
    }

    #[test]
    fn matches_oracle_on_skewed_graph() {
        let g = rmat(&RmatConfig::graph500(9, 8, 4)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(8)
            .with_partition_bytes(64 * 4);
        let r = pagerank(&g, &cfg).unwrap();
        assert_close(&r.scores, &oracle(&g, &cfg), 1e-3);
    }

    #[test]
    fn every_backend_matches_the_oracle() {
        let g = rmat(&RmatConfig::graph500(9, 8, 27)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(8)
            .with_partition_bytes(128 * 4);
        let want = oracle(&g, &cfg);
        for kind in BackendKind::ALL {
            let r = pagerank_on(&g, &cfg, kind).unwrap();
            assert_close(&r.scores, &want, 1e-3);
        }
    }

    #[test]
    fn dangling_redistribution_conserves_mass() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap(); // 3 dangles
        let mut cfg = PcpmConfig::default().with_iterations(30);
        cfg.redistribute_dangling = true;
        let r = pagerank(&g, &cfg).unwrap();
        assert!((r.mass() - 1.0).abs() < 1e-3, "mass {}", r.mass());
        assert_close(&r.scores, &oracle(&g, &cfg), 1e-3);
    }

    #[test]
    fn without_redistribution_mass_decays() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let cfg = PcpmConfig::default().with_iterations(10);
        let r = pagerank(&g, &cfg).unwrap();
        assert!(r.mass() < 1.0);
    }

    #[test]
    fn tolerance_stops_early() {
        let g = erdos_renyi(200, 1600, 3).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(100)
            .with_tolerance(1e-6);
        let r = pagerank(&g, &cfg).unwrap();
        assert!(r.converged);
        assert!(r.iterations < 100);
        assert!(r.last_delta < 1e-6);
    }

    #[test]
    fn all_variants_agree_exactly() {
        let g = rmat(&RmatConfig::graph500(8, 6, 9)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(5)
            .with_partition_bytes(50 * 4);
        let mut results = Vec::new();
        for scatter in [ScatterKind::Png, ScatterKind::CsrTraversal] {
            for gather in [GatherKind::BranchAvoiding, GatherKind::Branchy] {
                let r = pagerank_with_variant(&g, &cfg, PcpmVariant { scatter, gather }).unwrap();
                results.push(r.scores);
            }
        }
        for other in &results[1..] {
            assert_eq!(&results[0], other);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let r = pagerank(&g, &PcpmConfig::default()).unwrap();
        assert!(r.scores.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn uniform_cycle_has_uniform_rank() {
        // A directed cycle: every node must end at exactly 1/n.
        let n = 64u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = Csr::from_edges(n, &edges).unwrap();
        let r = pagerank(&g, &PcpmConfig::default().with_iterations(20)).unwrap();
        for &s in &r.scores {
            assert!((f64::from(s) - 1.0 / f64::from(n)).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_converges_faster_after_small_edit() {
        // Add a handful of edges, restart from the old fixed point: must
        // converge in fewer iterations than from scratch.
        let g = rmat(&RmatConfig::graph500(9, 8, 19)).unwrap();
        let cfg = PcpmConfig::default()
            .with_iterations(200)
            .with_tolerance(1e-8);
        let cold = pagerank(&g, &cfg).unwrap();
        assert!(cold.converged);
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.extend([(1, 2), (2, 1), (3, 4)]);
        let g2 = Csr::from_edges(g.num_nodes(), &edges).unwrap();
        let warm = pagerank_warm_start(&g2, &cfg, &cold.scores).unwrap();
        let cold2 = pagerank(&g2, &cfg).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations < cold2.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold2.iterations
        );
        // Same fixed point either way.
        for (a, b) in warm.scores.iter().zip(&cold2.scores) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn warm_start_validates_length() {
        let g = erdos_renyi(10, 30, 1).unwrap();
        assert!(pagerank_warm_start(&g, &PcpmConfig::default(), &[0.1; 3]).is_err());
    }

    #[test]
    fn explicit_thread_count_matches_default() {
        let g = erdos_renyi(300, 2000, 6).unwrap();
        let cfg1 = PcpmConfig::default().with_iterations(5);
        let cfg2 = cfg1.with_threads(2);
        let r1 = pagerank(&g, &cfg1).unwrap();
        let r2 = pagerank(&g, &cfg2).unwrap();
        // Same deterministic per-partition accumulation order regardless
        // of thread count.
        assert_eq!(r1.scores, r2.scores);
    }

    #[test]
    fn prebuilt_pipeline_entry_still_works() {
        let g = erdos_renyi(200, 1200, 2).unwrap();
        let cfg = PcpmConfig::default().with_iterations(5);
        let mut pipeline = PcpmPipeline::new(&g, &cfg).unwrap();
        let a = pagerank_with_engine(&g, &cfg, PcpmVariant::default(), &mut pipeline).unwrap();
        let b = pagerank(&g, &cfg).unwrap();
        assert_eq!(a.scores, b.scores);
    }
}
