//! Equisized index-based graph partitioning (paper §3.1).
//!
//! Partition `P_i` owns all vertices with index in `[i*q, (i+1)*q)`. The
//! paper deliberately uses this trivial scheme — partition membership is a
//! single shift/divide, and the abstraction still captures most of the
//! benefit; smarter edge partitioners are future work (§6).

use crate::error::PcpmError;
use std::ops::Range;

/// Maps node IDs to equisized contiguous partitions.
///
/// # Examples
///
/// ```
/// use pcpm_core::Partitioner;
///
/// let p = Partitioner::new(10, 4).unwrap();
/// assert_eq!(p.num_partitions(), 3);
/// assert_eq!(p.partition_of(7), 1);
/// assert_eq!(p.range(2), 8..10); // last partition is short
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partitioner {
    num_nodes: u32,
    size: u32,
    num_partitions: u32,
}

impl Partitioner {
    /// Creates a partitioner with `size` nodes per partition.
    pub fn new(num_nodes: u32, size: u32) -> Result<Self, PcpmError> {
        if size == 0 {
            return Err(PcpmError::PartitionTooSmall);
        }
        let num_partitions = if num_nodes == 0 {
            0
        } else {
            (num_nodes - 1) / size + 1
        };
        Ok(Self {
            num_nodes,
            size,
            num_partitions,
        })
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Partition size `q` in nodes (the last partition may be shorter).
    #[inline]
    pub fn partition_size(&self) -> u32 {
        self.size
    }

    /// Number of partitions `k`.
    #[inline]
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// The partition owning node `v`.
    #[inline]
    pub fn partition_of(&self, v: u32) -> u32 {
        debug_assert!(v < self.num_nodes);
        v / self.size
    }

    /// The node range of partition `p` (clamped for the last partition).
    #[inline]
    pub fn range(&self, p: u32) -> Range<u32> {
        debug_assert!(p < self.num_partitions);
        let lo = p * self.size;
        let hi = (lo + self.size).min(self.num_nodes);
        lo..hi
    }

    /// Number of nodes in partition `p`.
    #[inline]
    pub fn len(&self, p: u32) -> u32 {
        let r = self.range(p);
        r.end - r.start
    }

    /// True when there are no partitions (empty graph).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_partitions == 0
    }

    /// Iterator over all partition indices.
    pub fn iter(&self) -> Range<u32> {
        0..self.num_partitions
    }

    /// The per-partition node counts as lengths, for slice splitting.
    pub fn lens(&self) -> Vec<usize> {
        self.iter().map(|p| self.len(p) as usize).collect()
    }
}

/// Splits `slice` into consecutive sub-slices of the given lengths.
///
/// Used to hand each partition its disjoint region of a shared array in
/// fully safe code (the scatter phase writes per-source-partition regions,
/// the gather phase per-destination-partition regions).
///
/// # Panics
///
/// Panics if the lengths do not sum to `slice.len()`.
pub fn split_by_lens<'a, T>(mut slice: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, tail) = slice.split_at_mut(len);
        out.push(head);
        slice = tail;
    }
    assert!(slice.is_empty(), "lengths must cover the whole slice");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = Partitioner::new(8, 4).unwrap();
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..8);
        assert_eq!(p.len(1), 4);
    }

    #[test]
    fn ragged_last_partition() {
        let p = Partitioner::new(10, 4).unwrap();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.range(2), 8..10);
        assert_eq!(p.len(2), 2);
        assert_eq!(p.lens(), vec![4, 4, 2]);
    }

    #[test]
    fn partition_of_is_consistent_with_range() {
        let p = Partitioner::new(100, 7).unwrap();
        for v in 0..100 {
            let part = p.partition_of(v);
            assert!(p.range(part).contains(&v));
        }
    }

    #[test]
    fn zero_nodes() {
        let p = Partitioner::new(0, 4).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.num_partitions(), 0);
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(Partitioner::new(4, 0), Err(PcpmError::PartitionTooSmall));
    }

    #[test]
    fn oversize_partition_covers_everything() {
        let p = Partitioner::new(5, 1000).unwrap();
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.range(0), 0..5);
    }

    #[test]
    fn split_by_lens_partitions_slice() {
        let mut data = [1, 2, 3, 4, 5];
        let parts = split_by_lens(&mut data, &[2, 0, 3]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[1, 2]);
        assert_eq!(parts[1], &[] as &[i32]);
        assert_eq!(parts[2], &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "cover the whole slice")]
    fn split_by_lens_rejects_short_cover() {
        let mut data = [1, 2, 3];
        let _ = split_by_lens(&mut data, &[1]);
    }
}
