//! The Partition-Node bipartite Graph (PNG) data layout (paper §3.3).
//!
//! For each *source* partition `s`, PNG stores a transposed bipartite
//! graph between the destination partitions `P` and the nodes of `s`:
//! row `p` of [`BipartitePart`] lists every node of `s` that has at least
//! one out-neighbor in destination partition `p` (in ascending node
//! order). This single structure realizes both effects of §3.3:
//!
//! - **Eff1** — edges from a node to the same partition collapse into one
//!   compressed edge, so the scatter phase never reads unused edges;
//! - **Eff2** — rows are indexed by partition (range `k`), so the
//!   transposed CSR needs only `k + 1` offsets per partition, `O(k²)`
//!   total.
//!
//! Compression and transposition are merged into one counting pass and one
//! filling pass, parallel over source partitions, exactly as described in
//! the paper.

use crate::partition::Partitioner;
use rayon::prelude::*;

/// A read-only view of an edge structure: sources in `[0, num_src)`, each
/// with a **sorted** target list in `[0, num_dst)`.
///
/// [`pcpm_graph::Csr`] provides the square case; the SpMV front end builds
/// rectangular views. Sorted target lists are a hard requirement: partition
/// runs must be contiguous for the single-scan construction and for the
/// MSB message demarcation.
#[derive(Clone, Copy, Debug)]
pub struct EdgeView<'a> {
    num_src: u32,
    num_dst: u32,
    offsets: &'a [u64],
    targets: &'a [u32],
}

impl<'a> EdgeView<'a> {
    /// Wraps raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len() != num_src + 1` or the final offset does
    /// not equal `targets.len()` (these are programmer errors, not data
    /// errors — both front ends validate their inputs first).
    pub fn new(num_src: u32, num_dst: u32, offsets: &'a [u64], targets: &'a [u32]) -> Self {
        assert_eq!(offsets.len(), num_src as usize + 1, "offsets length");
        assert_eq!(
            *offsets.last().expect("offsets non-empty") as usize,
            targets.len(),
            "final offset"
        );
        Self {
            num_src,
            num_dst,
            offsets,
            targets,
        }
    }

    /// View of a square graph.
    pub fn from_csr(graph: &'a pcpm_graph::Csr) -> Self {
        Self::new(
            graph.num_nodes(),
            graph.num_nodes(),
            graph.offsets(),
            graph.targets(),
        )
    }

    /// Number of source nodes.
    #[inline]
    pub fn num_src(&self) -> u32 {
        self.num_src
    }

    /// Number of destination nodes.
    #[inline]
    pub fn num_dst(&self) -> u32 {
        self.num_dst
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Sorted targets of source `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &'a [u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Edge-index range of source `v` (for weight lookup).
    #[inline]
    pub fn edge_range(&self, v: u32) -> std::ops::Range<u64> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }
}

/// The transposed bipartite graph of one source partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartitePart {
    /// `k_dst + 1` offsets into [`Self::sources`]; row `p` holds the
    /// compressed edges destined to partition `p`.
    pub upd_off: Vec<u64>,
    /// `k_dst + 1` offsets over *raw* edges to each destination partition;
    /// these place the destination-ID segments in the bins.
    pub did_off: Vec<u64>,
    /// Compressed-edge source nodes (global IDs), grouped by destination
    /// partition, ascending within each group.
    pub sources: Vec<u32>,
}

impl BipartitePart {
    /// Source nodes with at least one edge into destination partition `p`.
    #[inline]
    pub fn row(&self, p: u32) -> &[u32] {
        &self.sources[self.upd_off[p as usize] as usize..self.upd_off[p as usize + 1] as usize]
    }

    /// Number of compressed edges from this partition.
    #[inline]
    pub fn num_compressed(&self) -> u64 {
        self.sources.len() as u64
    }

    /// Number of raw edges from this partition.
    #[inline]
    pub fn num_raw(&self) -> u64 {
        *self.did_off.last().expect("non-empty")
    }
}

/// The full PNG layout: one [`BipartitePart`] per source partition plus
/// global bin-region prefix sums.
#[derive(Clone, Debug)]
pub struct Png {
    src_parts: Partitioner,
    dst_parts: Partitioner,
    parts: Vec<BipartitePart>,
    /// `k_src + 1` prefix over compressed-edge counts: the update-bin
    /// region written by each source partition.
    upd_region: Vec<u64>,
    /// `k_src + 1` prefix over raw-edge counts: the destination-ID-bin
    /// region written by each source partition.
    did_region: Vec<u64>,
}

impl Png {
    /// Builds the PNG for `view` under the given partitioners.
    ///
    /// Runs the merged compression + transposition of §3.3 in parallel
    /// over source partitions.
    pub fn build(view: EdgeView<'_>, src_parts: Partitioner, dst_parts: Partitioner) -> Self {
        let parts: Vec<BipartitePart> = (0..src_parts.num_partitions())
            .into_par_iter()
            .map(|s| build_part(view, &src_parts, &dst_parts, s))
            .collect();
        let mut upd_region = Vec::with_capacity(parts.len() + 1);
        let mut did_region = Vec::with_capacity(parts.len() + 1);
        upd_region.push(0);
        did_region.push(0);
        for part in &parts {
            upd_region.push(upd_region.last().unwrap() + part.num_compressed());
            did_region.push(did_region.last().unwrap() + part.num_raw());
        }
        Self {
            src_parts,
            dst_parts,
            parts,
            upd_region,
            did_region,
        }
    }

    /// Reassembles a layout from deserialized parts (the engine-snapshot
    /// load path): the region prefix sums are recomputed, so they are
    /// consistent with `parts` by construction.
    pub(crate) fn from_parts(
        src_parts: Partitioner,
        dst_parts: Partitioner,
        parts: Vec<BipartitePart>,
    ) -> Self {
        let mut upd_region = Vec::with_capacity(parts.len() + 1);
        let mut did_region = Vec::with_capacity(parts.len() + 1);
        upd_region.push(0);
        did_region.push(0);
        for part in &parts {
            upd_region.push(upd_region.last().unwrap() + part.num_compressed());
            did_region.push(did_region.last().unwrap() + part.num_raw());
        }
        Self {
            src_parts,
            dst_parts,
            parts,
            upd_region,
            did_region,
        }
    }

    /// The source-side partitioner.
    #[inline]
    pub fn src_parts(&self) -> &Partitioner {
        &self.src_parts
    }

    /// The destination-side partitioner.
    #[inline]
    pub fn dst_parts(&self) -> &Partitioner {
        &self.dst_parts
    }

    /// The bipartite graph of source partition `s`.
    #[inline]
    pub fn part(&self, s: u32) -> &BipartitePart {
        &self.parts[s as usize]
    }

    /// Total compressed edges `|E'|`.
    #[inline]
    pub fn num_compressed_edges(&self) -> u64 {
        *self.upd_region.last().unwrap_or(&0)
    }

    /// Total raw edges `|E|`.
    #[inline]
    pub fn num_raw_edges(&self) -> u64 {
        *self.did_region.last().unwrap_or(&0)
    }

    /// Compression ratio `r = |E| / |E'|` (paper Table 2); 1.0 for an
    /// edgeless graph.
    pub fn compression_ratio(&self) -> f64 {
        let c = self.num_compressed_edges();
        if c == 0 {
            1.0
        } else {
            self.num_raw_edges() as f64 / c as f64
        }
    }

    /// Update-bin region prefix (`k_src + 1` entries): source partition
    /// `s` writes updates into `[upd_region[s], upd_region[s + 1])`.
    #[inline]
    pub fn upd_region(&self) -> &[u64] {
        &self.upd_region
    }

    /// Destination-ID-bin region prefix (`k_src + 1` entries).
    #[inline]
    pub fn did_region(&self) -> &[u64] {
        &self.did_region
    }

    /// Per-source-partition update-region lengths, for slice splitting.
    pub fn upd_region_lens(&self) -> Vec<usize> {
        self.upd_region
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Per-source-partition destination-ID-region lengths.
    pub fn did_region_lens(&self) -> Vec<usize> {
        self.did_region
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Rebuilds only the bipartite parts of `touched` source partitions
    /// against `view` (the post-update edge structure) and refreshes the
    /// global region prefix sums.
    ///
    /// Untouched parts are kept verbatim — their adjacency did not
    /// change, so their counting and filling scans would reproduce the
    /// same rows. `view` must have the same dimensions the layout was
    /// built with; `touched` must hold valid, deduplicated source
    /// partition indices.
    ///
    /// # Panics
    ///
    /// Panics if `view`'s dimensions differ from the original build or a
    /// touched index is out of range.
    pub fn repair(&mut self, view: EdgeView<'_>, touched: &[u32]) {
        assert_eq!(view.num_src(), self.src_parts.num_nodes(), "num_src");
        assert_eq!(view.num_dst(), self.dst_parts.num_nodes(), "num_dst");
        let src_parts = self.src_parts;
        let dst_parts = self.dst_parts;
        let rebuilt: Vec<(u32, BipartitePart)> = touched
            .par_iter()
            .map(|&s| (s, build_part(view, &src_parts, &dst_parts, s)))
            .collect();
        for (s, part) in rebuilt {
            self.parts[s as usize] = part;
        }
        for (i, part) in self.parts.iter().enumerate() {
            self.upd_region[i + 1] = self.upd_region[i] + part.num_compressed();
            self.did_region[i + 1] = self.did_region[i] + part.num_raw();
        }
    }

    /// Heap bytes used by the layout (Table 8 pre-processing analysis):
    /// `O(k²)` offsets plus `|E'|` compressed-edge sources.
    pub fn memory_bytes(&self) -> u64 {
        let offsets: u64 = self
            .parts
            .iter()
            .map(|p| ((p.upd_off.len() + p.did_off.len()) * 8) as u64)
            .sum();
        offsets + self.num_compressed_edges() * 4 + ((self.upd_region.len() * 16) as u64)
    }
}

/// Walks the destination-partition runs of source partition `s`: calls
/// `f(v, p, run, edge_base)` once per maximal run of consecutive
/// neighbors of `v` landing in destination partition `p`, where `run` is
/// the slice of those (sorted) targets and `edge_base` the raw-edge index
/// of `run[0]`. One run is exactly one PNG compressed edge / one bin
/// message — this walk is the single partition scan shared by the PNG
/// build, every [`crate::format::BinFormat`] encoder and the weight
/// stream fill.
pub(crate) fn for_each_run(
    view: EdgeView<'_>,
    src_parts: &Partitioner,
    dst_parts: &Partitioner,
    s: u32,
    mut f: impl FnMut(u32, u32, &[u32], u64),
) {
    let q = dst_parts.partition_size();
    for v in src_parts.range(s) {
        let nbrs = view.neighbors(v);
        let base = view.edge_range(v).start;
        let mut i = 0;
        while i < nbrs.len() {
            let p = nbrs[i] / q;
            let mut j = i + 1;
            while j < nbrs.len() && nbrs[j] / q == p {
                j += 1;
            }
            f(v, p, &nbrs[i..j], base + i as u64);
            i = j;
        }
    }
}

/// Builds the transposed bipartite graph of one source partition: one
/// counting scan, one prefix sum, one filling scan.
fn build_part(
    view: EdgeView<'_>,
    src_parts: &Partitioner,
    dst_parts: &Partitioner,
    s: u32,
) -> BipartitePart {
    let k = dst_parts.num_partitions() as usize;
    let mut upd_deg = vec![0u64; k];
    let mut did_deg = vec![0u64; k];
    for_each_run(view, src_parts, dst_parts, s, |_v, p, run, _| {
        upd_deg[p as usize] += 1;
        did_deg[p as usize] += run.len() as u64;
    });
    let mut upd_off = vec![0u64; k + 1];
    let mut did_off = vec![0u64; k + 1];
    for p in 0..k {
        upd_off[p + 1] = upd_off[p] + upd_deg[p];
        did_off[p + 1] = did_off[p] + did_deg[p];
    }
    let mut sources = vec![0u32; *upd_off.last().unwrap() as usize];
    let mut cursor = upd_off.clone();
    for_each_run(view, src_parts, dst_parts, s, |v, p, _run, _| {
        sources[cursor[p as usize] as usize] = v;
        cursor[p as usize] += 1;
    });
    BipartitePart {
        upd_off,
        did_off,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::Csr;

    /// The example graph of paper Fig. 3a: 9 nodes, partitions of size 3.
    ///
    /// Edges (read off the figure/bins): messages into bin 0 come from
    /// nodes 3, 6, 6, 7 with dests {2}, {0,1}... we use the figure's bin
    /// content: bin0 gets PR[3]->2, PR[6]->{0,1}? The published figure
    /// shows bin 0 receiving updates from 3, 6, 7 to dests 2,0,1,2 and
    /// bin 2 receiving PR[2]->8, PR[7]->8. We encode a consistent graph:
    fn fig3_graph() -> Csr {
        // partition 0: {0,1,2}, partition 1: {3,4,5}, partition 2: {6,7,8}
        Csr::from_edges(
            9,
            &[
                (3, 2), // P1 -> bin 0, one dest
                (6, 0),
                (6, 1), // node 6 -> bin 0, two dests (one update)
                (7, 2), // node 7 -> bin 0
                (3, 4), // P1 internal -> bin 1
                (6, 3),
                (6, 4), // node 6 -> bin 1
                (7, 5), // node 7 -> bin 1
                (2, 8), // P0 -> bin 2
                (7, 8), // P2 internal -> bin 2
            ],
        )
        .unwrap()
    }

    fn build(g: &Csr, q: u32) -> Png {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts)
    }

    #[test]
    fn fig3_compression_counts() {
        let png = build(&fig3_graph(), 3);
        // Raw edges: 10. Compressed: node 3 -> {P0, P1}, node 6 -> {P0, P1},
        // node 7 -> {P0, P1, P2}, node 2 -> {P2}: 8 compressed edges.
        assert_eq!(png.num_raw_edges(), 10);
        assert_eq!(png.num_compressed_edges(), 8);
        assert!((png.compression_ratio() - 10.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_rows_match_figure5() {
        let png = build(&fig3_graph(), 3);
        // Fig. 5: bipartite graph of P1 has edges into P0 from {3, ...}.
        // Partition 1 owns nodes {3,4,5}; rows by destination partition:
        let p1 = png.part(1);
        assert_eq!(p1.row(0), &[3]); // node 3 -> P0 (dest 2)
        assert_eq!(p1.row(1), &[3]); // node 3 -> P1 (dest 4)
        assert_eq!(p1.row(2), &[] as &[u32]);
        // Partition 2 owns {6,7,8}.
        let p2 = png.part(2);
        assert_eq!(p2.row(0), &[6, 7]);
        assert_eq!(p2.row(1), &[6, 7]);
        assert_eq!(p2.row(2), &[7]);
        // Partition 0 owns {0,1,2}.
        let p0 = png.part(0);
        assert_eq!(p0.row(2), &[2]);
    }

    #[test]
    fn did_offsets_count_raw_edges_per_pair() {
        let png = build(&fig3_graph(), 3);
        let p2 = png.part(2);
        // Partition 2 sends raw edges: to P0 {6->0, 6->1, 7->2} = 3,
        // to P1 {6->3, 6->4, 7->5} = 3, to P2 {7->8} = 1.
        assert_eq!(p2.did_off, vec![0, 3, 6, 7]);
        assert_eq!(p2.num_raw(), 7);
    }

    #[test]
    fn regions_are_prefix_sums() {
        let png = build(&fig3_graph(), 3);
        assert_eq!(png.upd_region().len(), 4);
        assert_eq!(*png.upd_region().last().unwrap(), 8);
        assert_eq!(*png.did_region().last().unwrap(), 10);
        let lens = png.upd_region_lens();
        assert_eq!(lens.iter().sum::<usize>(), 8);
    }

    #[test]
    fn single_partition_compresses_per_node() {
        // One partition covering everything: every node with out-degree>0
        // contributes exactly one compressed edge, r = m / #non-dangling.
        let g = fig3_graph();
        let png = build(&g, 100);
        let senders = (0..g.num_nodes()).filter(|&v| g.out_degree(v) > 0).count() as u64;
        assert_eq!(png.num_compressed_edges(), senders);
    }

    #[test]
    fn partition_size_one_disables_compression() {
        let g = fig3_graph();
        let png = build(&g, 1);
        assert_eq!(png.num_compressed_edges(), g.num_edges());
        assert!((png.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compression_monotone_in_partition_size() {
        // Fig. 11: r grows (weakly) with partition size.
        let g = pcpm_graph::gen::rmat(&pcpm_graph::gen::RmatConfig::graph500(10, 8, 21)).unwrap();
        let mut last = 0.0;
        for q in [1u32, 4, 16, 64, 256, 1024] {
            let r = build(&g, q).compression_ratio();
            assert!(r >= last - 1e-12, "r dropped: {last} -> {r} at q={q}");
            last = r;
        }
    }

    #[test]
    fn compression_bounds() {
        let g = pcpm_graph::gen::erdos_renyi(500, 3000, 3).unwrap();
        for q in [7u32, 64, 500] {
            let png = build(&g, q);
            let r = png.compression_ratio();
            assert!(r >= 1.0 - 1e-12);
            // A compressed edge covers at most q distinct targets, so
            // m <= q * |E'| and r <= q.
            assert!(r <= f64::from(q) + 1e-12, "r={r} exceeds q={q}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let png = build(&g, 4);
        assert_eq!(png.num_compressed_edges(), 0);
        assert_eq!(png.compression_ratio(), 1.0);
    }

    #[test]
    fn repair_matches_full_rebuild() {
        let g = pcpm_graph::gen::rmat(&pcpm_graph::gen::RmatConfig::graph500(9, 8, 13)).unwrap();
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        // Change only adjacency inside source partitions 0 and 3.
        let q = 64u32;
        edges.retain(|&(s, t)| !(s < q && t == edges_probe(&g, s)));
        edges.push((1, 500));
        edges.push((3 * q + 2, 17));
        edges.sort_unstable();
        edges.dedup();
        let g2 = Csr::from_edges(g.num_nodes(), &edges).unwrap();
        let mut repaired = build(&g, q);
        repaired.repair(EdgeView::from_csr(&g2), &[0, 3]);
        let fresh = build(&g2, q);
        assert_eq!(repaired.num_raw_edges(), fresh.num_raw_edges());
        assert_eq!(
            repaired.num_compressed_edges(),
            fresh.num_compressed_edges()
        );
        assert_eq!(repaired.upd_region(), fresh.upd_region());
        assert_eq!(repaired.did_region(), fresh.did_region());
        for s in repaired.src_parts().iter() {
            assert_eq!(repaired.part(s), fresh.part(s), "partition {s}");
        }
    }

    /// First target of `s`, or an unused sentinel — used to delete one
    /// edge per low-partition source.
    fn edges_probe(g: &Csr, s: u32) -> u32 {
        g.neighbors(s).first().copied().unwrap_or(u32::MAX)
    }

    #[test]
    fn rectangular_view() {
        // 3 sources, 5 destinations.
        let offsets = vec![0u64, 2, 2, 4];
        let targets = vec![0u32, 4, 1, 2];
        let view = EdgeView::new(3, 5, &offsets, &targets);
        let png = Png::build(
            view,
            Partitioner::new(3, 2).unwrap(),
            Partitioner::new(5, 2).unwrap(),
        );
        assert_eq!(png.num_raw_edges(), 4);
        // src 0 -> {P0, P2}, src 2 -> {P0, P1}: 4 compressed (no sharing).
        assert_eq!(png.num_compressed_edges(), 4);
        assert_eq!(png.part(0).row(2), &[0]);
        assert_eq!(png.part(1).row(0), &[2]);
    }
}
