//! Shared PageRank result and timing types.

use std::ops::AddAssign;
use std::time::Duration;

/// Wall-clock time spent in each phase of a GAS-style PageRank run.
///
/// The paper's Table 5 reports scatter and gather separately; `apply`
/// covers the per-vertex normalization (and, for the pull baseline, the
/// whole edge traversal is accounted under `gather`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time in the scatter phase.
    pub scatter: Duration,
    /// Time in the gather phase.
    pub gather: Duration,
    /// Time in the apply phase.
    pub apply: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.scatter + self.gather + self.apply
    }
}

impl AddAssign for PhaseTimings {
    fn add_assign(&mut self, rhs: Self) {
        self.scatter += rhs.scatter;
        self.gather += rhs.gather;
        self.apply += rhs.apply;
    }
}

/// The outcome of a PageRank computation.
#[derive(Clone, Debug)]
pub struct PrResult {
    /// Final PageRank score per node (unscaled, i.e. the actual
    /// probabilities — not the out-degree-scaled propagation values).
    pub scores: Vec<f32>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the L1 tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final L1 delta between the last two iterations.
    pub last_delta: f64,
    /// Accumulated per-phase timings across all iterations.
    pub timings: PhaseTimings,
    /// Pre-processing time (PNG construction + bin allocation for PCPM,
    /// bin sizing for BVGAS, zero for the pull baseline) — Table 8.
    pub preprocess: Duration,
    /// PNG compression ratio `r`, when the kernel has one.
    pub compression_ratio: Option<f64>,
}

impl PrResult {
    /// Throughput in giga-edges traversed per second for one iteration,
    /// the paper's Fig. 7 metric: `m / (total_time / iterations) / 1e9`.
    pub fn gteps(&self, num_edges: u64) -> f64 {
        let per_iter = self.timings.total().as_secs_f64() / self.iterations.max(1) as f64;
        if per_iter == 0.0 {
            0.0
        } else {
            num_edges as f64 / per_iter / 1e9
        }
    }

    /// Sum of all scores (≈ 1 − dropped dangling mass).
    pub fn mass(&self) -> f64 {
        self.scores.iter().map(|&x| f64::from(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate() {
        let mut a = PhaseTimings {
            scatter: Duration::from_millis(10),
            gather: Duration::from_millis(20),
            apply: Duration::from_millis(5),
        };
        let b = PhaseTimings {
            scatter: Duration::from_millis(1),
            gather: Duration::from_millis(2),
            apply: Duration::from_millis(3),
        };
        a += b;
        assert_eq!(a.scatter, Duration::from_millis(11));
        assert_eq!(a.total(), Duration::from_millis(41));
    }

    #[test]
    fn gteps_definition() {
        let r = PrResult {
            scores: vec![],
            iterations: 10,
            converged: false,
            last_delta: 0.0,
            timings: PhaseTimings {
                scatter: Duration::from_secs(1),
                gather: Duration::from_secs(1),
                apply: Duration::ZERO,
            },
            preprocess: Duration::ZERO,
            compression_ratio: None,
        };
        // 2s / 10 iters = 0.2 s/iter; 1e9 edges / 0.2s = 5 GTEPS.
        assert!((r.gteps(1_000_000_000) - 5.0).abs() < 1e-9);
    }
}
