//! PCPM scatter phase.
//!
//! Two implementations:
//!
//! - [`png_scatter`] — Algorithm 3, the paper's final design: iterate the
//!   PNG rows of each source partition, streaming updates to one
//!   destination bin at a time. No data-dependent branches, no unused-edge
//!   reads, at most `k` bin switches per partition.
//! - [`csr_scatter`] — Algorithm 2, the pre-PNG ablation: traverse the
//!   original CSR, compare each neighbor's partition with the previous one
//!   and emit an update on every partition switch. Reads all `m` edges and
//!   branches per edge; kept for the design-choice benches.
//!
//! Both run in parallel over source partitions; each worker writes only
//! its own contiguous region of the update array, obtained by safe slice
//! splitting, so no synchronization is needed (paper §3.1).

use crate::partition::split_by_lens;
use crate::png::{EdgeView, Png};
use rayon::prelude::*;

/// Algorithm 3: PNG-driven branchless scatter.
///
/// Reads `x[v]` for every compressed edge and writes it into the update
/// region of the edge's destination bin. `updates.len()` must equal
/// `png.num_compressed_edges()`.
///
/// # Panics
///
/// Panics if `updates` has the wrong length or `x` is shorter than the
/// source node count.
pub fn png_scatter<T: Copy + Send + Sync>(png: &Png, x: &[T], updates: &mut [T]) {
    assert_eq!(
        updates.len() as u64,
        png.num_compressed_edges(),
        "updates length"
    );
    assert!(
        x.len() >= png.src_parts().num_nodes() as usize,
        "x too short"
    );
    let lens = png.upd_region_lens();
    let regions = split_by_lens(updates, &lens);
    regions.into_par_iter().enumerate().for_each(|(s, region)| {
        let part = png.part(s as u32);
        let mut cur = 0usize;
        for p in png.dst_parts().iter() {
            for &u in part.row(p) {
                region[cur] = x[u as usize];
                cur += 1;
            }
        }
    });
}

/// Algorithm 2: CSR-traversal scatter (ablation).
///
/// Produces byte-identical update regions to [`png_scatter`] but scans all
/// raw edges of the original structure, emitting one update whenever the
/// destination partition of consecutive (sorted) neighbors changes.
pub fn csr_scatter<T: Copy + Send + Sync>(
    view: EdgeView<'_>,
    png: &Png,
    x: &[T],
    updates: &mut [T],
) {
    assert_eq!(
        updates.len() as u64,
        png.num_compressed_edges(),
        "updates length"
    );
    assert!(
        x.len() >= png.src_parts().num_nodes() as usize,
        "x too short"
    );
    let q = png.dst_parts().partition_size();
    let lens = png.upd_region_lens();
    let regions = split_by_lens(updates, &lens);
    regions.into_par_iter().enumerate().for_each(|(s, region)| {
        let part = png.part(s as u32);
        // Region-local write cursors, one per destination bin.
        let mut cursor: Vec<u64> = part.upd_off[..part.upd_off.len() - 1].to_vec();
        for v in png.src_parts().range(s as u32) {
            let val = x[v as usize];
            let mut prev_bin = u32::MAX;
            for &u in view.neighbors(v) {
                let p = u / q;
                if p != prev_bin {
                    region[cursor[p as usize] as usize] = val;
                    cursor[p as usize] += 1;
                    prev_bin = p;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use pcpm_graph::Csr;

    fn setup(n: u32, edges: &[(u32, u32)], q: u32) -> (Csr, Png) {
        let g = Csr::from_edges(n, edges).unwrap();
        let parts = Partitioner::new(n, q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        (g, png)
    }

    #[test]
    fn png_scatter_streams_expected_values() {
        // Fig. 3/4: partition 2 sends updates PR[6], PR[7] to bin 0.
        let (_, png) = setup(
            9,
            &[
                (3, 2),
                (6, 0),
                (6, 1),
                (7, 2),
                (3, 4),
                (6, 3),
                (6, 4),
                (7, 5),
                (2, 8),
                (7, 8),
            ],
            3,
        );
        let x: Vec<f32> = (0..9).map(|v| v as f32 * 10.0).collect();
        let mut updates = vec![0.0f32; png.num_compressed_edges() as usize];
        png_scatter(&png, &x, &mut updates);
        // Partition 2's region: rows to P0 = [6,7], P1 = [6,7], P2 = [7].
        let lo = png.upd_region()[2] as usize;
        assert_eq!(&updates[lo..lo + 5], &[60.0, 70.0, 60.0, 70.0, 70.0]);
    }

    #[test]
    fn csr_scatter_matches_png_scatter() {
        let g = pcpm_graph::gen::rmat(&pcpm_graph::gen::RmatConfig::graph500(9, 8, 33)).unwrap();
        for q in [16u32, 100, 512] {
            let parts = Partitioner::new(g.num_nodes(), q).unwrap();
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v as f32).sin()).collect();
            let mut a = vec![0.0f32; png.num_compressed_edges() as usize];
            let mut b = vec![1.0f32; png.num_compressed_edges() as usize];
            png_scatter(&png, &x, &mut a);
            csr_scatter(EdgeView::from_csr(&g), &png, &x, &mut b);
            assert_eq!(a, b, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "updates length")]
    fn wrong_update_length_panics() {
        let (_, png) = setup(4, &[(0, 1)], 2);
        let x = vec![0.0; 4];
        let mut updates = vec![0.0; 99];
        png_scatter(&png, &x, &mut updates);
    }

    #[test]
    fn empty_graph_scatter_is_noop() {
        let (_, png) = setup(3, &[], 2);
        let x = vec![1.0; 3];
        let mut updates: Vec<f32> = vec![];
        png_scatter(&png, &x, &mut updates);
    }
}
