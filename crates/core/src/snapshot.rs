//! Persistent engine snapshots: build the PCPM dataplane once, serve it
//! from disk forever after.
//!
//! The paper's economics (§3, Table 8) amortize PNG/bin preprocessing
//! over many PageRank iterations *within one run*. A serving deployment
//! ("millions of users") restarts processes, shards work across machines
//! and re-ranks on demand — so the preprocessing must amortize **across
//! runs** too. This module serializes everything `prepare` produces —
//! the graph, optional edge weights, the [`Png`] layout and the
//! per-format bin storage — into one versioned, checksummed file that
//! [`Engine::from_snapshot`](crate::Engine::from_snapshot) can map back
//! into a ready engine without touching the build path.
//!
//! # File format (version 1)
//!
//! All integers little-endian. The file is `header ‖ payload`; the
//! checksum covers the payload only, so header corruption is caught by
//! the magic/version checks and payload corruption by the checksum
//! before any structural decoding happens.
//!
//! ```text
//! header (20 bytes):
//!   0   magic        b"PCPMSNAP"
//!   8   version      u32   (= 1)
//!   12  checksum     u64   FNV-1a 64 over payload
//! payload:
//!   partition_bytes  u64   the config the dataplane was built with
//!   bin_format       u8    0 = wide, 1 = compact, 2 = delta
//!   weighted         u8    1 when an edge-weight stream follows
//!   reserved         [u8; 6]
//!   graph            u64 length ‖ pcpm_graph::io binary CSR
//!   weights          (weighted only) u64 length ‖ pcpm_graph::io weights
//!                    blob, CSR edge order (repairs re-read these)
//!   png              src_q u32 ‖ dst_q u32 ‖ k_src u32 ‖ k_dst u32,
//!                    then per source partition:
//!                    upd_off  (k_dst + 1) × u64
//!                    did_off  (k_dst + 1) × u64
//!                    sources  u64 count ‖ count × u32
//!   bins             tag u8 (= bin_format), then per format:
//!                    wide:    u64 count ‖ count × u32 dest IDs
//!                    compact: u64 count ‖ count × u16 dest IDs
//!                    delta:   u64 count ‖ count × u8 varint stream,
//!                             (k_src + 1) × u64 byte regions,
//!                             k_src × (k_dst + 1) × u64 segment offsets
//!                    then (weighted only) u64 count ‖ count × f32
//!                    bin-order weight stream
//! ```
//!
//! The *update* stream is deliberately **not** serialized: it is scratch
//! memory overwritten by every scatter, so the loader allocates it fresh
//! (zero-filled) at `|E'|` entries.
//!
//! # Guarantees
//!
//! - **Bit-identical serving** — an engine loaded from a snapshot
//!   produces the same step output as the engine that saved it, on any
//!   thread count (the bins are byte-identical and the kernels are
//!   deterministic).
//! - **Typed rejection** — wrong magic, unknown version, checksum
//!   mismatch, truncation, internal inconsistency and config mismatch
//!   each map to a distinct [`SnapshotError`] variant; no snapshot input
//!   can panic the loader.

use crate::error::SnapshotError;
use crate::format::BinFormatKind;
use crate::png::{BipartitePart, Png};
use crate::Partitioner;
use pcpm_graph::{io as gio, Csr};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PCPMSNAP";

/// Highest snapshot format version this build reads and the version it
/// writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Conventional file extension for snapshot files (`graph.pcpmc`).
pub const SNAPSHOT_EXTENSION: &str = "pcpmc";

/// The serializable state of one bin format: destination stream plus the
/// optional bin-order weight stream. Opaque — produced by the dataplane
/// export hooks and consumed by the loader.
#[derive(Clone, Debug)]
pub struct BinState(pub(crate) BinStateInner);

#[derive(Clone, Debug)]
pub(crate) enum BinStateInner {
    Wide {
        dest_ids: Vec<u32>,
        weights: Option<Vec<f32>>,
    },
    Compact {
        dest_ids: Vec<u16>,
        weights: Option<Vec<f32>>,
    },
    Delta {
        dest_bytes: Vec<u8>,
        byte_region: Vec<u64>,
        seg_off: Vec<Vec<u64>>,
        weights: Option<Vec<f32>>,
    },
}

impl BinState {
    pub(crate) fn wide(dest_ids: Vec<u32>, weights: Option<Vec<f32>>) -> Self {
        Self(BinStateInner::Wide { dest_ids, weights })
    }

    pub(crate) fn compact(dest_ids: Vec<u16>, weights: Option<Vec<f32>>) -> Self {
        Self(BinStateInner::Compact { dest_ids, weights })
    }

    pub(crate) fn delta(
        dest_bytes: Vec<u8>,
        byte_region: Vec<u64>,
        seg_off: Vec<Vec<u64>>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        Self(BinStateInner::Delta {
            dest_bytes,
            byte_region,
            seg_off,
            weights,
        })
    }

    /// The format this state belongs to.
    pub fn kind(&self) -> BinFormatKind {
        match &self.0 {
            BinStateInner::Wide { .. } => BinFormatKind::Wide,
            BinStateInner::Compact { .. } => BinFormatKind::Compact,
            BinStateInner::Delta { .. } => BinFormatKind::Delta,
        }
    }

    /// Whether a bin-order weight stream is present.
    pub fn is_weighted(&self) -> bool {
        match &self.0 {
            BinStateInner::Wide { weights, .. }
            | BinStateInner::Compact { weights, .. }
            | BinStateInner::Delta { weights, .. } => weights.is_some(),
        }
    }
}

/// Everything a snapshotable backend exports: the PNG layout plus the
/// format's [`BinState`]. Opaque to external [`Backend`](crate::Backend)
/// implementations (their default `snapshot_state` returns `None`).
#[derive(Clone, Debug)]
pub struct DataplaneState {
    pub(crate) png: Png,
    pub(crate) bins: BinState,
}

impl DataplaneState {
    pub(crate) fn new(png: Png, bins: BinState) -> Self {
        Self { png, bins }
    }
}

/// A decoded engine snapshot: graph, weights, PNG and bins, ready to be
/// rehydrated into an [`Engine`](crate::Engine) without running
/// `prepare`.
#[derive(Clone, Debug)]
pub struct Snapshot {
    graph: Arc<Csr>,
    /// CSR-order edge weights (what repairs and rebuilds consume).
    weights: Option<Vec<f32>>,
    partition_bytes: u64,
    png: Png,
    bins: BinState,
}

impl Snapshot {
    /// Assembles a snapshot from live engine state (the save path).
    pub(crate) fn from_state(
        graph: Arc<Csr>,
        weights: Option<Vec<f32>>,
        partition_bytes: u64,
        state: DataplaneState,
    ) -> Self {
        Self {
            graph,
            weights,
            partition_bytes,
            png: state.png,
            bins: state.bins,
        }
    }

    /// The snapshotted graph.
    pub fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    /// CSR-order edge weights, when the engine was weighted.
    pub fn weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Whether the dataplane carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The physical bin format of the stored dataplane.
    pub fn bin_format(&self) -> BinFormatKind {
        self.bins.kind()
    }

    /// The partition byte budget the dataplane was built with.
    pub fn partition_bytes(&self) -> usize {
        self.partition_bytes as usize
    }

    pub(crate) fn into_parts(self) -> (Arc<Csr>, Option<Vec<f32>>, u64, Png, BinState) {
        (
            self.graph,
            self.weights,
            self.partition_bytes,
            self.png,
            self.bins,
        )
    }

    /// Rejects the snapshot unless it was built under the caller's
    /// configuration: partition bytes, bin format and (when `weighted`
    /// is given) weighted-ness must all match.
    pub fn verify_config(
        &self,
        cfg: &crate::PcpmConfig,
        weighted: Option<bool>,
    ) -> Result<(), SnapshotError> {
        // Compare the effective partition size in nodes, not raw bytes:
        // the snapshot records the rounded value the PNG was actually
        // built with (q·4), so a caller config whose bytes round to the
        // same q (e.g. 10 vs 8) is the same layout, not a mismatch.
        if u64::from(cfg.partition_nodes()) != self.partition_bytes / 4 {
            return Err(SnapshotError::ConfigMismatch {
                field: "partition bytes",
            });
        }
        if cfg.bin_format != self.bin_format() {
            return Err(SnapshotError::ConfigMismatch {
                field: "bin format",
            });
        }
        if let Some(w) = weighted {
            if w != self.is_weighted() {
                return Err(SnapshotError::ConfigMismatch {
                    field: "weighted-ness",
                });
            }
        }
        Ok(())
    }

    /// Rejects the snapshot unless it captures exactly `graph`.
    pub fn verify_graph(&self, graph: &Csr) -> Result<(), SnapshotError> {
        if *self.graph != *graph {
            return Err(SnapshotError::ConfigMismatch { field: "graph" });
        }
        Ok(())
    }

    /// Serializes into the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.partition_bytes.to_le_bytes());
        payload.push(format_tag(self.bin_format()));
        payload.push(u8::from(self.is_weighted()));
        payload.extend_from_slice(&[0u8; 6]);

        let graph_bytes = gio::to_bytes(&self.graph);
        put_blob(&mut payload, &graph_bytes);
        if let Some(w) = &self.weights {
            put_blob(&mut payload, &gio::weights_to_bytes(w));
        }

        // PNG section.
        let src = self.png.src_parts();
        let dst = self.png.dst_parts();
        let k_src = src.num_partitions();
        let k_dst = dst.num_partitions();
        payload.extend_from_slice(&src.partition_size().to_le_bytes());
        payload.extend_from_slice(&dst.partition_size().to_le_bytes());
        payload.extend_from_slice(&k_src.to_le_bytes());
        payload.extend_from_slice(&k_dst.to_le_bytes());
        for s in 0..k_src {
            let part = self.png.part(s);
            put_u64s(&mut payload, &part.upd_off);
            put_u64s(&mut payload, &part.did_off);
            payload.extend_from_slice(&(part.sources.len() as u64).to_le_bytes());
            put_u32s(&mut payload, &part.sources);
        }

        // Bins section.
        payload.push(format_tag(self.bin_format()));
        let weights = match &self.bins.0 {
            BinStateInner::Wide { dest_ids, weights } => {
                payload.extend_from_slice(&(dest_ids.len() as u64).to_le_bytes());
                put_u32s(&mut payload, dest_ids);
                weights
            }
            BinStateInner::Compact { dest_ids, weights } => {
                payload.extend_from_slice(&(dest_ids.len() as u64).to_le_bytes());
                for &d in dest_ids {
                    payload.extend_from_slice(&d.to_le_bytes());
                }
                weights
            }
            BinStateInner::Delta {
                dest_bytes,
                byte_region,
                seg_off,
                weights,
            } => {
                put_blob(&mut payload, dest_bytes);
                put_u64s(&mut payload, byte_region);
                for offs in seg_off {
                    put_u64s(&mut payload, offs);
                }
                weights
            }
        };
        if let Some(w) = weights {
            payload.extend_from_slice(&(w.len() as u64).to_le_bytes());
            for &x in w {
                payload.extend_from_slice(&x.to_le_bytes());
            }
        }

        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&gio::checksum64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes and fully validates a snapshot blob.
    pub fn from_bytes(data: &[u8]) -> Result<Self, SnapshotError> {
        if data.len() < 20 {
            return Err(if data.starts_with(&SNAPSHOT_MAGIC[..data.len().min(8)]) {
                SnapshotError::Corrupt("truncated header")
            } else {
                SnapshotError::BadMagic
            });
        }
        if &data[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("sliced"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let stored = u64::from_le_bytes(data[12..20].try_into().expect("sliced"));
        let payload = &data[20..];
        let computed = gio::checksum64(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        decode_payload(payload)
    }

    /// Writes the snapshot to `path`, returning the file size in bytes.
    ///
    /// The write is atomic (temp file + rename in the same directory):
    /// a crash mid-save can leave a stale `<path>.tmp` behind, but never
    /// a truncated snapshot at the serving path — so an existing cache
    /// file is either the old complete snapshot or the new one.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<u64, SnapshotError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(bytes.len() as u64)
    }

    /// Reads and validates a snapshot from `path`.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let data = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }
}

fn format_tag(kind: BinFormatKind) -> u8 {
    match kind {
        BinFormatKind::Wide => 0,
        BinFormatKind::Compact => 1,
        BinFormatKind::Delta => 2,
    }
}

fn format_from_tag(tag: u8) -> Result<BinFormatKind, SnapshotError> {
    match tag {
        0 => Ok(BinFormatKind::Wide),
        1 => Ok(BinFormatKind::Compact),
        2 => Ok(BinFormatKind::Delta),
        _ => Err(SnapshotError::Corrupt("unknown bin-format tag")),
    }
}

fn put_blob(buf: &mut Vec<u8>, blob: &[u8]) {
    buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
    buf.extend_from_slice(blob);
}

fn put_u64s(buf: &mut Vec<u8>, xs: &[u64]) {
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32s(buf: &mut Vec<u8>, xs: &[u32]) {
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over the payload: every decode
/// failure is a typed [`SnapshotError::Corrupt`], never a panic.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.data.len() < n {
            return Err(SnapshotError::Corrupt(what));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("sized"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("sized"),
        ))
    }

    /// Reads a `u64` count followed by that many `elem_bytes`-sized
    /// items, guarding the multiplication against overflow.
    fn counted(
        &mut self,
        elem_bytes: usize,
        what: &'static str,
    ) -> Result<(usize, &'a [u8]), SnapshotError> {
        let n = self.u64(what)?;
        let bytes = (n as usize)
            .checked_mul(elem_bytes)
            .ok_or(SnapshotError::Corrupt("section size overflow"))?;
        Ok((n as usize, self.take(bytes, what)?))
    }

    fn u64s(&mut self, n: usize, what: &'static str) -> Result<Vec<u64>, SnapshotError> {
        let bytes = n
            .checked_mul(8)
            .ok_or(SnapshotError::Corrupt("section size overflow"))?;
        let raw = self.take(bytes, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
            .collect())
    }

    fn done(&self, what: &'static str) -> Result<(), SnapshotError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(what))
        }
    }
}

/// Checks that an offset array is a `(len)`-entry monotonic prefix that
/// ends exactly at `total`.
fn check_offsets(offs: &[u64], total: u64, what: &'static str) -> Result<(), SnapshotError> {
    if offs.first() != Some(&0) || offs.last() != Some(&total) {
        return Err(SnapshotError::Corrupt(what));
    }
    if offs.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt(what));
    }
    Ok(())
}

fn decode_payload(payload: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut r = Reader { data: payload };
    let partition_bytes = r.u64("truncated config")?;
    let format = format_from_tag(r.u8("truncated config")?)?;
    let weighted = match r.u8("truncated config")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad weighted flag")),
    };
    r.take(6, "truncated config")?;

    let (graph_len, graph_bytes) = {
        let len = r.u64("truncated graph section")?;
        (
            len as usize,
            r.take(len as usize, "truncated graph section")?,
        )
    };
    let _ = graph_len;
    let graph = gio::from_bytes(graph_bytes)
        .map_err(|_| SnapshotError::Corrupt("invalid graph section"))?;
    let weights = if weighted {
        let len = r.u64("truncated weights section")?;
        let blob = r.take(len as usize, "truncated weights section")?;
        Some(
            gio::weights_from_bytes(blob, Some(graph.num_edges()))
                .map_err(|_| SnapshotError::Corrupt("invalid weights section"))?,
        )
    } else {
        None
    };

    // PNG section.
    let src_q = r.u32("truncated png header")?;
    let dst_q = r.u32("truncated png header")?;
    let k_src = r.u32("truncated png header")?;
    let k_dst = r.u32("truncated png header")?;
    if src_q == 0 || dst_q == 0 {
        return Err(SnapshotError::Corrupt("zero partition size"));
    }
    let src_parts = Partitioner::new(graph.num_nodes(), src_q)
        .map_err(|_| SnapshotError::Corrupt("invalid source partitioner"))?;
    let dst_parts = Partitioner::new(graph.num_nodes(), dst_q)
        .map_err(|_| SnapshotError::Corrupt("invalid destination partitioner"))?;
    if src_parts.num_partitions() != k_src || dst_parts.num_partitions() != k_dst {
        return Err(SnapshotError::Corrupt("partition count mismatch"));
    }
    // partition_nodes() = max(partition_bytes / 4, 1) — the PNG must
    // have been built under the recorded config.
    if u64::from(src_q) != (partition_bytes / 4).max(1) {
        return Err(SnapshotError::Corrupt(
            "partition size disagrees with config",
        ));
    }
    let mut parts = Vec::with_capacity(k_src as usize);
    for _ in 0..k_src {
        let upd_off = r.u64s(k_dst as usize + 1, "truncated png offsets")?;
        let did_off = r.u64s(k_dst as usize + 1, "truncated png offsets")?;
        let n_sources = r.u64("truncated png sources")? as usize;
        let raw = r.take(
            n_sources
                .checked_mul(4)
                .ok_or(SnapshotError::Corrupt("section size overflow"))?,
            "truncated png sources",
        )?;
        let sources: Vec<u32> = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        check_offsets(
            &upd_off,
            sources.len() as u64,
            "inconsistent png upd offsets",
        )?;
        if did_off.first() != Some(&0) || did_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(SnapshotError::Corrupt("inconsistent png did offsets"));
        }
        if sources.iter().any(|&v| v >= graph.num_nodes()) {
            return Err(SnapshotError::Corrupt("png source id out of range"));
        }
        parts.push(BipartitePart {
            upd_off,
            did_off,
            sources,
        });
    }
    let png = Png::from_parts(src_parts, dst_parts, parts);
    if png.num_raw_edges() != graph.num_edges() {
        return Err(SnapshotError::Corrupt(
            "png raw-edge count disagrees with graph",
        ));
    }

    // Bins section.
    let tag = format_from_tag(r.u8("truncated bins section")?)?;
    if tag != format {
        return Err(SnapshotError::Corrupt("bins tag disagrees with header"));
    }
    let raw_edges = png.num_raw_edges() as usize;
    let bins = match format {
        BinFormatKind::Wide => {
            let (n, raw) = r.counted(4, "truncated wide bins")?;
            if n != raw_edges {
                return Err(SnapshotError::Corrupt("wide dest stream length mismatch"));
            }
            let dest_ids = raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
                .collect();
            let weights = read_bin_weights(&mut r, weighted, raw_edges)?;
            BinState::wide(dest_ids, weights)
        }
        BinFormatKind::Compact => {
            let (n, raw) = r.counted(2, "truncated compact bins")?;
            if n != raw_edges {
                return Err(SnapshotError::Corrupt(
                    "compact dest stream length mismatch",
                ));
            }
            let dest_ids = raw
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes(c.try_into().expect("sized")))
                .collect();
            let weights = read_bin_weights(&mut r, weighted, raw_edges)?;
            BinState::compact(dest_ids, weights)
        }
        BinFormatKind::Delta => {
            let (n_bytes, raw) = r.counted(1, "truncated delta bins")?;
            let dest_bytes = raw.to_vec();
            let byte_region = r.u64s(k_src as usize + 1, "truncated delta regions")?;
            check_offsets(&byte_region, n_bytes as u64, "inconsistent delta regions")?;
            let mut seg_off = Vec::with_capacity(k_src as usize);
            for s in 0..k_src as usize {
                let offs = r.u64s(k_dst as usize + 1, "truncated delta segments")?;
                let region_len = byte_region[s + 1] - byte_region[s];
                check_offsets(&offs, region_len, "inconsistent delta segments")?;
                seg_off.push(offs);
            }
            let weights = read_bin_weights(&mut r, weighted, raw_edges)?;
            BinState::delta(dest_bytes, byte_region, seg_off, weights)
        }
    };
    r.done("trailing bytes after bins section")?;

    Ok(Snapshot {
        graph: Arc::new(graph),
        weights,
        partition_bytes,
        png,
        bins,
    })
}

fn read_bin_weights(
    r: &mut Reader<'_>,
    weighted: bool,
    raw_edges: usize,
) -> Result<Option<Vec<f32>>, SnapshotError> {
    if !weighted {
        return Ok(None);
    }
    let (n, raw) = r.counted(4, "truncated bin weight stream")?;
    if n != raw_edges {
        return Err(SnapshotError::Corrupt("bin weight stream length mismatch"));
    }
    Ok(Some(
        raw.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
            .collect(),
    ))
}

// Re-exported so callers matching on `PcpmError::Snapshot` have the
// variant type in scope alongside the snapshot API.
pub use crate::error::SnapshotError as Error;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::PlusF32;
    use crate::{BinFormatKind, Engine, PcpmConfig};
    use pcpm_graph::gen::{rmat, RmatConfig};

    fn snapshot_bytes(format: BinFormatKind) -> Vec<u8> {
        let g = Arc::new(rmat(&RmatConfig::graph500(8, 6, 19)).unwrap());
        let engine = Engine::<PlusF32>::builder_shared(&g)
            .partition_bytes(64 * 4)
            .bin_format(format)
            .build()
            .unwrap();
        engine.snapshot().unwrap().to_bytes()
    }

    #[test]
    fn codec_round_trips_every_format() {
        for format in BinFormatKind::ALL {
            let bytes = snapshot_bytes(format);
            let snap = Snapshot::from_bytes(&bytes).unwrap();
            assert_eq!(snap.bin_format(), format);
            assert!(!snap.is_weighted());
            assert_eq!(snap.partition_bytes(), 64 * 4);
            assert_eq!(snap.graph().num_nodes(), 256);
            // Round trip through the codec is byte-stable.
            assert_eq!(snap.to_bytes(), bytes, "format {format}");
            snap.verify_config(
                &PcpmConfig::default()
                    .with_partition_bytes(64 * 4)
                    .with_bin_format(format),
                Some(false),
            )
            .unwrap();
        }
    }

    #[test]
    fn header_tampering_is_typed() {
        let bytes = snapshot_bytes(BinFormatKind::Wide);
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
        // Checksum header flip.
        let mut bad = bytes.clone();
        bad[12] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Empty / tiny inputs.
        assert!(Snapshot::from_bytes(&[]).is_err());
        assert!(Snapshot::from_bytes(&bytes[..12]).is_err());
    }

    #[test]
    fn every_payload_byte_flip_is_rejected() {
        // The checksum covers the whole payload: flipping ANY payload
        // byte must surface as a typed ChecksumMismatch, never as a
        // wrong-but-accepted snapshot and never as a panic.
        let bytes = snapshot_bytes(BinFormatKind::Delta);
        let step = (bytes.len() / 97).max(1);
        for i in (20..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                matches!(
                    Snapshot::from_bytes(&bad),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "flip at byte {i} must be caught by the checksum"
            );
        }
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        for format in BinFormatKind::ALL {
            let bytes = snapshot_bytes(format);
            let step = (bytes.len() / 61).max(1);
            for len in (0..bytes.len()).step_by(step) {
                assert!(
                    Snapshot::from_bytes(&bytes[..len]).is_err(),
                    "format {format}: truncation to {len} bytes must error"
                );
            }
            // Trailing garbage is also rejected (checksum covers it).
            let mut long = bytes.clone();
            long.push(0);
            assert!(Snapshot::from_bytes(&long).is_err());
        }
    }

    #[test]
    fn config_mismatch_is_field_typed() {
        let snap = Snapshot::from_bytes(&snapshot_bytes(BinFormatKind::Compact)).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(64 * 4)
            .with_bin_format(BinFormatKind::Compact);
        assert_eq!(
            snap.verify_config(&cfg.with_partition_bytes(128 * 4), None),
            Err(SnapshotError::ConfigMismatch {
                field: "partition bytes"
            })
        );
        assert_eq!(
            snap.verify_config(&cfg.with_bin_format(BinFormatKind::Wide), None),
            Err(SnapshotError::ConfigMismatch {
                field: "bin format"
            })
        );
        assert_eq!(
            snap.verify_config(&cfg, Some(true)),
            Err(SnapshotError::ConfigMismatch {
                field: "weighted-ness"
            })
        );
        let other = rmat(&RmatConfig::graph500(7, 6, 3)).unwrap();
        assert_eq!(
            snap.verify_graph(&other),
            Err(SnapshotError::ConfigMismatch { field: "graph" })
        );
    }
}
