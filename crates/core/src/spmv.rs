//! Generic SpMV front end (paper §3.5).
//!
//! PCPM extends beyond PageRank to arbitrary sparse matrix–vector
//! products, including non-square matrices: rows and columns are
//! partitioned separately, edge weights travel alongside the destination
//! IDs in the bins, and the scatter/gather machinery is unchanged.
//!
//! [`SpmvMatrix`] stores `A` column-major (each column's non-zero row
//! indices sorted ascending), which is exactly the "graph" PCPM needs:
//! sources are columns, destinations are rows, and `y = A·x` is one
//! scatter/gather round.

use crate::algebra::PlusF32;
use crate::backend::Engine;
use crate::config::PcpmConfig;
use crate::engine::PcpmPipeline;
use crate::error::PcpmError;
use crate::png::EdgeView;
use crate::pr::PhaseTimings;

/// A sparse matrix in column-major (CSC) form with `f32` values.
///
/// # Examples
///
/// ```
/// use pcpm_core::spmv::SpmvMatrix;
///
/// // 2x3 matrix [[1, 0, 2], [0, 3, 0]]
/// let m = SpmvMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
/// assert_eq!(m.num_rows(), 2);
/// assert_eq!(m.num_nonzeros(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SpmvMatrix {
    num_rows: u32,
    num_cols: u32,
    /// `num_cols + 1` offsets into `row_ids` / `values`.
    offsets: Vec<u64>,
    /// Row indices per column, sorted ascending.
    row_ids: Vec<u32>,
    /// Non-zero values parallel to `row_ids`.
    values: Vec<f32>,
}

impl SpmvMatrix {
    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// coordinates are summed; explicit zeros are kept.
    pub fn from_triplets(
        num_rows: u32,
        num_cols: u32,
        triplets: &[(u32, u32, f32)],
    ) -> Result<Self, PcpmError> {
        let max_dim = u64::from(num_rows).max(u64::from(num_cols));
        if max_dim > pcpm_graph::MAX_NODES {
            return Err(PcpmError::TooManyNodes(max_dim));
        }
        for &(r, c, _) in triplets {
            if r >= num_rows || c >= num_cols {
                return Err(PcpmError::DimensionMismatch {
                    expected: num_rows.max(num_cols) as usize,
                    got: r.max(c) as usize,
                });
            }
        }
        let mut entries: Vec<(u32, u32, f32)> =
            triplets.iter().map(|&(r, c, v)| (c, r, v)).collect();
        entries.sort_unstable_by_key(|&(c, r, _)| (c, r));
        // Sum duplicates.
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(entries.len());
        for (c, r, v) in entries {
            match merged.last_mut() {
                Some((lc, lr, lv)) if *lc == c && *lr == r => *lv += v,
                _ => merged.push((c, r, v)),
            }
        }
        let mut offsets = vec![0u64; num_cols as usize + 1];
        for &(c, _, _) in &merged {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..num_cols as usize {
            offsets[c + 1] += offsets[c];
        }
        let row_ids: Vec<u32> = merged.iter().map(|&(_, r, _)| r).collect();
        let values: Vec<f32> = merged.iter().map(|&(_, _, v)| v).collect();
        Ok(Self {
            num_rows,
            num_cols,
            offsets,
            row_ids,
            values,
        })
    }

    /// Number of rows (output dimension).
    pub fn num_rows(&self) -> u32 {
        self.num_rows
    }

    /// Number of columns (input dimension).
    pub fn num_cols(&self) -> u32 {
        self.num_cols
    }

    /// Number of stored entries.
    pub fn num_nonzeros(&self) -> u64 {
        self.row_ids.len() as u64
    }

    /// Column-to-row edge view for the PCPM engine.
    pub(crate) fn view(&self) -> EdgeView<'_> {
        EdgeView::new(self.num_cols, self.num_rows, &self.offsets, &self.row_ids)
    }

    /// Builds a unified [`Engine`] computing `y = A·x` with the PCPM
    /// dataplane — the rectangular entry point of the builder API.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcpm_core::spmv::SpmvMatrix;
    /// use pcpm_core::PcpmConfig;
    ///
    /// // 2x3 matrix [[1, 0, 2], [0, 3, 0]]
    /// let m = SpmvMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
    /// let mut engine = m.engine(&PcpmConfig::default().with_partition_bytes(8)).unwrap();
    /// let mut y = vec![0.0f32; 2];
    /// engine.step(&[1.0, 1.0, 1.0], &mut y).unwrap();
    /// assert_eq!(y, vec![3.0, 3.0]);
    /// ```
    pub fn engine(&self, cfg: &PcpmConfig) -> Result<Engine<PlusF32>, PcpmError> {
        cfg.validate()?;
        // One engine-owned pool for prepare and every step (the old
        // run_with_threads + with_threads pairing built two pools).
        Engine::from_backend_with(cfg.threads, self.num_cols, self.num_rows, || {
            PcpmPipeline::from_view(self.view(), cfg, Some(&self.values))
                .map(PcpmPipeline::into_boxed_backend)
        })
    }

    /// Serial reference product `y = A·x` with f64 accumulation.
    pub fn reference_apply(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f64; self.num_rows as usize];
        for (c, &xc) in x.iter().enumerate().take(self.num_cols as usize) {
            let xv = f64::from(xc);
            for i in self.offsets[c] as usize..self.offsets[c + 1] as usize {
                y[self.row_ids[i] as usize] += f64::from(self.values[i]) * xv;
            }
        }
        y.into_iter().map(|v| v as f32).collect()
    }
}

/// A PCPM pipeline specialized for repeated products with a fixed matrix.
#[deprecated(
    since = "0.2.0",
    note = "use `SpmvMatrix::engine(&cfg)` — the unified `Engine` front end"
)]
pub struct SpmvEngine {
    engine: PcpmPipeline<PlusF32>,
}

#[allow(deprecated)]
impl SpmvEngine {
    /// Builds the PCPM layout for `matrix`.
    pub fn new(matrix: &SpmvMatrix, cfg: &PcpmConfig) -> Result<Self, PcpmError> {
        cfg.validate()?;
        let engine = PcpmPipeline::from_view(matrix.view(), cfg, Some(&matrix.values))?;
        Ok(Self { engine })
    }

    /// Computes `y = A·x` via partition-centric scatter/gather.
    pub fn apply(&mut self, x: &[f32], y: &mut [f32]) -> Result<PhaseTimings, PcpmError> {
        self.engine.spmv(x, y)
    }

    /// The underlying pipeline (compression ratio, pre-processing time).
    pub fn engine(&self) -> &PcpmPipeline<PlusF32> {
        &self.engine
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: u32, cols: u32, nnz: usize, seed: u64) -> SpmvMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let triplets: Vec<(u32, u32, f32)> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..rows),
                    rng.gen_range(0..cols),
                    rng.gen_range(-1.0f32..1.0),
                )
            })
            .collect();
        SpmvMatrix::from_triplets(rows, cols, &triplets).unwrap()
    }

    #[test]
    fn triplet_duplicates_are_summed() {
        let m = SpmvMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.num_nonzeros(), 1);
        assert_eq!(m.reference_apply(&[1.0, 0.0]), vec![3.5, 0.0]);
    }

    #[test]
    fn out_of_range_triplets_rejected() {
        assert!(SpmvMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SpmvMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn pcpm_matches_reference_square() {
        let m = random_matrix(128, 128, 2000, 3);
        let x: Vec<f32> = (0..128).map(|i| (i as f32 * 0.1).sin()).collect();
        let mut eng =
            SpmvEngine::new(&m, &PcpmConfig::default().with_partition_bytes(32 * 4)).unwrap();
        let mut y = vec![0.0f32; 128];
        eng.apply(&x, &mut y).unwrap();
        let want = m.reference_apply(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn pcpm_matches_reference_rectangular() {
        // Tall and wide matrices exercise separate row/column partitioning.
        for (rows, cols) in [(300u32, 50u32), (50, 300)] {
            let m = random_matrix(rows, cols, 1500, 7);
            let x: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 5) as f32).collect();
            let mut eng =
                SpmvEngine::new(&m, &PcpmConfig::default().with_partition_bytes(64 * 4)).unwrap();
            let mut y = vec![0.0f32; rows as usize];
            eng.apply(&x, &mut y).unwrap();
            let want = m.reference_apply(&x);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-3, "{rows}x{cols} row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unified_engine_matches_deprecated_front_end() {
        let m = random_matrix(150, 90, 1800, 5);
        let cfg = PcpmConfig::default().with_partition_bytes(32 * 4);
        let x: Vec<f32> = (0..90).map(|i| ((i % 9) as f32) - 4.0).collect();
        let mut old = SpmvEngine::new(&m, &cfg).unwrap();
        let mut new = m.engine(&cfg).unwrap();
        let mut y_old = vec![0.0f32; 150];
        let mut y_new = vec![0.0f32; 150];
        old.apply(&x, &mut y_old).unwrap();
        new.step(&x, &mut y_new).unwrap();
        assert_eq!(y_old, y_new);
        assert_eq!(new.report().backend, "pcpm");
    }

    #[test]
    fn empty_matrix() {
        let m = SpmvMatrix::from_triplets(4, 4, &[]).unwrap();
        let mut eng = SpmvEngine::new(&m, &PcpmConfig::default()).unwrap();
        let mut y = vec![1.0f32; 4];
        eng.apply(&[0.0; 4], &mut y).unwrap();
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn repeated_products_power_iteration_converges() {
        // Column-stochastic 2x2 matrix: power iteration converges to the
        // dominant eigenvector.
        let m =
            SpmvMatrix::from_triplets(2, 2, &[(0, 0, 0.9), (1, 0, 0.1), (0, 1, 0.5), (1, 1, 0.5)])
                .unwrap();
        let mut eng = SpmvEngine::new(&m, &PcpmConfig::default()).unwrap();
        let mut x = vec![0.5f32, 0.5];
        let mut y = vec![0.0f32; 2];
        for _ in 0..100 {
            eng.apply(&x, &mut y).unwrap();
            let norm: f32 = y.iter().sum();
            x.iter_mut().zip(&y).for_each(|(xv, &yv)| *xv = yv / norm);
        }
        // Stationary vector of [[.9,.5],[.1,.5]]: x = (5/6, 1/6).
        assert!((x[0] - 5.0 / 6.0).abs() < 1e-3, "{x:?}");
        assert!((x[1] - 1.0 / 6.0).abs() < 1e-3, "{x:?}");
    }
}
