//! Workspace-wide lightweight telemetry: relaxed atomic kernel counters
//! and span timers with a Chrome-trace exporter.
//!
//! The paper's whole argument is quantitative — PCPM wins because the
//! destID bin stream is DRAM-bandwidth-bound — so the reproduction must
//! be able to measure that from *inside* a run. This module provides the
//! two primitives every later perf PR reports against:
//!
//! 1. **Counters** ([`counters`]): a process-global registry of relaxed
//!    [`AtomicU64`]s with a stable taxonomy (see [`CounterSnapshot`]).
//!    Recording is gated on a single relaxed [`AtomicBool`] load — when
//!    telemetry is disabled (the default) every `add_*` call is one
//!    predictable never-taken branch and **no atomic write happens**, so
//!    the hot scatter/gather loops pay nothing measurable. Counters are
//!    recorded at *phase-call* granularity from analytically known
//!    quantities (bin-stream byte lengths, partition counts, edge
//!    counts), never per edge inside a kernel loop.
//! 2. **Spans** ([`span`]): RAII wall-clock timers that, while a trace
//!    collection is active ([`start_tracing`]), append complete events
//!    to a global buffer. [`write_chrome_trace`] serializes the buffer
//!    as Chrome-trace-format JSON (`chrome://tracing` / Perfetto); the
//!    `pcpm --trace-out FILE` flag is the CLI surface.
//!
//! Both primitives are `std`-only and safe (`pcpm-core` forbids
//! `unsafe`); neither allocates unless enabled.
//!
//! # Counter taxonomy
//!
//! | counter | meaning | recorded by |
//! | --- | --- | --- |
//! | `dest_stream_bytes_read` | bytes of the destID bin stream scanned by gather passes | one add per gather |
//! | `bins_decoded` | per-partition bin streams decoded by gather passes | one add per gather (`k`) |
//! | `varint_decodes` | per-edge LEB128 decodes (delta format only) | one add per gather |
//! | `scatter_ns` / `gather_ns` | wall-clock of the two PCPM phases | one add per step |
//! | `partitions_repaired` / `partitions_copied` | incremental-repair split: bins rebuilt vs block-copied | one add per `Engine::update` |
//! | `pool_jobs_dispatched` | rayon-shim jobs dispatched while inside `Engine::step` | one add per step |
//! | `batched_passes` | multi-query (SpMM) passes executed | one add per `Engine::step_many` |
//! | `batched_queries` | query vectors served by those passes | one add per `Engine::step_many` (`Q`) |
//! | `kernel_segments_decoded` | bin segments batch-decoded by the unrolled delta kernel | one add per gather (`k²`) |
//! | `kernel_scratch_bytes` | bytes round-tripped through the unrolled kernel's decode scratch | one add per gather |
//! | `gather_scalar_ns` / `gather_unrolled_ns` | gather wall-clock split by the kernel variant that ran | one add per step |
//!
//! The batched pair is the amortization measurement: a batched pass
//! records `dest_stream_bytes_read` **once** however many query vectors
//! it carries, so `dest_stream_bytes_read / batched_passes` staying flat
//! as `batched_queries / batched_passes` grows is the multi-query win
//! made observable.
//!
//! # Span taxonomy
//!
//! Every span name is a `'static` literal, opened at exactly one call
//! site, and registered in [`SPAN_NAMES`] — `pcpm-lint`'s
//! `telemetry-registry` rule enforces all three, so a trace viewer and
//! this table cannot drift apart.
//!
//! | span | covers | opened by |
//! | --- | --- | --- |
//! | `prepare` | PNG build + bin construction + kernel resolution | `Engine::prepare` |
//! | `repair` | incremental PNG/bin repair after an update batch (arg: touched partitions) | `Engine::update` |
//! | `scatter` | the PCPM scatter phase of one step | `Engine::step` |
//! | `gather` | the PCPM gather phase of one step | `Engine::step` |
//! | `scatter_many` | scatter across a whole query batch | `Engine::step_many` |
//! | `gather_many` | gather across a whole query batch | `Engine::step_many` |
//! | `step` | one backend-dispatched SpMV step (arg: step index) | `DynBackend::step` |
//! | `step_many` | one backend-dispatched SpMM pass (arg: batch width) | `DynBackend::step_many` |
//! | `update` | one mutation batch applied through the backend | `DynBackend::update` |
//! | `replay_batch` | one replayed update batch + its convergence loop (arg: batch index) | `stream::replay` |
//!
//! # Wall-clock discipline
//!
//! Kernel crates are forbidden (by the `determinism` lint rule) from
//! calling [`Instant::now`] directly: this module is the one sanctioned
//! owner of wall-clock access, and kernels time themselves through the
//! opaque [`stopwatch`] handle instead. That keeps every clock read in
//! one auditable place and makes "a kernel result depends on the
//! clock" impossible to write without tripping the lint.
//!
//! # Example
//!
//! ```
//! use pcpm_core::telemetry;
//!
//! telemetry::counters().set_enabled(true);
//! telemetry::counters().reset();
//! telemetry::counters().add_dest_stream_bytes_read(4096);
//! let snap = telemetry::counters().snapshot();
//! assert_eq!(snap.dest_stream_bytes_read, 4096);
//! telemetry::counters().set_enabled(false);
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-global counter registry.
///
/// All reads and writes use [`Ordering::Relaxed`]: counters are
/// monotonic sums with no ordering relationship to each other, and a
/// [`snapshot`](Counters::snapshot) is only ever read for reporting
/// (between phases, or after a run), never to synchronize.
#[derive(Debug)]
pub struct Counters {
    enabled: AtomicBool,
    dest_stream_bytes_read: AtomicU64,
    bins_decoded: AtomicU64,
    varint_decodes: AtomicU64,
    scatter_ns: AtomicU64,
    gather_ns: AtomicU64,
    partitions_repaired: AtomicU64,
    partitions_copied: AtomicU64,
    pool_jobs_dispatched: AtomicU64,
    batched_passes: AtomicU64,
    batched_queries: AtomicU64,
    kernel_segments_decoded: AtomicU64,
    kernel_scratch_bytes: AtomicU64,
    gather_scalar_ns: AtomicU64,
    gather_unrolled_ns: AtomicU64,
}

/// A point-in-time copy of every counter (see the module-level taxonomy
/// table for what each one means).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Bytes of the destID bin stream scanned by gather passes.
    pub dest_stream_bytes_read: u64,
    /// Per-partition bin streams decoded by gather passes.
    pub bins_decoded: u64,
    /// Per-edge LEB128 varint decodes (delta format only).
    pub varint_decodes: u64,
    /// Cumulative wall-clock of scatter phases, nanoseconds.
    pub scatter_ns: u64,
    /// Cumulative wall-clock of gather phases, nanoseconds.
    pub gather_ns: u64,
    /// Source partitions whose bins were rebuilt by incremental repair.
    pub partitions_repaired: u64,
    /// Source partitions whose bins were block-copied untouched.
    pub partitions_copied: u64,
    /// Rayon-shim jobs dispatched while inside `Engine::step`.
    pub pool_jobs_dispatched: u64,
    /// Multi-query (SpMM) passes executed through `Engine::step_many`.
    pub batched_passes: u64,
    /// Query vectors served by those batched passes.
    pub batched_queries: u64,
    /// Bin segments batch-decoded by the unrolled delta kernel.
    pub kernel_segments_decoded: u64,
    /// Bytes round-tripped through the unrolled kernel's decode
    /// scratch buffer (8 bytes per decoded delta entry).
    pub kernel_scratch_bytes: u64,
    /// Gather wall-clock spent in the scalar kernel, nanoseconds.
    pub gather_scalar_ns: u64,
    /// Gather wall-clock spent in the unrolled kernel, nanoseconds.
    pub gather_unrolled_ns: u64,
}

impl CounterSnapshot {
    /// Total counter traffic — the sum of every counter. Zero iff
    /// nothing was recorded (the disabled-path invariant the tests
    /// assert).
    pub fn total(&self) -> u64 {
        self.dest_stream_bytes_read
            + self.bins_decoded
            + self.varint_decodes
            + self.scatter_ns
            + self.gather_ns
            + self.partitions_repaired
            + self.partitions_copied
            + self.pool_jobs_dispatched
            + self.batched_passes
            + self.batched_queries
            + self.kernel_segments_decoded
            + self.kernel_scratch_bytes
            + self.gather_scalar_ns
            + self.gather_unrolled_ns
    }
}

macro_rules! counter_adders {
    ($($(#[$doc:meta])* $name:ident => $field:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $name(&self, v: u64) {
                if self.enabled.load(Ordering::Relaxed) {
                    self.$field.fetch_add(v, Ordering::Relaxed);
                }
            }
        )+
    };
}

impl Counters {
    const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            dest_stream_bytes_read: AtomicU64::new(0),
            bins_decoded: AtomicU64::new(0),
            varint_decodes: AtomicU64::new(0),
            scatter_ns: AtomicU64::new(0),
            gather_ns: AtomicU64::new(0),
            partitions_repaired: AtomicU64::new(0),
            partitions_copied: AtomicU64::new(0),
            pool_jobs_dispatched: AtomicU64::new(0),
            batched_passes: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            kernel_segments_decoded: AtomicU64::new(0),
            kernel_scratch_bytes: AtomicU64::new(0),
            gather_scalar_ns: AtomicU64::new(0),
            gather_unrolled_ns: AtomicU64::new(0),
        }
    }

    /// Turns counter recording on or off (process-wide). Off by
    /// default; while off, every `add_*` is a single relaxed load plus
    /// a never-taken branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether counter recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Zeroes every counter (the enabled flag is left alone).
    pub fn reset(&self) {
        self.dest_stream_bytes_read.store(0, Ordering::Relaxed);
        self.bins_decoded.store(0, Ordering::Relaxed);
        self.varint_decodes.store(0, Ordering::Relaxed);
        self.scatter_ns.store(0, Ordering::Relaxed);
        self.gather_ns.store(0, Ordering::Relaxed);
        self.partitions_repaired.store(0, Ordering::Relaxed);
        self.partitions_copied.store(0, Ordering::Relaxed);
        self.pool_jobs_dispatched.store(0, Ordering::Relaxed);
        self.batched_passes.store(0, Ordering::Relaxed);
        self.batched_queries.store(0, Ordering::Relaxed);
        self.kernel_segments_decoded.store(0, Ordering::Relaxed);
        self.kernel_scratch_bytes.store(0, Ordering::Relaxed);
        self.gather_scalar_ns.store(0, Ordering::Relaxed);
        self.gather_unrolled_ns.store(0, Ordering::Relaxed);
    }

    /// Copies every counter out.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            dest_stream_bytes_read: self.dest_stream_bytes_read.load(Ordering::Relaxed),
            bins_decoded: self.bins_decoded.load(Ordering::Relaxed),
            varint_decodes: self.varint_decodes.load(Ordering::Relaxed),
            scatter_ns: self.scatter_ns.load(Ordering::Relaxed),
            gather_ns: self.gather_ns.load(Ordering::Relaxed),
            partitions_repaired: self.partitions_repaired.load(Ordering::Relaxed),
            partitions_copied: self.partitions_copied.load(Ordering::Relaxed),
            pool_jobs_dispatched: self.pool_jobs_dispatched.load(Ordering::Relaxed),
            batched_passes: self.batched_passes.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            kernel_segments_decoded: self.kernel_segments_decoded.load(Ordering::Relaxed),
            kernel_scratch_bytes: self.kernel_scratch_bytes.load(Ordering::Relaxed),
            gather_scalar_ns: self.gather_scalar_ns.load(Ordering::Relaxed),
            gather_unrolled_ns: self.gather_unrolled_ns.load(Ordering::Relaxed),
        }
    }

    counter_adders! {
        /// Adds gather-scanned destID-stream bytes.
        add_dest_stream_bytes_read => dest_stream_bytes_read,
        /// Adds decoded per-partition bin streams.
        add_bins_decoded => bins_decoded,
        /// Adds per-edge varint decodes (delta format).
        add_varint_decodes => varint_decodes,
        /// Adds scatter-phase wall-clock nanoseconds.
        add_scatter_ns => scatter_ns,
        /// Adds gather-phase wall-clock nanoseconds.
        add_gather_ns => gather_ns,
        /// Adds incrementally rebuilt source partitions.
        add_partitions_repaired => partitions_repaired,
        /// Adds block-copied (untouched) source partitions.
        add_partitions_copied => partitions_copied,
        /// Adds pool jobs dispatched during a step.
        add_pool_jobs_dispatched => pool_jobs_dispatched,
        /// Adds multi-query (SpMM) passes.
        add_batched_passes => batched_passes,
        /// Adds query vectors served by batched passes.
        add_batched_queries => batched_queries,
        /// Adds bin segments batch-decoded by the unrolled kernel.
        add_kernel_segments_decoded => kernel_segments_decoded,
        /// Adds decode-scratch bytes round-tripped by the unrolled kernel.
        add_kernel_scratch_bytes => kernel_scratch_bytes,
        /// Adds gather nanoseconds attributed to the scalar kernel.
        add_gather_scalar_ns => gather_scalar_ns,
        /// Adds gather nanoseconds attributed to the unrolled kernel.
        add_gather_unrolled_ns => gather_unrolled_ns,
    }
}

static COUNTERS: Counters = Counters::new();

/// The process-global counter registry.
pub fn counters() -> &'static Counters {
    &COUNTERS
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span: a named wall-clock interval on one thread,
/// Chrome-trace "complete event" shaped (`ph: "X"`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (`prepare`, `step`, `scatter`, `gather`, …). Static
    /// and identifier-like by construction, so serialization never
    /// needs escaping.
    pub name: &'static str,
    /// Optional numeric argument (step index, batch index, …),
    /// serialized as `args: {"n": …}`.
    pub arg: Option<u64>,
    /// Start, microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Recording thread (small dense IDs handed out per thread).
    pub tid: u64,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The fixed time origin all span timestamps are relative to
/// (initialized on first use).
fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    trace_epoch().elapsed().as_micros() as u64
}

/// Starts collecting spans into the global trace buffer (the buffer is
/// cleared first, so one collection never mixes with another).
pub fn start_tracing() {
    if let Ok(mut ev) = EVENTS.lock() {
        ev.clear();
    }
    // Touch the epoch before enabling so every span shares one origin.
    let _ = trace_epoch();
    TRACING.store(true, Ordering::Relaxed);
}

/// Stops collecting and returns every span recorded since
/// [`start_tracing`].
pub fn stop_tracing() -> Vec<TraceEvent> {
    TRACING.store(false, Ordering::Relaxed);
    match EVENTS.lock() {
        Ok(mut ev) => std::mem::take(&mut *ev),
        Err(_) => Vec::new(),
    }
}

/// Whether a trace collection is currently active.
pub fn is_tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// RAII span timer: records a [`TraceEvent`] covering its lifetime when
/// dropped, if a collection was active when it was created. When
/// tracing is off, construction is one relaxed load and drop is a
/// no-op.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    arg: Option<u64>,
    /// `Some(start)` iff tracing was active at construction.
    start_us: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start_us {
            let end = now_us();
            let event = TraceEvent {
                name: self.name,
                arg: self.arg,
                ts_us: start,
                dur_us: end.saturating_sub(start),
                tid: TID.with(|t| *t),
            };
            if let Ok(mut ev) = EVENTS.lock() {
                ev.push(event);
            }
        }
    }
}

/// Every span name the workspace may open, each at exactly one call
/// site. See the module docs' span taxonomy table for what each one
/// covers. `pcpm-lint` checks call sites against this registry, so
/// adding a span means adding it here *and* to the table.
pub const SPAN_NAMES: [&str; 10] = [
    "prepare",
    "repair",
    "scatter",
    "gather",
    "scatter_many",
    "gather_many",
    "step",
    "step_many",
    "update",
    "replay_batch",
];

/// An opaque wall-clock stopwatch, started by [`stopwatch`].
///
/// This is the only clock handle kernel crates may hold: it exposes
/// elapsed time for phase-timing reports but no absolute timestamp, so
/// no kernel decision can branch on "what time is it".
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Wall-clock time since [`stopwatch`] created this handle.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Starts a [`Stopwatch`]. The telemetry module owns wall-clock access
/// for the kernel crates (see module docs); this is the sanctioned
/// replacement for `Instant::now()` in phase-timing code.
pub fn stopwatch() -> Stopwatch {
    Stopwatch {
        start: Instant::now(),
    }
}

/// Opens a span named `name` covering the guard's lifetime.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// Opens a span with a numeric argument (step index, batch index, …).
pub fn span_n(name: &'static str, arg: u64) -> SpanGuard {
    span_impl(name, Some(arg))
}

fn span_impl(name: &'static str, arg: Option<u64>) -> SpanGuard {
    let start_us = if TRACING.load(Ordering::Relaxed) {
        Some(now_us())
    } else {
        None
    };
    SpanGuard {
        name,
        arg,
        start_us,
    }
}

/// Serializes spans as Chrome-trace-format JSON (an array of complete
/// events; `ts`/`dur` in microseconds), the format `chrome://tracing`
/// and Perfetto open directly.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[TraceEvent]) -> std::io::Result<()> {
    writeln!(w, "[")?;
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        match e.arg {
            Some(n) => writeln!(
                w,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"n\":{}}}}}{}",
                e.name, e.tid, e.ts_us, e.dur_us, n, comma
            )?,
            None => writeln!(
                w,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}{}",
                e.name, e.tid, e.ts_us, e.dur_us, comma
            )?,
        }
    }
    writeln!(w, "]")?;
    Ok(())
}

/// Renders spans as a Chrome-trace JSON string (see
/// [`write_chrome_trace`]).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, events).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("trace output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module (and engine tests elsewhere) share the
    /// process-global registry; serialize the ones that reset or toggle
    /// it.
    fn lock_registry() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_counters_record_zero_traffic() {
        let _g = lock_registry();
        counters().set_enabled(false);
        counters().reset();
        counters().add_dest_stream_bytes_read(10);
        counters().add_bins_decoded(10);
        counters().add_varint_decodes(10);
        counters().add_scatter_ns(10);
        counters().add_gather_ns(10);
        counters().add_partitions_repaired(10);
        counters().add_partitions_copied(10);
        counters().add_pool_jobs_dispatched(10);
        counters().add_batched_passes(10);
        counters().add_batched_queries(10);
        counters().add_kernel_segments_decoded(10);
        counters().add_kernel_scratch_bytes(10);
        counters().add_gather_scalar_ns(10);
        counters().add_gather_unrolled_ns(10);
        assert_eq!(
            counters().snapshot().total(),
            0,
            "disabled path must not write"
        );
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let _g = lock_registry();
        counters().set_enabled(true);
        counters().reset();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        counters().add_dest_stream_bytes_read(1);
                        counters().add_varint_decodes(2);
                    }
                });
            }
        });
        let snap = counters().snapshot();
        counters().set_enabled(false);
        assert_eq!(snap.dest_stream_bytes_read, THREADS as u64 * PER_THREAD);
        assert_eq!(snap.varint_decodes, 2 * THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn snapshot_reset_round_trip() {
        let _g = lock_registry();
        counters().set_enabled(true);
        counters().reset();
        counters().add_scatter_ns(5);
        counters().add_gather_ns(7);
        counters().add_partitions_repaired(2);
        counters().add_partitions_copied(14);
        let snap = counters().snapshot();
        assert_eq!(snap.scatter_ns, 5);
        assert_eq!(snap.gather_ns, 7);
        assert_eq!(snap.partitions_repaired, 2);
        assert_eq!(snap.partitions_copied, 14);
        counters().reset();
        assert_eq!(counters().snapshot(), CounterSnapshot::default());
        counters().set_enabled(false);
    }

    /// A minimal JSON reader sufficient to validate the Chrome-trace
    /// output: objects, arrays, strings, integers. Returns true iff the
    /// whole input is one valid value.
    fn json_parses(s: &str) -> bool {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Option<usize> {
            let i = skip_ws(b, i);
            match b.get(i)? {
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Some(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b']' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Some(i + 1);
                    }
                    loop {
                        i = skip_ws(b, i);
                        if *b.get(i)? != b'"' {
                            return None;
                        }
                        i = value(b, i)?; // key string
                        i = skip_ws(b, i);
                        if *b.get(i)? != b':' {
                            return None;
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b'}' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'"' => {
                    let mut i = i + 1;
                    while *b.get(i)? != b'"' {
                        i += 1;
                    }
                    Some(i + 1)
                }
                b'0'..=b'9' | b'-' => {
                    let mut i = i + 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    Some(i)
                }
                _ => None,
            }
        }
        let b = s.as_bytes();
        match value(b, 0) {
            Some(end) => skip_ws(b, end) == b.len(),
            None => false,
        }
    }

    #[test]
    fn spans_nest_are_monotonic_and_serialize_to_valid_json() {
        let _g = lock_registry();
        start_tracing();
        {
            let _outer = span_n("step", 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("scatter");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = span("gather");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let events = stop_tracing();
        assert_eq!(events.len(), 3, "three spans recorded");
        // Children are recorded (dropped) before the parent.
        let scatter = events.iter().find(|e| e.name == "scatter").unwrap();
        let gather = events.iter().find(|e| e.name == "gather").unwrap();
        let step = events.iter().find(|e| e.name == "step").unwrap();
        assert_eq!(step.arg, Some(0));
        // Proper nesting: both phases inside the step interval.
        for child in [scatter, gather] {
            assert!(child.ts_us >= step.ts_us);
            assert!(child.ts_us + child.dur_us <= step.ts_us + step.dur_us);
            assert_eq!(child.tid, step.tid, "same thread");
        }
        // Monotonic: gather starts after scatter ends.
        assert!(gather.ts_us >= scatter.ts_us + scatter.dur_us);

        let json = chrome_trace_json(&events);
        assert!(json_parses(&json), "trace must be valid JSON:\n{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"scatter\""));
        assert!(json.contains("\"args\":{\"n\":0}"));
        // And an empty trace is still a valid document.
        assert!(json_parses(&chrome_trace_json(&[])));
    }

    #[test]
    fn spans_are_noops_when_tracing_is_off() {
        // No registry lock needed: this test never enables anything; it
        // only asserts that guards created while off record nothing
        // (even if another test's collection is running, a guard born
        // disabled stays disabled).
        let g = span("never-recorded");
        assert!(g.start_us.is_none());
    }
}
