//! Batched edge updates: the contract between the streaming front end
//! and the incremental bin-repair path.
//!
//! The paper's bins are a pre-processing artifact of a frozen CSR; a
//! [`UpdateBatch`] describes how the edge set changed so a prepared
//! backend can repair only the partitions whose adjacency actually moved
//! (see [`Backend::update`](crate::backend::Backend::update)) instead of
//! rebuilding from scratch. Batches are produced in canonical form by
//! `pcpm_stream::UpdateLog`; this module only defines the shared types so
//! `pcpm-core` need not depend on the streaming crate.

use crate::error::{PcpmError, SnapshotError};
use pcpm_graph::io::checksum64;
use pcpm_graph::NodeId;

/// Magic bytes identifying the binary update-batch format ("PCPMUB", v1).
const BATCH_MAGIC: &[u8; 8] = b"PCPMUB01";

/// Reads a little-endian scalar off the front of `data`.
macro_rules! take_le {
    ($data:ident, $t:ty) => {{
        let (head, rest) = $data.split_at(std::mem::size_of::<$t>());
        $data = rest;
        <$t>::from_le_bytes(head.try_into().expect("length checked above"))
    }};
}

/// The two streaming operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Add the directed edge `src -> dst` (no-op if already present).
    Insert,
    /// Remove the directed edge `src -> dst` (no-op if absent).
    Delete,
}

/// One pending edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// Operation.
    pub op: EdgeOp,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A validated, deduplicated batch of edge changes.
///
/// Canonical form: `inserts` and `deletes` are each sorted by
/// `(src, dst)`, contain no duplicates, and are disjoint (an edge that
/// was inserted then deleted inside one batch cancels out — last op
/// wins). `pcpm_stream::UpdateLog::seal` produces this form;
/// [`UpdateBatch::from_ops`] is the direct constructor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    inserts: Vec<(NodeId, NodeId)>,
    deletes: Vec<(NodeId, NodeId)>,
}

impl UpdateBatch {
    /// Builds a canonical batch from an ordered op sequence: per edge the
    /// *last* op wins, duplicates collapse.
    pub fn from_ops(ops: &[EdgeUpdate]) -> Self {
        // BTreeMap iterates in `(src, dst)` order, which IS the
        // canonical order — the split lists come out sorted for free.
        let mut last = std::collections::BTreeMap::new();
        for u in ops {
            last.insert((u.src, u.dst), u.op);
        }
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for ((s, t), op) in last {
            match op {
                EdgeOp::Insert => inserts.push((s, t)),
                EdgeOp::Delete => deletes.push((s, t)),
            }
        }
        Self { inserts, deletes }
    }

    /// Builds a batch from pre-deduplicated insert / delete lists.
    ///
    /// The lists are sorted here; callers must guarantee disjointness
    /// (checked with `debug_assert` only).
    pub fn from_parts(
        mut inserts: Vec<(NodeId, NodeId)>,
        mut deletes: Vec<(NodeId, NodeId)>,
    ) -> Self {
        inserts.sort_unstable();
        inserts.dedup();
        deletes.sort_unstable();
        deletes.dedup();
        debug_assert!(
            !inserts.iter().any(|e| deletes.binary_search(e).is_ok()),
            "inserts and deletes must be disjoint"
        );
        Self { inserts, deletes }
    }

    /// Edges to insert, sorted by `(src, dst)`.
    pub fn inserts(&self) -> &[(NodeId, NodeId)] {
        &self.inserts
    }

    /// Edges to delete, sorted by `(src, dst)`.
    pub fn deletes(&self) -> &[(NodeId, NodeId)] {
        &self.deletes
    }

    /// Total number of pending edge changes.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Largest node ID referenced by the batch, if any.
    pub fn max_node(&self) -> Option<NodeId> {
        self.all_edges().map(|(s, t)| s.max(t)).max()
    }

    /// Iterator over every referenced edge (inserts then deletes).
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.inserts.iter().chain(self.deletes.iter()).copied()
    }

    /// Sorted, deduplicated source nodes whose adjacency list changes.
    pub fn touched_sources(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.all_edges().map(|(s, _)| s).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated endpoints on either side of a changed edge
    /// (the seed set for delta-PageRank).
    pub fn touched_vertices(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.all_edges().flat_map(|(s, t)| [s, t]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated *source* partitions (size `q` nodes) whose
    /// bins must be re-scattered: the PNG part and bin region of a
    /// source partition depend only on the adjacency of its own nodes.
    pub fn touched_src_partitions(&self, q: u32) -> Vec<u32> {
        let mut v: Vec<u32> = self.all_edges().map(|(s, _)| s / q).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated *destination* partitions (size `q` nodes)
    /// that receive different messages after the batch.
    pub fn touched_dst_partitions(&self, q: u32) -> Vec<u32> {
        let mut v: Vec<u32> = self.all_edges().map(|(_, t)| t / q).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl UpdateBatch {
    /// Serializes the batch into the compact binary format.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// magic    8 B   "PCPMUB01"
    /// checksum 8 B   FNV-1a 64 over everything after this field
    /// inserts  8 B   count of insert pairs
    /// deletes  8 B   count of delete pairs
    /// pairs    8 B each  (src u32, dst u32), inserts then deletes,
    ///                    each section sorted by (src, dst)
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + self.len() * 8);
        payload.extend_from_slice(&(self.inserts.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(self.deletes.len() as u64).to_le_bytes());
        for &(s, t) in self.inserts.iter().chain(self.deletes.iter()) {
            payload.extend_from_slice(&s.to_le_bytes());
            payload.extend_from_slice(&t.to_le_bytes());
        }
        let mut buf = Vec::with_capacity(16 + payload.len());
        buf.extend_from_slice(BATCH_MAGIC);
        buf.extend_from_slice(&checksum64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf
    }

    /// Deserializes a batch written by [`UpdateBatch::to_bytes`],
    /// verifying the magic, the checksum and the canonical-form
    /// invariants (each section sorted, deduplicated, disjoint).
    pub fn from_bytes(data: &[u8]) -> Result<Self, PcpmError> {
        let corrupt = |msg| PcpmError::Snapshot(SnapshotError::Corrupt(msg));
        if data.len() < BATCH_MAGIC.len() + 8 {
            return Err(corrupt("truncated update-batch header"));
        }
        if &data[..BATCH_MAGIC.len()] != BATCH_MAGIC {
            return Err(PcpmError::Snapshot(SnapshotError::BadMagic));
        }
        let mut data = &data[BATCH_MAGIC.len()..];
        let stored = take_le!(data, u64);
        let computed = checksum64(data);
        if stored != computed {
            return Err(PcpmError::Snapshot(SnapshotError::ChecksumMismatch {
                stored,
                computed,
            }));
        }
        if data.len() < 16 {
            return Err(corrupt("truncated update-batch counts"));
        }
        let n_ins = take_le!(data, u64) as usize;
        let n_del = take_le!(data, u64) as usize;
        let need = n_ins
            .checked_add(n_del)
            .and_then(|n| n.checked_mul(8))
            .ok_or(corrupt("update-batch size overflow"))?;
        if data.len() != need {
            return Err(corrupt("update-batch payload size mismatch"));
        }
        let mut read_pairs = |n: usize| -> Vec<(NodeId, NodeId)> {
            (0..n)
                .map(|_| {
                    let s = take_le!(data, u32);
                    let t = take_le!(data, u32);
                    (s, t)
                })
                .collect()
        };
        let inserts = read_pairs(n_ins);
        let deletes = read_pairs(n_del);
        for section in [&inserts, &deletes] {
            if section.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("update-batch section not sorted/deduplicated"));
            }
        }
        if inserts.iter().any(|e| deletes.binary_search(e).is_ok()) {
            return Err(corrupt("update-batch inserts and deletes overlap"));
        }
        Ok(Self { inserts, deletes })
    }
}

/// What an in-place [`Backend::update`](crate::backend::Backend::update)
/// repair actually rebuilt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairStats {
    /// Source partitions whose PNG part and bin region were rebuilt.
    pub partitions_rebuilt: u32,
    /// Total source partitions (untouched ones were copied, not
    /// recomputed).
    pub partitions_total: u32,
}

impl RepairStats {
    /// Serializes the stats as two little-endian `u32`s.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(&self.partitions_rebuilt.to_le_bytes());
        buf[4..].copy_from_slice(&self.partitions_total.to_le_bytes());
        buf
    }

    /// Deserializes stats written by [`RepairStats::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, PcpmError> {
        if data.len() != 8 {
            return Err(PcpmError::Snapshot(SnapshotError::Corrupt(
                "repair stats must be exactly 8 bytes",
            )));
        }
        let mut data = data;
        let partitions_rebuilt = take_le!(data, u32);
        let partitions_total = take_le!(data, u32);
        let _ = data;
        Ok(Self {
            partitions_rebuilt,
            partitions_total,
        })
    }
}

/// How [`Engine::update`](crate::backend::Engine::update) absorbed a
/// batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The backend repaired its prepared state in place.
    Repaired(RepairStats),
    /// The backend does not support incremental repair (or the change
    /// was too invasive); the engine re-ran a full `prepare`.
    Rebuilt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_op_wins_and_sorts() {
        let ops = [
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 5,
                dst: 1,
            },
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 2,
                dst: 3,
            },
            EdgeUpdate {
                op: EdgeOp::Delete,
                src: 5,
                dst: 1,
            }, // cancels the insert
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 2,
                dst: 3,
            }, // duplicate
            EdgeUpdate {
                op: EdgeOp::Delete,
                src: 0,
                dst: 9,
            },
        ];
        let b = UpdateBatch::from_ops(&ops);
        assert_eq!(b.inserts(), &[(2, 3)]);
        assert_eq!(b.deletes(), &[(0, 9), (5, 1)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_node(), Some(9));
    }

    #[test]
    fn touched_sets() {
        let b = UpdateBatch::from_parts(vec![(10, 3), (11, 3)], vec![(3, 10)]);
        assert_eq!(b.touched_sources(), vec![3, 10, 11]);
        assert_eq!(b.touched_vertices(), vec![3, 10, 11]);
        assert_eq!(b.touched_src_partitions(4), vec![0, 2]);
        assert_eq!(b.touched_dst_partitions(4), vec![0, 2]);
    }

    #[test]
    fn empty_batch() {
        let b = UpdateBatch::default();
        assert!(b.is_empty());
        assert_eq!(b.max_node(), None);
        assert!(b.touched_src_partitions(8).is_empty());
    }

    #[test]
    fn batch_bytes_round_trip() {
        let b = UpdateBatch::from_parts(vec![(10, 3), (11, 3)], vec![(3, 10)]);
        let bytes = b.to_bytes();
        assert_eq!(UpdateBatch::from_bytes(&bytes).unwrap(), b);

        let empty = UpdateBatch::default();
        assert_eq!(UpdateBatch::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn batch_bytes_reject_tampering() {
        let b = UpdateBatch::from_parts(vec![(1, 2), (3, 4)], vec![(5, 6)]);
        let good = b.to_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            UpdateBatch::from_bytes(&bad),
            Err(PcpmError::Snapshot(SnapshotError::BadMagic))
        ));

        // Flipped payload byte -> checksum mismatch.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert!(matches!(
            UpdateBatch::from_bytes(&bad),
            Err(PcpmError::Snapshot(SnapshotError::ChecksumMismatch { .. }))
        ));

        // Truncated payload (checksum recomputed so the structural check
        // is what fires).
        let mut bad = good.clone();
        bad.truncate(good.len() - 8);
        let fixed = checksum64(&bad[16..]);
        bad[8..16].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            UpdateBatch::from_bytes(&bad),
            Err(PcpmError::Snapshot(SnapshotError::Corrupt(_)))
        ));

        // Unsorted section with a valid checksum.
        let mut raw = Vec::new();
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&0u64.to_le_bytes());
        for &(s, t) in &[(9u32, 9u32), (1u32, 1u32)] {
            raw.extend_from_slice(&s.to_le_bytes());
            raw.extend_from_slice(&t.to_le_bytes());
        }
        let mut bad = Vec::new();
        bad.extend_from_slice(BATCH_MAGIC);
        bad.extend_from_slice(&checksum64(&raw).to_le_bytes());
        bad.extend_from_slice(&raw);
        assert!(matches!(
            UpdateBatch::from_bytes(&bad),
            Err(PcpmError::Snapshot(SnapshotError::Corrupt(_)))
        ));
    }

    #[test]
    fn repair_stats_round_trip() {
        let s = RepairStats {
            partitions_rebuilt: 7,
            partitions_total: 1024,
        };
        assert_eq!(RepairStats::from_bytes(&s.to_bytes()).unwrap(), s);
        assert!(RepairStats::from_bytes(&[0u8; 7]).is_err());
    }
}
