//! Batched edge updates: the contract between the streaming front end
//! and the incremental bin-repair path.
//!
//! The paper's bins are a pre-processing artifact of a frozen CSR; a
//! [`UpdateBatch`] describes how the edge set changed so a prepared
//! backend can repair only the partitions whose adjacency actually moved
//! (see [`Backend::update`](crate::backend::Backend::update)) instead of
//! rebuilding from scratch. Batches are produced in canonical form by
//! `pcpm_stream::UpdateLog`; this module only defines the shared types so
//! `pcpm-core` need not depend on the streaming crate.

use pcpm_graph::NodeId;

/// The two streaming operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Add the directed edge `src -> dst` (no-op if already present).
    Insert,
    /// Remove the directed edge `src -> dst` (no-op if absent).
    Delete,
}

/// One pending edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeUpdate {
    /// Operation.
    pub op: EdgeOp,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A validated, deduplicated batch of edge changes.
///
/// Canonical form: `inserts` and `deletes` are each sorted by
/// `(src, dst)`, contain no duplicates, and are disjoint (an edge that
/// was inserted then deleted inside one batch cancels out — last op
/// wins). `pcpm_stream::UpdateLog::seal` produces this form;
/// [`UpdateBatch::from_ops`] is the direct constructor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    inserts: Vec<(NodeId, NodeId)>,
    deletes: Vec<(NodeId, NodeId)>,
}

impl UpdateBatch {
    /// Builds a canonical batch from an ordered op sequence: per edge the
    /// *last* op wins, duplicates collapse.
    pub fn from_ops(ops: &[EdgeUpdate]) -> Self {
        let mut last = std::collections::HashMap::with_capacity(ops.len());
        for u in ops {
            last.insert((u.src, u.dst), u.op);
        }
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for ((s, t), op) in last {
            match op {
                EdgeOp::Insert => inserts.push((s, t)),
                EdgeOp::Delete => deletes.push((s, t)),
            }
        }
        inserts.sort_unstable();
        deletes.sort_unstable();
        Self { inserts, deletes }
    }

    /// Builds a batch from pre-deduplicated insert / delete lists.
    ///
    /// The lists are sorted here; callers must guarantee disjointness
    /// (checked with `debug_assert` only).
    pub fn from_parts(
        mut inserts: Vec<(NodeId, NodeId)>,
        mut deletes: Vec<(NodeId, NodeId)>,
    ) -> Self {
        inserts.sort_unstable();
        inserts.dedup();
        deletes.sort_unstable();
        deletes.dedup();
        debug_assert!(
            !inserts.iter().any(|e| deletes.binary_search(e).is_ok()),
            "inserts and deletes must be disjoint"
        );
        Self { inserts, deletes }
    }

    /// Edges to insert, sorted by `(src, dst)`.
    pub fn inserts(&self) -> &[(NodeId, NodeId)] {
        &self.inserts
    }

    /// Edges to delete, sorted by `(src, dst)`.
    pub fn deletes(&self) -> &[(NodeId, NodeId)] {
        &self.deletes
    }

    /// Total number of pending edge changes.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Largest node ID referenced by the batch, if any.
    pub fn max_node(&self) -> Option<NodeId> {
        self.all_edges().map(|(s, t)| s.max(t)).max()
    }

    /// Iterator over every referenced edge (inserts then deletes).
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.inserts.iter().chain(self.deletes.iter()).copied()
    }

    /// Sorted, deduplicated source nodes whose adjacency list changes.
    pub fn touched_sources(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.all_edges().map(|(s, _)| s).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated endpoints on either side of a changed edge
    /// (the seed set for delta-PageRank).
    pub fn touched_vertices(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.all_edges().flat_map(|(s, t)| [s, t]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated *source* partitions (size `q` nodes) whose
    /// bins must be re-scattered: the PNG part and bin region of a
    /// source partition depend only on the adjacency of its own nodes.
    pub fn touched_src_partitions(&self, q: u32) -> Vec<u32> {
        let mut v: Vec<u32> = self.all_edges().map(|(s, _)| s / q).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sorted, deduplicated *destination* partitions (size `q` nodes)
    /// that receive different messages after the batch.
    pub fn touched_dst_partitions(&self, q: u32) -> Vec<u32> {
        let mut v: Vec<u32> = self.all_edges().map(|(_, t)| t / q).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// What an in-place [`Backend::update`](crate::backend::Backend::update)
/// repair actually rebuilt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairStats {
    /// Source partitions whose PNG part and bin region were rebuilt.
    pub partitions_rebuilt: u32,
    /// Total source partitions (untouched ones were copied, not
    /// recomputed).
    pub partitions_total: u32,
}

/// How [`Engine::update`](crate::backend::Engine::update) absorbed a
/// batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The backend repaired its prepared state in place.
    Repaired(RepairStats),
    /// The backend does not support incremental repair (or the change
    /// was too invasive); the engine re-ran a full `prepare`.
    Rebuilt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_op_wins_and_sorts() {
        let ops = [
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 5,
                dst: 1,
            },
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 2,
                dst: 3,
            },
            EdgeUpdate {
                op: EdgeOp::Delete,
                src: 5,
                dst: 1,
            }, // cancels the insert
            EdgeUpdate {
                op: EdgeOp::Insert,
                src: 2,
                dst: 3,
            }, // duplicate
            EdgeUpdate {
                op: EdgeOp::Delete,
                src: 0,
                dst: 9,
            },
        ];
        let b = UpdateBatch::from_ops(&ops);
        assert_eq!(b.inserts(), &[(2, 3)]);
        assert_eq!(b.deletes(), &[(0, 9), (5, 1)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_node(), Some(9));
    }

    #[test]
    fn touched_sets() {
        let b = UpdateBatch::from_parts(vec![(10, 3), (11, 3)], vec![(3, 10)]);
        assert_eq!(b.touched_sources(), vec![3, 10, 11]);
        assert_eq!(b.touched_vertices(), vec![3, 10, 11]);
        assert_eq!(b.touched_src_partitions(4), vec![0, 2]);
        assert_eq!(b.touched_dst_partitions(4), vec![0, 2]);
    }

    #[test]
    fn empty_batch() {
        let b = UpdateBatch::default();
        assert!(b.is_empty());
        assert_eq!(b.max_node(), None);
        assert!(b.touched_src_partitions(8).is_empty());
    }
}
