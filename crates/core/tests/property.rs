//! In-crate property tests for the PCPM pipeline internals.

use pcpm_core::algebra::{MinLabel, PlusF32};
use pcpm_core::bins::BinSpace;
use pcpm_core::compact::gather_compact_branch_avoiding;
use pcpm_core::format::{BinFormat, CompactFormat, WideFormat};
use pcpm_core::gather::{gather_algebra, gather_branch_avoiding, gather_branchy};
use pcpm_core::partition::{split_by_lens, Partitioner};
use pcpm_core::png::{EdgeView, Png};
use pcpm_core::scatter::{csr_scatter, png_scatter};
use pcpm_graph::{Csr, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..100).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..500).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            b.build().expect("build")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioner_covers_every_node_exactly_once(n in 0u32..10_000, q in 1u32..5_000) {
        let p = Partitioner::new(n, q).unwrap();
        let mut covered = 0u64;
        for part in p.iter() {
            let r = p.range(part);
            covered += u64::from(r.end - r.start);
            for v in r {
                prop_assert_eq!(p.partition_of(v), part);
            }
        }
        prop_assert_eq!(covered, u64::from(n));
        prop_assert_eq!(p.lens().iter().sum::<usize>(), n as usize);
    }

    #[test]
    fn split_by_lens_reassembles(data in proptest::collection::vec(any::<i32>(), 0..200),
                                 cuts in proptest::collection::vec(0usize..20, 0..20)) {
        // Normalize cuts into lens summing to data.len().
        let mut lens = Vec::new();
        let mut remaining = data.len();
        for c in cuts {
            let take = c.min(remaining);
            lens.push(take);
            remaining -= take;
        }
        lens.push(remaining);
        let mut buf = data.clone();
        let parts = split_by_lens(&mut buf, &lens);
        let reassembled: Vec<i32> = parts.iter().flat_map(|s| s.iter().copied()).collect();
        prop_assert_eq!(reassembled, data);
    }

    #[test]
    fn both_scatters_write_identical_bins(g in arb_graph(), q in 1u32..60) {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| ((v * 31 + 7) % 97) as f32).collect();
        let mut a = vec![0.0f32; png.num_compressed_edges() as usize];
        let mut b = vec![f32::NAN; png.num_compressed_edges() as usize];
        png_scatter(&png, &x, &mut a);
        csr_scatter(EdgeView::from_csr(&g), &png, &x, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn three_gathers_agree(g in arb_graph(), q in 1u32..60) {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32 + 0.5).collect();
        let mut wide: BinSpace = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        let mut compact = CompactFormat::build(EdgeView::from_csr(&g), &png, None);
        png_scatter(&png, &x, &mut wide.updates);
        png_scatter(&png, &x, &mut compact.updates);
        let n = g.num_nodes() as usize;
        let (mut y1, mut y2, mut y3, mut y4) =
            (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        gather_branch_avoiding(&png, &wide, &mut y1);
        gather_branchy(&png, &wide, &mut y2);
        gather_compact_branch_avoiding(&png, &compact, &mut y3);
        gather_algebra::<PlusF32>(&png, &wide, &mut y4);
        prop_assert_eq!(&y1, &y2);
        prop_assert_eq!(&y1, &y3);
        prop_assert_eq!(&y1, &y4);
    }

    #[test]
    fn min_label_gather_is_neighborhood_minimum(g in arb_graph(), q in 1u32..60) {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let labels: Vec<u32> = (0..g.num_nodes()).map(|v| (v * 7 + 3) % 101).collect();
        let mut bins: BinSpace<u32> = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        png_scatter(&png, &labels, &mut bins.updates);
        let mut y = vec![0u32; g.num_nodes() as usize];
        gather_algebra::<MinLabel>(&png, &bins, &mut y);
        // Reference: min over in-neighbors, identity when none.
        let mut want = vec![u32::MAX; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            want[t as usize] = want[t as usize].min(labels[s as usize]);
        }
        prop_assert_eq!(y, want);
    }

    #[test]
    fn source_and_dest_partition_sizes_can_differ(g in arb_graph(), qs in 1u32..40, qd in 1u32..40) {
        // The engine uses equal sizes, but the PNG layer itself supports
        // asymmetric partitioning (used by rectangular SpMV).
        let src = Partitioner::new(g.num_nodes(), qs).unwrap();
        let dst = Partitioner::new(g.num_nodes(), qd).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), src, dst);
        prop_assert_eq!(png.num_raw_edges(), g.num_edges());
        let x: Vec<f32> = (0..g.num_nodes()).map(|v| v as f32).collect();
        let mut bins: BinSpace = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        png_scatter(&png, &x, &mut bins.updates);
        let mut y = vec![0.0f32; g.num_nodes() as usize];
        gather_branch_avoiding(&png, &bins, &mut y);
        let mut want = vec![0.0f32; g.num_nodes() as usize];
        for (s, t) in g.edges() {
            want[t as usize] += x[s as usize];
        }
        for (a, b) in y.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }
}
