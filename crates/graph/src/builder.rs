//! Deduplicating, parallel graph builder.
//!
//! Generators emit raw edge streams that may contain duplicates and
//! self-loops; [`GraphBuilder`] normalizes them into a sorted [`Csr`].
//! Sorting is done in parallel with rayon, which matters for the larger
//! stand-in datasets (several million edges).

use crate::coo::Coo;
use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use rayon::prelude::*;

/// Accumulates edges and produces a normalized [`Csr`].
///
/// # Examples
///
/// ```
/// use pcpm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4).unwrap();
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(0, 1).unwrap(); // duplicate — removed by default
/// b.add_edge(2, 2).unwrap(); // self-loop — removed by default
/// b.add_edge(3, 0).unwrap();
/// assert!(b.add_edge(0, 9).is_err()); // out of range — rejected eagerly
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(NodeId, NodeId)>,
    dedup: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Result<Self, GraphError> {
        if u64::from(num_nodes) > crate::MAX_NODES {
            return Err(GraphError::TooManyNodes {
                requested: u64::from(num_nodes),
            });
        }
        Ok(Self {
            num_nodes,
            edges: Vec::new(),
            dedup: true,
            keep_self_loops: false,
        })
    }

    /// Creates a builder with pre-reserved capacity for `cap` edges.
    pub fn with_capacity(num_nodes: u32, cap: usize) -> Result<Self, GraphError> {
        let mut b = Self::new(num_nodes)?;
        b.edges.reserve(cap);
        Ok(b)
    }

    /// Keep duplicate parallel edges instead of removing them.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Keep self-loops instead of removing them.
    pub fn keep_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Number of nodes the builder was created with.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of raw (pre-normalization) edges added so far.
    pub fn num_raw_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Adds one edge, rejecting out-of-range endpoints eagerly.
    ///
    /// This check runs in every profile: release builds used to defer it
    /// behind a `debug_assert!` and silently accept out-of-range edges
    /// (corrupting the CSR downstream); now the error surfaces at the
    /// call site, matching the [`build`](Self::build)-time validation.
    #[inline]
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), GraphError> {
        if src >= self.num_nodes || dst >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u64::from(src.max(dst)),
                num_nodes: u64::from(self.num_nodes),
            });
        }
        self.edges.push((src, dst));
        Ok(())
    }

    /// Adds many edges at once.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) {
        self.edges.extend(edges);
    }

    /// Builds the final sorted, normalized CSR.
    pub fn build(self) -> Result<Csr, GraphError> {
        let Self {
            num_nodes,
            mut edges,
            dedup,
            keep_self_loops,
        } = self;
        for &(s, t) in &edges {
            if s >= num_nodes || t >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(s.max(t)),
                    num_nodes: u64::from(num_nodes),
                });
            }
        }
        if !keep_self_loops {
            edges.retain(|&(s, t)| s != t);
        }
        edges.par_sort_unstable();
        if dedup {
            edges.dedup();
        }
        // Edges are globally sorted, so per-row target runs are already
        // sorted; build offsets with one counting pass.
        let n = num_nodes as usize;
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let targets: Vec<NodeId> = edges.iter().map(|&(_, t)| t).collect();
        Csr::from_parts(num_nodes, offsets, targets)
    }

    /// Builds from a [`Coo`] edge list using default normalization.
    pub fn from_coo(coo: Coo) -> Result<Csr, GraphError> {
        let mut b = Self::new(coo.num_nodes())?;
        b.edges = coo.into_edges();
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal_by_default() {
        let mut b = GraphBuilder::new(3).unwrap();
        b.extend([(0, 1), (1, 2), (0, 1), (2, 2), (1, 0)]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
    }

    #[test]
    fn keep_duplicates_preserves_multiplicity() {
        let mut b = GraphBuilder::new(2).unwrap().keep_duplicates();
        b.extend([(0, 1), (0, 1)]);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn keep_self_loops_preserves_loops() {
        let mut b = GraphBuilder::new(2).unwrap().keep_self_loops();
        b.add_edge(1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn out_of_range_reported_at_build() {
        let mut b = GraphBuilder::new(2).unwrap();
        b.edges.push((0, 9)); // bypass add_edge's check deliberately
        assert!(b.build().is_err());
    }

    /// Regression for the release-mode bounds gap: `add_edge` used to
    /// guard its endpoints with a `debug_assert!` only, so release
    /// builds accepted out-of-range edges and corrupted the CSR
    /// downstream. The check is now a real error in every profile —
    /// this test passes identically under `cargo test` and
    /// `cargo test --release`.
    #[test]
    fn out_of_range_add_edge_errors_in_every_profile() {
        let mut b = GraphBuilder::new(4).unwrap();
        assert!(matches!(
            b.add_edge(0, 4),
            Err(GraphError::NodeOutOfRange {
                node: 4,
                num_nodes: 4
            })
        ));
        assert!(matches!(
            b.add_edge(9, 0),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
        // The rejected edges were not recorded.
        assert_eq!(b.num_raw_edges(), 0);
        b.add_edge(0, 3).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rows_are_sorted_after_build() {
        let mut b = GraphBuilder::new(5).unwrap();
        b.extend([(0, 4), (0, 2), (0, 3), (0, 1), (4, 3), (4, 0)]);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.neighbors(4), &[0, 3]);
    }

    #[test]
    fn from_coo_matches_manual_build() {
        let coo = Coo::from_edges(3, vec![(0, 1), (1, 2), (0, 1)]).unwrap();
        let g = GraphBuilder::from_coo(coo).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder_yields_empty_graph() {
        let g = GraphBuilder::new(4).unwrap().build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
