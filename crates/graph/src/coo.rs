//! Coordinate-format edge list.
//!
//! [`Coo`] is the interchange format between generators, I/O, and the
//! [`GraphBuilder`](crate::builder::GraphBuilder). The Edge-centric systems
//! the paper compares against (X-Stream, Zhou et al.) operate directly on
//! COO; here it is primarily a construction vehicle.

use crate::csr::NodeId;
use crate::error::GraphError;

/// A mutable edge list with an explicit node count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coo {
    num_nodes: u32,
    edges: Vec<(NodeId, NodeId)>,
}

impl Coo {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Result<Self, GraphError> {
        if u64::from(num_nodes) > crate::MAX_NODES {
            return Err(GraphError::TooManyNodes {
                requested: u64::from(num_nodes),
            });
        }
        Ok(Self {
            num_nodes,
            edges: Vec::new(),
        })
    }

    /// Creates an edge list from parts, validating endpoints.
    pub fn from_edges(num_nodes: u32, edges: Vec<(NodeId, NodeId)>) -> Result<Self, GraphError> {
        let mut coo = Self::new(num_nodes)?;
        for &(s, t) in &edges {
            coo.check(s)?;
            coo.check(t)?;
        }
        coo.edges = edges;
        Ok(coo)
    }

    fn check(&self, v: NodeId) -> Result<(), GraphError> {
        if v >= self.num_nodes {
            Err(GraphError::NodeOutOfRange {
                node: u64::from(v),
                num_nodes: u64::from(self.num_nodes),
            })
        } else {
            Ok(())
        }
    }

    /// Appends one edge.
    pub fn push(&mut self, src: NodeId, dst: NodeId) -> Result<(), GraphError> {
        self.check(src)?;
        self.check(dst)?;
        self.edges.push((src, dst));
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of edges currently stored.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Borrow the raw edges.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Consume into the raw edge vector.
    pub fn into_edges(self) -> Vec<(NodeId, NodeId)> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_endpoints() {
        let mut coo = Coo::new(2).unwrap();
        coo.push(0, 1).unwrap();
        assert!(coo.push(0, 2).is_err());
        assert!(coo.push(2, 0).is_err());
        assert_eq!(coo.num_edges(), 1);
    }

    #[test]
    fn from_edges_validates() {
        assert!(Coo::from_edges(2, vec![(0, 1), (1, 0)]).is_ok());
        assert!(Coo::from_edges(2, vec![(0, 3)]).is_err());
    }

    #[test]
    fn into_edges_round_trips() {
        let coo = Coo::from_edges(3, vec![(0, 1), (2, 0)]).unwrap();
        assert_eq!(coo.into_edges(), vec![(0, 1), (2, 0)]);
    }
}
