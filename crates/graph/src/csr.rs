//! Compressed Sparse Row graph representation.
//!
//! [`Csr`] is the canonical immutable directed-graph container used across
//! the workspace. Adjacency lists are stored sorted by target ID, which the
//! PCPM engine relies on: sorted neighbors make per-partition neighbor runs
//! contiguous, so destination-ID bins can be filled with a single scan
//! (paper §3.2–3.3).

use crate::error::GraphError;

/// Node identifier. 32 bits, with the MSB reserved by the PCPM engine.
pub type NodeId = u32;

/// An immutable directed graph in Compressed Sparse Row form.
///
/// `offsets` has `num_nodes + 1` entries; the out-neighbors of node `v` are
/// `targets[offsets[v] as usize .. offsets[v + 1] as usize]`, sorted
/// ascending.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
///
/// // 0 -> 1, 0 -> 2, 2 -> 0
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.out_degree(1), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    num_nodes: u32,
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from raw parts, validating every structural invariant.
    ///
    /// `offsets` must be monotonically non-decreasing, start at 0, end at
    /// `targets.len()`, and have length `num_nodes + 1`. Targets must be in
    /// range; each adjacency list must be sorted ascending (duplicates are
    /// allowed here — the deduplicating path is
    /// [`GraphBuilder`](crate::builder::GraphBuilder)).
    pub fn from_parts(
        num_nodes: u32,
        offsets: Vec<u64>,
        targets: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        if u64::from(num_nodes) > crate::MAX_NODES {
            return Err(GraphError::TooManyNodes {
                requested: u64::from(num_nodes),
            });
        }
        if offsets.len() != num_nodes as usize + 1 {
            return Err(GraphError::MalformedOffsets("length must be num_nodes + 1"));
        }
        if offsets.first() != Some(&0) {
            return Err(GraphError::MalformedOffsets("must start at 0"));
        }
        if *offsets.last().expect("non-empty") != targets.len() as u64 {
            return Err(GraphError::MalformedOffsets("must end at targets.len()"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::MalformedOffsets("must be non-decreasing"));
        }
        for &t in &targets {
            if t >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(t),
                    num_nodes: u64::from(num_nodes),
                });
            }
        }
        for v in 0..num_nodes as usize {
            let row = &targets[offsets[v] as usize..offsets[v + 1] as usize];
            if row.windows(2).any(|w| w[0] > w[1]) {
                return Err(GraphError::MalformedOffsets(
                    "adjacency lists must be sorted",
                ));
            }
        }
        Ok(Self {
            num_nodes,
            offsets,
            targets,
        })
    }

    /// Builds a CSR directly from an edge list.
    ///
    /// Edges are counted, bucketed and sorted per row; duplicates are kept.
    /// For deduplication use [`GraphBuilder`](crate::builder::GraphBuilder).
    pub fn from_edges(num_nodes: u32, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        if u64::from(num_nodes) > crate::MAX_NODES {
            return Err(GraphError::TooManyNodes {
                requested: u64::from(num_nodes),
            });
        }
        let n = num_nodes as usize;
        let mut degree = vec![0u64; n];
        for &(s, t) in edges {
            if s >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(s),
                    num_nodes: u64::from(num_nodes),
                });
            }
            if t >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(t),
                    num_nodes: u64::from(num_nodes),
                });
            }
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0 as NodeId; edges.len()];
        let mut cursor = offsets.clone();
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Ok(Self {
            num_nodes,
            offsets,
            targets,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed edges (duplicates included if present).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> u32 {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// Sorted out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_nodes`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The raw offsets array (`num_nodes + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated targets array.
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Iterator over all edges as `(source, target)` pairs in row order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes).flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Out-degree array for all nodes.
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.num_nodes).map(|v| self.out_degree(v)).collect()
    }

    /// In-degree array for all nodes (one pass over targets).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }

    /// Number of dangling nodes (out-degree zero).
    pub fn num_dangling(&self) -> u32 {
        (0..self.num_nodes as usize)
            .filter(|&v| self.offsets[v] == self.offsets[v + 1])
            .count() as u32
    }

    /// Average out-degree `m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / f64::from(self.num_nodes)
        }
    }

    /// Returns the transpose graph (reverses every edge).
    ///
    /// The transpose of an out-adjacency CSR is the in-adjacency CSC of the
    /// original graph; the pull-direction baseline (Algorithm 1) traverses
    /// this. Adjacency lists of the result are sorted, because the counting
    /// pass scans rows in ascending source order.
    pub fn transpose(&self) -> Csr {
        let n = self.num_nodes as usize;
        let mut degree = vec![0u64; n];
        for &t in &self.targets {
            degree[t as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0 as NodeId; self.targets.len()];
        let mut cursor = offsets.clone();
        for s in 0..self.num_nodes {
            for &t in self.neighbors(s) {
                let c = &mut cursor[t as usize];
                targets[*c as usize] = s;
                *c += 1;
            }
        }
        Csr {
            num_nodes: self.num_nodes,
            offsets,
            targets,
        }
    }

    /// Returns the undirected closure: for every edge `(u, v)` both
    /// `(u, v)` and `(v, u)` are present, deduplicated and without
    /// self-loops. Used by algorithms that need connectivity rather than
    /// direction (e.g. connected components).
    pub fn symmetrize(&self) -> Csr {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * self.targets.len());
        for (s, t) in self.edges() {
            if s != t {
                edges.push((s, t));
                edges.push((t, s));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edges(self.num_nodes, &edges).expect("endpoints already validated")
    }

    /// Total heap bytes used by the structure arrays.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<NodeId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3, 3 -> 0
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn from_edges_builds_sorted_rows() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[NodeId]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert!(matches!(
            Csr::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            Csr::from_edges(2, &[(5, 0)]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn from_parts_validates_offsets() {
        assert!(Csr::from_parts(2, vec![0, 1], vec![0]).is_err()); // wrong len
        assert!(Csr::from_parts(2, vec![1, 1, 1], vec![0]).is_err()); // start != 0
        assert!(Csr::from_parts(2, vec![0, 2, 1], vec![0]).is_err()); // end mismatch + decreasing
        assert!(Csr::from_parts(2, vec![0, 0, 1], vec![7]).is_err()); // target oob
        assert!(Csr::from_parts(2, vec![0, 2, 2], vec![1, 0]).is_err()); // unsorted row
        assert!(Csr::from_parts(2, vec![0, 2, 2], vec![0, 1]).is_ok());
    }

    #[test]
    fn degrees_and_dangling() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 2]);
        assert_eq!(g.num_dangling(), 0);
        let g2 = Csr::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g2.num_dangling(), 2);
        assert!((g2.avg_degree() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        let mut fwd: Vec<_> = g.edges().collect();
        let mut rev: Vec<_> = t.edges().map(|(s, t)| (t, s)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn double_transpose_is_identity() {
        let g = diamond();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn edges_iterator_matches_neighbor_lists() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(3, 0)));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        let t = g.transpose();
        assert_eq!(t.num_nodes(), 0);
    }

    #[test]
    fn duplicate_edges_are_preserved_by_from_edges() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]).unwrap();
        let u = g.symmetrize();
        // (0,1)+(1,0) stay as the pair; (2,3) gains (3,2); the self-loop
        // is dropped.
        let mut edges: Vec<_> = u.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
        // Symmetrizing twice is idempotent.
        assert_eq!(u.symmetrize(), u);
    }

    #[test]
    fn memory_bytes_counts_both_arrays() {
        let g = diamond();
        assert_eq!(g.memory_bytes(), (5 * 8 + 5 * 4) as u64);
    }
}
