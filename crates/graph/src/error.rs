//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced while building, validating, or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// The graph has more nodes than [`crate::MAX_NODES`] (the PCPM engine
    /// reserves the MSB of node IDs).
    TooManyNodes {
        /// Requested node count.
        requested: u64,
    },
    /// An edge endpoint is outside `[0, num_nodes)`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// The number of nodes the graph was declared with.
        num_nodes: u64,
    },
    /// CSR offsets are malformed (non-monotonic or wrong length).
    MalformedOffsets(&'static str),
    /// A permutation passed to a relabeling routine is not a bijection on
    /// `[0, num_nodes)`.
    InvalidPermutation(&'static str),
    /// A parse error while reading a text edge list.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Binary payload failed structural validation.
    CorruptBinary(&'static str),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooManyNodes { requested } => write!(
                f,
                "graph has {requested} nodes; PCPM supports at most {} (MSB is reserved)",
                crate::MAX_NODES
            ),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "edge endpoint {node} out of range for {num_nodes} nodes")
            }
            GraphError::MalformedOffsets(msg) => write!(f, "malformed CSR offsets: {msg}"),
            GraphError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::CorruptBinary(msg) => write!(f, "corrupt binary graph: {msg}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::TooManyNodes { requested: 1 << 40 };
        assert!(e.to_string().contains("MSB is reserved"));
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
