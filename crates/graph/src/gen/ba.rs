//! Barabási–Albert preferential-attachment generator.
//!
//! Produces power-law in-degree graphs resembling follower networks
//! (gplus/twitter in the paper). Attachment is implemented with the
//! classic repeated-endpoint trick: sampling a uniformly random endpoint
//! of an existing edge is equivalent to degree-proportional sampling.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed preferential-attachment graph.
///
/// Each new node emits `out_per_node` edges; each edge points to an
/// existing node chosen with probability proportional to its current
/// in-degree (plus one smoothing unit so early nodes remain reachable).
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::preferential_attachment;
///
/// let g = preferential_attachment(500, 4, 7).unwrap();
/// assert_eq!(g.num_nodes(), 500);
/// ```
pub fn preferential_attachment(
    num_nodes: u32,
    out_per_node: u32,
    seed: u64,
) -> Result<Csr, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = u64::from(num_nodes) * u64::from(out_per_node);
    let mut b = GraphBuilder::with_capacity(num_nodes, m as usize)?;
    // `endpoints` holds one entry per unit of attachment mass: each node
    // contributes one smoothing entry on arrival plus one entry per
    // received edge.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity((2 * m) as usize);
    for v in 0..num_nodes {
        endpoints.push(v);
        if v == 0 {
            continue;
        }
        for _ in 0..out_per_node {
            let t = endpoints[rng.gen_range(0..endpoints.len() - 1)];
            b.add_edge(v, t)?;
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(200, 3, 1).unwrap(),
            preferential_attachment(200, 3, 1).unwrap()
        );
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = preferential_attachment(2000, 8, 3).unwrap();
        let mut indeg = g.in_degrees();
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = indeg[..20].iter().map(|&d| u64::from(d)).sum();
        let total: u64 = indeg.iter().map(|&d| u64::from(d)).sum();
        // The 1% highest in-degree nodes should capture a disproportionate
        // share (>5%) of all edges.
        assert!(
            top * 20 > total,
            "top share {top} of {total} not heavy-tailed"
        );
    }

    #[test]
    fn node_zero_has_no_out_edges() {
        let g = preferential_attachment(50, 2, 9).unwrap();
        assert_eq!(g.out_degree(0), 0);
    }
}
