//! Laptop-scale stand-ins for the paper's six datasets.
//!
//! Table 4 of the paper lists six graphs between 0.46 and 1.9 billion
//! edges. Rebuilding them verbatim is out of scope for a single-machine
//! reproduction, so each gets a seeded synthetic stand-in that preserves
//! the properties PCPM is sensitive to:
//!
//! | dataset | paper (n, m, deg)            | stand-in                                  |
//! |---------|------------------------------|-------------------------------------------|
//! | gplus   | 28.94 M, 463.0 M, 16.0       | R-MAT (social skew), deg 16               |
//! | pld     | 42.89 M, 623.1 M, 14.5       | R-MAT (milder skew), deg 15               |
//! | web     | 118.1 M, 992.8 M, 8.4        | community-block crawl, deg 8, high r      |
//! | kron    | 33.5 M, 1047.9 M, 31.3       | Graph500 R-MAT, deg 31                    |
//! | twitter | 61.58 M, 1468.4 M, 23.8      | R-MAT (social skew), deg 24               |
//! | sd1     | 94.95 M, 1937.5 M, 20.4      | R-MAT (milder skew), one scale larger     |
//!
//! The relative ordering of node counts is kept (web and sd1 are the
//! largest, kron is densest, web is sparsest and most local), which is what
//! the cross-dataset comparisons in Figs. 7–10 exercise.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::gen::rmat::{rmat, RmatConfig};
use crate::gen::web::{web_crawl, WebConfig};

/// The six evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Google Plus follower graph.
    Gplus,
    /// Pay-Level-Domain hyperlink graph.
    Pld,
    /// Webbase-2001 crawl (high-locality labeling).
    Web,
    /// Graph500 scale-25 Kronecker graph.
    Kron,
    /// Twitter follower graph.
    Twitter,
    /// Subdomain hyperlink graph.
    Sd1,
}

impl Dataset {
    /// All six datasets in the paper's presentation order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Gplus,
        Dataset::Pld,
        Dataset::Web,
        Dataset::Kron,
        Dataset::Twitter,
        Dataset::Sd1,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Gplus => "gplus",
            Dataset::Pld => "pld",
            Dataset::Web => "web",
            Dataset::Kron => "kron",
            Dataset::Twitter => "twitter",
            Dataset::Sd1 => "sd1",
        }
    }

    /// Table 4 row for the original dataset: (nodes, edges, avg degree).
    pub fn paper_stats(self) -> (f64, f64, f64) {
        match self {
            Dataset::Gplus => (28.94e6, 462.99e6, 16.0),
            Dataset::Pld => (42.89e6, 623.06e6, 14.53),
            Dataset::Web => (118.14e6, 992.84e6, 8.4),
            Dataset::Kron => (33.5e6, 1047.93e6, 31.28),
            Dataset::Twitter => (61.58e6, 1468.36e6, 23.84),
            Dataset::Sd1 => (94.95e6, 1937.49e6, 20.4),
        }
    }

    /// Stand-in generation spec at the default reproduction scale.
    pub fn spec(self) -> DatasetSpec {
        self.spec_at(DEFAULT_SCALE)
    }

    /// Stand-in generation spec with nodes scaled to roughly `2^scale`.
    ///
    /// `web` and `sd1` are one scale larger than the rest, mirroring their
    /// larger node counts in Table 4; `kron` keeps the Graph500 skew.
    pub fn spec_at(self, scale: u32) -> DatasetSpec {
        match self {
            Dataset::Gplus => DatasetSpec::Rmat(RmatConfig {
                scale,
                edge_factor: 16,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                noise: 0.1,
                seed: 0xE115,
            }),
            Dataset::Pld => DatasetSpec::Rmat(RmatConfig {
                scale,
                edge_factor: 15,
                a: 0.50,
                b: 0.22,
                c: 0.22,
                noise: 0.1,
                seed: 0x91D,
            }),
            Dataset::Web => DatasetSpec::Web(WebConfig {
                num_nodes: 1 << (scale + 1),
                avg_degree: 8,
                site_size: 64,
                intra_site: 0.82,
                hub_fraction: 0.04,
                num_hubs: 256,
                max_hop_exp: 4,
                seed: 0x3EB,
            }),
            Dataset::Kron => DatasetSpec::Rmat(RmatConfig::graph500(scale, 31, 0x1409)),
            Dataset::Twitter => DatasetSpec::Rmat(RmatConfig {
                scale,
                edge_factor: 24,
                a: 0.57,
                b: 0.19,
                c: 0.19,
                noise: 0.1,
                seed: 0x7717,
            }),
            Dataset::Sd1 => DatasetSpec::Rmat(RmatConfig {
                scale: scale + 1,
                edge_factor: 20,
                a: 0.52,
                b: 0.21,
                c: 0.21,
                noise: 0.1,
                seed: 0x5D1,
            }),
        }
    }
}

/// Default log2 node count for the stand-ins (2^17 = 131 K nodes for most
/// datasets, 2^18 for `web`/`sd1`). Chosen so the full six-dataset sweep
/// of every figure finishes in minutes on a laptop.
pub const DEFAULT_SCALE: u32 = 17;

/// How a stand-in is generated.
#[derive(Clone, Copy, Debug)]
pub enum DatasetSpec {
    /// R-MAT sampler with explicit quadrant probabilities.
    Rmat(RmatConfig),
    /// Community-block web crawl.
    Web(WebConfig),
}

impl DatasetSpec {
    /// Generates the stand-in graph.
    pub fn generate(&self) -> Result<Csr, GraphError> {
        match self {
            DatasetSpec::Rmat(cfg) => rmat(cfg),
            DatasetSpec::Web(cfg) => web_crawl(cfg),
        }
    }
}

/// Generates the default stand-in for `dataset`.
///
/// # Examples
///
/// ```no_run
/// use pcpm_graph::gen::{standin, Dataset};
///
/// let g = standin(Dataset::Kron).unwrap();
/// assert!(g.avg_degree() > 20.0);
/// ```
pub fn standin(dataset: Dataset) -> Result<Csr, GraphError> {
    dataset.spec().generate()
}

/// Generates a reduced-scale stand-in, for tests and quick runs.
pub fn standin_at(dataset: Dataset, scale: u32) -> Result<Csr, GraphError> {
    dataset.spec_at(scale).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_generate_at_small_scale() {
        for d in Dataset::ALL {
            let g = standin_at(d, 10).unwrap();
            assert!(g.num_nodes() >= 1 << 10, "{}", d.name());
            assert!(g.num_edges() > 0, "{}", d.name());
        }
    }

    #[test]
    fn kron_is_densest_web_is_sparsest() {
        let degs: Vec<(Dataset, f64)> = Dataset::ALL
            .iter()
            .map(|&d| (d, standin_at(d, 10).unwrap().avg_degree()))
            .collect();
        let kron = degs.iter().find(|(d, _)| *d == Dataset::Kron).unwrap().1;
        let web = degs.iter().find(|(d, _)| *d == Dataset::Web).unwrap().1;
        for &(d, deg) in &degs {
            if d != Dataset::Kron {
                assert!(kron >= deg, "kron {kron} < {} {deg}", d.name());
            }
            if d != Dataset::Web {
                assert!(web <= deg, "web {web} > {} {deg}", d.name());
            }
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["gplus", "pld", "web", "kron", "twitter", "sd1"]);
    }

    #[test]
    fn paper_stats_are_consistent() {
        for d in Dataset::ALL {
            let (n, m, deg) = d.paper_stats();
            assert!(
                (m / n - deg).abs() / deg < 0.05,
                "{}: {} vs {}",
                d.name(),
                m / n,
                deg
            );
        }
    }
}
