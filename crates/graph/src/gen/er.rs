//! Erdős–Rényi `G(n, m)` generator.
//!
//! Uniform random graphs have no degree skew and no labeling locality, so
//! they are the adversarial case for PCPM's compression (r stays close to
//! its minimum). They are used in tests and the ablation benches.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed `G(n, m)` graph with `num_edges` sampled uniformly
/// (before dedup / self-loop removal).
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::erdos_renyi;
///
/// let g = erdos_renyi(1000, 8000, 1).unwrap();
/// assert_eq!(g.num_nodes(), 1000);
/// ```
pub fn erdos_renyi(num_nodes: u32, num_edges: u64, seed: u64) -> Result<Csr, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges as usize)?;
    if num_nodes > 1 {
        for _ in 0..num_edges {
            let s: NodeId = rng.gen_range(0..num_nodes);
            let t: NodeId = rng.gen_range(0..num_nodes);
            b.add_edge(s, t)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            erdos_renyi(100, 500, 9).unwrap(),
            erdos_renyi(100, 500, 9).unwrap()
        );
    }

    #[test]
    fn single_node_graph_has_no_edges() {
        let g = erdos_renyi(1, 100, 0).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(1 << 10, 1 << 14, 5).unwrap();
        let max = g.out_degrees().into_iter().max().unwrap();
        // Expected degree 16; a uniform graph should not have 10x outliers.
        assert!(max < 60, "max degree {max} too skewed for ER");
    }
}
