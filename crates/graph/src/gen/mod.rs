//! Seeded synthetic graph generators.
//!
//! The paper evaluates on six public graphs between 0.46 and 1.9 billion
//! edges (Table 4). At laptop scale we regenerate the *shape* of each with
//! a seeded generator (see [`datasets`]): R-MAT/Kronecker skew for the
//! social and synthetic graphs, and a community-block crawl for the
//! high-locality `web` graph. All generators are deterministic for a fixed
//! seed, so every experiment in the harness is reproducible bit-for-bit.

pub mod ba;
pub mod datasets;
pub mod er;
pub mod rmat;
pub mod web;

pub use ba::preferential_attachment;
pub use datasets::{standin, Dataset, DatasetSpec};
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatConfig};
pub use web::{web_crawl, WebConfig};
