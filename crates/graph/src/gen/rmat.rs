//! R-MAT / Graph500 Kronecker generator.
//!
//! The `kron` dataset in the paper is a scale-25 Graph500 Kronecker graph;
//! R-MAT with the Graph500 parameters `(a, b, c, d) = (0.57, 0.19, 0.19,
//! 0.05)` is the standard edge-by-edge sampler for that family. The skewed
//! quadrant probabilities produce the heavy-tailed degree distribution that
//! drives PCPM's compression-ratio advantage on social graphs.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters for the R-MAT recursive quadrant sampler.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of nodes.
    pub scale: u32,
    /// Average directed edges per node (edge factor); Graph500 uses 16.
    pub edge_factor: u32,
    /// Probability of the top-left quadrant (source and target in the
    /// lower half); Graph500 uses 0.57.
    pub a: f64,
    /// Top-right quadrant probability; Graph500 uses 0.19.
    pub b: f64,
    /// Bottom-left quadrant probability; Graph500 uses 0.19.
    pub c: f64,
    /// Per-level multiplicative noise applied to the quadrant
    /// probabilities, which avoids exactly self-similar artifacts.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 Kronecker parameters at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            seed,
        }
    }
}

/// Generates a directed R-MAT graph.
///
/// Edges are sampled in parallel chunks (one RNG stream per chunk, derived
/// from the seed), then normalized (sorted, deduplicated, self-loops
/// dropped) by [`GraphBuilder`]. The returned edge count is therefore
/// slightly below `n * edge_factor`.
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::{rmat, RmatConfig};
///
/// let g = rmat(&RmatConfig::graph500(10, 8, 42)).unwrap();
/// assert_eq!(g.num_nodes(), 1 << 10);
/// assert!(g.num_edges() > 0);
/// ```
pub fn rmat(cfg: &RmatConfig) -> Result<Csr, GraphError> {
    let n: u64 = 1u64 << cfg.scale;
    if n > crate::MAX_NODES {
        return Err(GraphError::TooManyNodes { requested: n });
    }
    let m = n * u64::from(cfg.edge_factor);
    let chunks: u64 = 64;
    let per_chunk = m / chunks + 1;
    let edge_chunks: Vec<Vec<(NodeId, NodeId)>> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(chunk + 1)),
            );
            let count = per_chunk.min(m.saturating_sub(chunk * per_chunk));
            let mut edges = Vec::with_capacity(count as usize);
            for _ in 0..count {
                edges.push(sample_edge(cfg, &mut rng));
            }
            edges
        })
        .collect();
    let mut b = GraphBuilder::with_capacity(n as u32, m as usize)?;
    for chunk in edge_chunks {
        b.extend(chunk);
    }
    b.build()
}

fn sample_edge(cfg: &RmatConfig, rng: &mut StdRng) -> (NodeId, NodeId) {
    let mut src: u64 = 0;
    let mut dst: u64 = 0;
    for _ in 0..cfg.scale {
        // Per-level noisy quadrant probabilities.
        let na = cfg.a * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nb = cfg.b * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nc = cfg.c * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nd = (1.0 - cfg.a - cfg.b - cfg.c) * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let total = na + nb + nc + nd;
        let r = rng.gen::<f64>() * total;
        src <<= 1;
        dst <<= 1;
        if r < na {
            // top-left: both bits 0
        } else if r < na + nb {
            dst |= 1;
        } else if r < na + nb + nc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src as NodeId, dst as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig::graph500(8, 4, 7);
        let g1 = rmat(&cfg).unwrap();
        let g2 = rmat(&cfg).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = rmat(&RmatConfig::graph500(8, 4, 1)).unwrap();
        let g2 = rmat(&RmatConfig::graph500(8, 4, 2)).unwrap();
        assert_ne!(g1, g2);
    }

    #[test]
    fn node_count_and_rough_edge_count() {
        let g = rmat(&RmatConfig::graph500(10, 8, 3)).unwrap();
        assert_eq!(g.num_nodes(), 1024);
        // Dedup removes some edges but the bulk should remain.
        let target = 1024 * 8;
        assert!(
            g.num_edges() > target / 2,
            "too few edges: {}",
            g.num_edges()
        );
        assert!(g.num_edges() <= target);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(&RmatConfig::graph500(12, 16, 11)).unwrap();
        let mut degs = g.out_degrees();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = degs[..degs.len() / 100].iter().map(|&d| u64::from(d)).sum();
        // On a Graph500 R-MAT the top 1% of nodes should own well over 10%
        // of the edges; a uniform graph would give them exactly 1%.
        assert!(
            top1pct * 10 > g.num_edges(),
            "top-1% share too small: {top1pct} of {}",
            g.num_edges()
        );
    }

    #[test]
    fn no_self_loops_after_normalization() {
        let g = rmat(&RmatConfig::graph500(8, 8, 5)).unwrap();
        assert!(g.edges().all(|(s, t)| s != t));
    }
}
