//! Community-block web-crawl generator.
//!
//! The `web` (Webbase-2001) dataset in the paper is the outlier: it is very
//! sparse (average degree 8.4) but its node labeling has extremely high
//! locality — the paper reports a compression ratio `r = 8.4` under the
//! *original* labeling, i.e. nearly every vertex's out-neighbors fall in a
//! single partition. That locality is what lets the pull baseline win and
//! what makes GOrder useless on it (Table 6).
//!
//! This generator reproduces that structure directly: nodes are grouped
//! into contiguously-labeled "sites"; most edges stay within the site or
//! point to nearby sites (geometric distance decay), and a small fraction
//! point to global hub pages, mimicking cross-site links to popular
//! portals.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters for the web-crawl generator.
#[derive(Clone, Copy, Debug)]
pub struct WebConfig {
    /// Total number of pages.
    pub num_nodes: u32,
    /// Average out-degree.
    pub avg_degree: u32,
    /// Pages per site (contiguous ID block). Smaller sites → higher
    /// labeling locality.
    pub site_size: u32,
    /// Fraction of edges that stay inside the source's own site.
    pub intra_site: f64,
    /// Fraction of edges that point to one of the global hub pages
    /// (the rest go to geometrically-nearby sites).
    pub hub_fraction: f64,
    /// Number of global hub pages (the first IDs in the graph).
    pub num_hubs: u32,
    /// Cross-site links jump `2^U(0, max_hop_exp)` sites; smaller keeps
    /// links shorter and the compression ratio closer to the Webbase
    /// optimum.
    pub max_hop_exp: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        Self {
            num_nodes: 1 << 18,
            avg_degree: 8,
            site_size: 64,
            intra_site: 0.8,
            hub_fraction: 0.05,
            num_hubs: 256,
            max_hop_exp: 5,
            seed: 2001,
        }
    }
}

/// Generates a high-locality web-crawl graph.
///
/// # Examples
///
/// ```
/// use pcpm_graph::gen::{web_crawl, WebConfig};
///
/// let g = web_crawl(&WebConfig { num_nodes: 4096, ..WebConfig::default() }).unwrap();
/// assert_eq!(g.num_nodes(), 4096);
/// ```
pub fn web_crawl(cfg: &WebConfig) -> Result<Csr, GraphError> {
    if u64::from(cfg.num_nodes) > crate::MAX_NODES {
        return Err(GraphError::TooManyNodes {
            requested: u64::from(cfg.num_nodes),
        });
    }
    let n = cfg.num_nodes;
    let site = cfg.site_size.max(2);
    let hubs = cfg.num_hubs.min(n);
    let chunks: u32 = 64;
    let per_chunk = n / chunks + 1;
    let edge_chunks: Vec<Vec<(NodeId, NodeId)>> = (0..chunks)
        .into_par_iter()
        .map(|chunk| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (0xd134_2543_de82_ef95u64).wrapping_mul(u64::from(chunk) + 1),
            );
            let lo = chunk * per_chunk;
            let hi = ((chunk + 1) * per_chunk).min(n);
            let mut edges = Vec::new();
            for v in lo..hi {
                let site_base = (v / site) * site;
                for _ in 0..cfg.avg_degree {
                    let roll = rng.gen::<f64>();
                    let t = if roll < cfg.intra_site {
                        // Link within the page's own site.
                        site_base + rng.gen_range(0..site.min(n - site_base))
                    } else if roll < cfg.intra_site + cfg.hub_fraction && hubs > 0 {
                        // Link to a global hub portal.
                        rng.gen_range(0..hubs)
                    } else {
                        // Link to a geometrically-nearby site: distance
                        // decays as 2^k sites away with probability 2^-k.
                        let hop_sites = 1u32 << rng.gen_range(0..=cfg.max_hop_exp);
                        let dir: bool = rng.gen();
                        let delta = hop_sites * site;
                        let base = if dir {
                            site_base.saturating_add(delta) % n
                        } else {
                            site_base.wrapping_sub(delta).min(n - 1) % n
                        };
                        let sb = (base / site) * site;
                        sb + rng.gen_range(0..site.min(n - sb))
                    };
                    edges.push((v, t));
                }
            }
            edges
        })
        .collect();
    let mut b = GraphBuilder::with_capacity(n, (n as usize) * cfg.avg_degree as usize)?;
    for chunk in edge_chunks {
        b.extend(chunk);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebConfig {
        WebConfig {
            num_nodes: 1 << 12,
            ..WebConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(web_crawl(&small()).unwrap(), web_crawl(&small()).unwrap());
    }

    #[test]
    fn most_edges_are_local() {
        let cfg = small();
        let g = web_crawl(&cfg).unwrap();
        let window = u64::from(cfg.site_size) * 4;
        let local = g
            .edges()
            .filter(|&(s, t)| {
                let d = i64::from(s) - i64::from(t);
                d.unsigned_abs() <= window
            })
            .count() as u64;
        // With 80% intra-site edges, well over half of all edges must land
        // within a few sites of the source even after dedup.
        assert!(
            local * 2 > g.num_edges(),
            "only {local}/{} edges local",
            g.num_edges()
        );
    }

    #[test]
    fn hubs_receive_many_links() {
        let cfg = small();
        let g = web_crawl(&cfg).unwrap();
        let indeg = g.in_degrees();
        let hub_avg: f64 = indeg[..cfg.num_hubs as usize]
            .iter()
            .map(|&d| f64::from(d))
            .sum::<f64>()
            / f64::from(cfg.num_hubs);
        let all_avg: f64 = indeg.iter().map(|&d| f64::from(d)).sum::<f64>() / indeg.len() as f64;
        // At this tiny test scale hubs are 6% of all nodes, so the contrast
        // is milder than at reproduction scale; 1.5x is still a clear signal.
        assert!(
            hub_avg > 1.5 * all_avg,
            "hubs not hot: {hub_avg:.1} vs {all_avg:.1}"
        );
    }

    #[test]
    fn respects_node_count_and_sparsity() {
        let g = web_crawl(&small()).unwrap();
        assert_eq!(g.num_nodes(), 1 << 12);
        assert!(g.avg_degree() > 4.0 && g.avg_degree() <= 8.0);
    }
}
