//! Graph serialization: text edge lists and a compact binary format.
//!
//! The text format is the de-facto standard `src dst` whitespace-separated
//! edge list with `#` comments (SNAP-compatible). The binary format is a
//! little-endian dump of the CSR arrays with a magic header, suitable for
//! caching generated stand-ins between harness runs.

use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use crate::GraphBuilder;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary CSR format ("PCPMGRPH", version 1).
const MAGIC: &[u8; 8] = b"PCPMGR01";

/// Parses a whitespace-separated edge list from a reader.
///
/// Lines starting with `#` or `%` are comments. Node IDs may be sparse;
/// the graph size is `max_id + 1` unless `num_nodes` is given.
pub fn read_edge_list<R: Read>(reader: R, num_nodes: Option<u32>) -> Result<Csr, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: "expected two node IDs".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: e.to_string(),
            })
        };
        let s = parse(it.next(), idx)?;
        let t = parse(it.next(), idx)?;
        max_id = max_id.max(s).max(t);
        edges.push((s, t));
    }
    let n = match num_nodes {
        Some(n) => n,
        None if edges.is_empty() => 0,
        None => max_id + 1,
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len())?;
    b.extend(edges);
    b.build()
}

/// Writes a graph as a `src dst` text edge list.
pub fn write_edge_list<W: Write>(graph: &Csr, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nodes: {} edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(w, "{s} {t}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes the CSR into the binary format.
pub fn to_bytes(graph: &Csr) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        MAGIC.len() + 12 + graph.offsets().len() * 8 + graph.targets().len() * 4,
    );
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&graph.num_nodes().to_le_bytes());
    buf.extend_from_slice(&graph.num_edges().to_le_bytes());
    for &o in graph.offsets() {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    for &t in graph.targets() {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    buf
}

/// Reads a little-endian scalar off the front of `data`.
macro_rules! take_le {
    ($data:ident, $t:ty) => {{
        let (head, rest) = $data.split_at(std::mem::size_of::<$t>());
        $data = rest;
        <$t>::from_le_bytes(head.try_into().expect("length checked above"))
    }};
}

/// Deserializes a CSR from the binary format, revalidating all invariants.
pub fn from_bytes(mut data: &[u8]) -> Result<Csr, GraphError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(GraphError::CorruptBinary("truncated header"));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(GraphError::CorruptBinary("bad magic"));
    }
    data = &data[MAGIC.len()..];
    let n = take_le!(data, u32);
    let m = take_le!(data, u64);
    let need = (n as usize + 1)
        .checked_mul(8)
        .and_then(|x| x.checked_add((m as usize).checked_mul(4)?))
        .ok_or(GraphError::CorruptBinary("size overflow"))?;
    if data.len() != need {
        return Err(GraphError::CorruptBinary("payload size mismatch"));
    }
    let mut offsets = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        offsets.push(take_le!(data, u64));
    }
    let mut targets = Vec::with_capacity(m as usize);
    for _ in 0..m {
        targets.push(take_le!(data, u32));
    }
    Csr::from_parts(n, offsets, targets)
}

/// FNV-1a 64-bit checksum over a byte payload.
///
/// Deterministic, dependency-free and fast enough to cover multi-hundred-
/// megabyte snapshot payloads; used by the engine-snapshot cache
/// (`pcpm_core::snapshot`) to reject corrupted or truncated files before
/// any structural decoding happens.
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Magic bytes identifying the binary edge-weight format ("PCPMWT", v1).
const WEIGHTS_MAGIC: &[u8; 8] = b"PCPMWT01";

/// Serializes an edge-weight vector (CSR order) into a little-endian
/// binary blob with a magic header and an explicit count.
pub fn weights_to_bytes(weights: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WEIGHTS_MAGIC.len() + 8 + weights.len() * 4);
    buf.extend_from_slice(WEIGHTS_MAGIC);
    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
    for &w in weights {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

/// Deserializes an edge-weight blob written by [`weights_to_bytes`],
/// validating the magic, the count and (when given) the edge count of
/// the graph the weights must be parallel to.
pub fn weights_from_bytes(
    mut data: &[u8],
    expect_edges: Option<u64>,
) -> Result<Vec<f32>, GraphError> {
    if data.len() < WEIGHTS_MAGIC.len() + 8 {
        return Err(GraphError::CorruptBinary("truncated weights header"));
    }
    if &data[..WEIGHTS_MAGIC.len()] != WEIGHTS_MAGIC {
        return Err(GraphError::CorruptBinary("bad weights magic"));
    }
    data = &data[WEIGHTS_MAGIC.len()..];
    let m = take_le!(data, u64);
    if let Some(want) = expect_edges {
        if m != want {
            return Err(GraphError::CorruptBinary("weight count mismatch"));
        }
    }
    if data.len()
        != (m as usize)
            .checked_mul(4)
            .ok_or(GraphError::CorruptBinary("size overflow"))?
    {
        return Err(GraphError::CorruptBinary("weights payload size mismatch"));
    }
    let mut weights = Vec::with_capacity(m as usize);
    for _ in 0..m {
        weights.push(take_le!(data, f32));
    }
    Ok(weights)
}

/// Writes the binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<(), GraphError> {
    std::fs::write(path, to_bytes(graph))?;
    Ok(())
}

/// Reads the binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Csr, GraphError> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(5, &[(0, 1), (0, 4), (2, 3), (4, 0)]).unwrap()
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_infers_node_count() {
        let input = b"# comment\n0 1\n3 2\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        let input = b"0 x\n";
        assert!(matches!(
            read_edge_list(&input[..], None),
            Err(GraphError::Parse { line: 1, .. })
        ));
        let input = b"0\n";
        assert!(read_edge_list(&input[..], None).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = b"% matrix-market style\n\n# snap style\n1 0\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..4]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
        let mut truncated = bytes.to_vec();
        truncated.pop();
        assert!(from_bytes(&truncated).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pcpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(from_bytes(&to_bytes(&g)).unwrap(), g);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        let a = checksum64(b"pcpm snapshot payload");
        assert_eq!(a, checksum64(b"pcpm snapshot payload"));
        assert_ne!(a, checksum64(b"pcpm snapshot payloae"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
    }

    #[test]
    fn weights_round_trip_and_reject_corruption() {
        let w = vec![0.5f32, -1.25, 3.0, f32::MIN_POSITIVE];
        let bytes = weights_to_bytes(&w);
        assert_eq!(weights_from_bytes(&bytes, Some(4)).unwrap(), w);
        assert_eq!(weights_from_bytes(&bytes, None).unwrap(), w);
        assert!(weights_from_bytes(&bytes, Some(3)).is_err());
        assert!(weights_from_bytes(&bytes[..7], None).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(weights_from_bytes(&bad, None).is_err());
        let mut truncated = bytes;
        truncated.pop();
        assert!(weights_from_bytes(&truncated, None).is_err());
        assert!(weights_from_bytes(&weights_to_bytes(&[]), Some(0))
            .unwrap()
            .is_empty());
    }
}
