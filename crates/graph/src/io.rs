//! Graph serialization: text edge lists and a compact binary format.
//!
//! The text format is the de-facto standard `src dst` whitespace-separated
//! edge list with `#` comments (SNAP-compatible). The binary format is a
//! little-endian dump of the CSR arrays with a magic header, suitable for
//! caching generated stand-ins between harness runs.

use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use crate::GraphBuilder;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary CSR format ("PCPMGRPH", version 1).
const MAGIC: &[u8; 8] = b"PCPMGR01";

/// Parses a whitespace-separated edge list from a reader.
///
/// Lines starting with `#` or `%` are comments. Node IDs may be sparse;
/// the graph size is `max_id + 1` unless `num_nodes` is given.
pub fn read_edge_list<R: Read>(reader: R, num_nodes: Option<u32>) -> Result<Csr, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                message: "expected two node IDs".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: idx + 1,
                message: e.to_string(),
            })
        };
        let s = parse(it.next(), idx)?;
        let t = parse(it.next(), idx)?;
        max_id = max_id.max(s).max(t);
        edges.push((s, t));
    }
    let n = match num_nodes {
        Some(n) => n,
        None if edges.is_empty() => 0,
        None => max_id + 1,
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len())?;
    b.extend(edges);
    b.build()
}

/// Writes a graph as a `src dst` text edge list.
pub fn write_edge_list<W: Write>(graph: &Csr, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nodes: {} edges: {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(w, "{s} {t}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes the CSR into the binary format.
pub fn to_bytes(graph: &Csr) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        MAGIC.len() + 12 + graph.offsets().len() * 8 + graph.targets().len() * 4,
    );
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&graph.num_nodes().to_le_bytes());
    buf.extend_from_slice(&graph.num_edges().to_le_bytes());
    for &o in graph.offsets() {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    for &t in graph.targets() {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    buf
}

/// Reads a little-endian scalar off the front of `data`.
macro_rules! take_le {
    ($data:ident, $t:ty) => {{
        let (head, rest) = $data.split_at(std::mem::size_of::<$t>());
        $data = rest;
        <$t>::from_le_bytes(head.try_into().expect("length checked above"))
    }};
}

/// Deserializes a CSR from the binary format, revalidating all invariants.
pub fn from_bytes(mut data: &[u8]) -> Result<Csr, GraphError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(GraphError::CorruptBinary("truncated header"));
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(GraphError::CorruptBinary("bad magic"));
    }
    data = &data[MAGIC.len()..];
    let n = take_le!(data, u32);
    let m = take_le!(data, u64);
    let need = (n as usize + 1)
        .checked_mul(8)
        .and_then(|x| x.checked_add((m as usize).checked_mul(4)?))
        .ok_or(GraphError::CorruptBinary("size overflow"))?;
    if data.len() != need {
        return Err(GraphError::CorruptBinary("payload size mismatch"));
    }
    let mut offsets = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        offsets.push(take_le!(data, u64));
    }
    let mut targets = Vec::with_capacity(m as usize);
    for _ in 0..m {
        targets.push(take_le!(data, u32));
    }
    Csr::from_parts(n, offsets, targets)
}

/// Writes the binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<(), GraphError> {
    std::fs::write(path, to_bytes(graph))?;
    Ok(())
}

/// Reads the binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Csr, GraphError> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(5, &[(0, 1), (0, 4), (2, 3), (4, 0)]).unwrap()
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_infers_node_count() {
        let input = b"# comment\n0 1\n3 2\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        let input = b"0 x\n";
        assert!(matches!(
            read_edge_list(&input[..], None),
            Err(GraphError::Parse { line: 1, .. })
        ));
        let input = b"0\n";
        assert!(read_edge_list(&input[..], None).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = b"% matrix-market style\n\n# snap style\n1 0\n";
        let g = read_edge_list(&input[..], None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..4]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
        let mut truncated = bytes.to_vec();
        truncated.pop();
        assert!(from_bytes(&truncated).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pcpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        save_binary(&g, &path).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(from_bytes(&to_bytes(&g)).unwrap(), g);
    }
}
