//! Graph substrate for the PCPM PageRank reproduction.
//!
//! This crate provides everything the partition-centric engine and the
//! baselines need from a graph library:
//!
//! - compressed sparse representations ([`Csr`], [`Coo`]) with sorted
//!   adjacency lists and cheap transposition,
//! - a deduplicating [`builder::GraphBuilder`],
//! - seeded synthetic generators ([`gen`]) including R-MAT/Kronecker and a
//!   locality-preserving web-crawl generator, plus laptop-scale stand-ins for
//!   the six datasets of the paper ([`gen::datasets`]),
//! - node-ordering algorithms ([`order`]) including a greedy GOrder
//!   implementation used by the locality experiments (Tables 6 and 7),
//! - plain-text and binary I/O ([`io`]),
//! - degree/locality statistics ([`stats`]).
//!
//! The crate is deliberately free of any PCPM-specific concepts; partitions
//! and the PNG layout live in `pcpm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod coo;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod mm;
pub mod order;
pub mod stats;
pub mod weights;

pub use builder::GraphBuilder;
pub use coo::Coo;
pub use csr::{Csr, NodeId};
pub use error::GraphError;
pub use weights::EdgeWeights;

/// Maximum number of nodes supported by the PCPM engine.
///
/// PCPM reserves the most significant bit of a 32-bit node ID to demarcate
/// message boundaries in destination-ID bins (paper §3.2), so graphs are
/// limited to `2^31` nodes rather than `2^32`.
pub const MAX_NODES: u64 = 1 << 31;
