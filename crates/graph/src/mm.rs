//! Matrix Market (`.mtx`) reader.
//!
//! Supports the `matrix coordinate` format in `pattern`, `real` and
//! `integer` fields with `general` or `symmetric` symmetry — the encoding
//! used by the SuiteSparse collection, which is where SpMV papers
//! (including the cache-blocking work this paper compares against) source
//! their matrices. An entry `(i, j)` becomes the directed edge `i → j`;
//! symmetric files also add the mirror edge. Duplicate coordinates are
//! summed, matching SpMV semantics.

use crate::csr::{Csr, NodeId};
use crate::error::GraphError;
use crate::weights::EdgeWeights;
use std::io::{BufRead, BufReader, Read};

/// Parses a Matrix Market coordinate file into a square graph and, when
/// the field is numeric, its edge weights (aligned with the CSR edge
/// order).
///
/// # Examples
///
/// ```
/// use pcpm_graph::mm::read_matrix_market;
///
/// let input = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 0.5\n3 1 2.0\n";
/// let (g, w) = read_matrix_market(input.as_bytes()).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(0), &[1]);
/// assert_eq!(w.unwrap().row(&g, 0), &[0.5]);
/// ```
pub fn read_matrix_market<R: Read>(reader: R) -> Result<(Csr, Option<EdgeWeights>), GraphError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty file"))?
        .1
        .map_err(GraphError::from)?;
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(1, "expected '%%MatrixMarket matrix ...' header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err(1, "only the coordinate format is supported"));
    }
    let has_values = match tokens[3] {
        "pattern" => false,
        "real" | "integer" | "double" => true,
        other => return Err(parse_err(1, &format!("unsupported field '{other}'"))),
    };
    let symmetric = match tokens[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(1, &format!("unsupported symmetry '{other}'"))),
    };

    // Size line (first non-comment line).
    let mut size_line = None;
    for (idx, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((idx, t.to_string()));
        break;
    }
    let (size_idx, size) = size_line.ok_or_else(|| parse_err(1, "missing size line"))?;
    let dims: Vec<u64> = size
        .split_whitespace()
        .map(|t| {
            t.parse::<u64>()
                .map_err(|e| parse_err(size_idx + 1, &e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(size_idx + 1, "size line must be 'rows cols nnz'"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    if rows != cols {
        return Err(parse_err(
            size_idx + 1,
            "graph import requires a square matrix",
        ));
    }
    if rows > crate::MAX_NODES {
        return Err(GraphError::TooManyNodes { requested: rows });
    }
    let n = rows as u32;

    // Entries. The header's nnz is untrusted input: cap the up-front
    // reservation so a hostile size line cannot force a huge allocation.
    let mut triplets: Vec<(NodeId, NodeId, f32)> = Vec::with_capacity(nnz.min(1 << 20) as usize);
    let mut seen = 0u64;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: u64 = next_num(&mut it, idx)?;
        let j: u64 = next_num(&mut it, idx)?;
        let w: f32 = if has_values {
            it.next()
                .ok_or_else(|| parse_err(idx + 1, "missing value"))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| parse_err(idx + 1, &e.to_string()))?
        } else {
            1.0
        };
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(GraphError::NodeOutOfRange {
                node: i.max(j),
                num_nodes: rows,
            });
        }
        let (s, d) = ((i - 1) as NodeId, (j - 1) as NodeId);
        triplets.push((s, d, w));
        if symmetric && s != d {
            triplets.push((d, s, w));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            &format!("expected {nnz} entries, found {seen}"),
        ));
    }

    // Sort, sum duplicates, build CSR + aligned weights.
    triplets.sort_unstable_by_key(|&(s, d, _)| (s, d));
    let mut merged: Vec<(NodeId, NodeId, f32)> = Vec::with_capacity(triplets.len());
    for (s, d, w) in triplets {
        match merged.last_mut() {
            Some((ls, ld, lw)) if *ls == s && *ld == d => *lw += w,
            _ => merged.push((s, d, w)),
        }
    }
    let mut offsets = vec![0u64; n as usize + 1];
    for &(s, _, _) in &merged {
        offsets[s as usize + 1] += 1;
    }
    for v in 0..n as usize {
        offsets[v + 1] += offsets[v];
    }
    let targets: Vec<NodeId> = merged.iter().map(|&(_, d, _)| d).collect();
    let graph = Csr::from_parts(n, offsets, targets)?;
    let weights = if has_values {
        Some(EdgeWeights::new(
            &graph,
            merged.iter().map(|&(_, _, w)| w).collect(),
        )?)
    } else {
        None
    };
    Ok((graph, weights))
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line,
        message: message.to_string(),
    }
}

fn next_num<'a>(it: &mut impl Iterator<Item = &'a str>, idx: usize) -> Result<u64, GraphError> {
    it.next()
        .ok_or_else(|| parse_err(idx + 1, "missing coordinate"))?
        .parse()
        .map_err(|e: std::num::ParseIntError| parse_err(idx + 1, &e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_general() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n% c\n4 4 3\n1 2\n2 3\n4 1\n";
        let (g, w) = read_matrix_market(input.as_bytes()).unwrap();
        assert!(w.is_none());
        assert_eq!(g.num_nodes(), 4);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn symmetric_adds_mirror_edges() {
        let input = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let (g, _) = read_matrix_market(input.as_bytes()).unwrap();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        // (2,1) mirrors to (1,2); the diagonal (3,3) does not duplicate.
        assert_eq!(edges, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn real_values_align_with_csr_order() {
        let input =
            "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 3 30.0\n1 2 20.0\n2 1 10.0\n";
        let (g, w) = read_matrix_market(input.as_bytes()).unwrap();
        let w = w.unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(w.row(&g, 0), &[20.0, 30.0]);
        assert_eq!(w.row(&g, 1), &[10.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let input = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.5\n1 2 2.5\n";
        let (g, w) = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(w.unwrap().row(&g, 0), &[4.0]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_matrix_market(&b""[..]).is_err());
        assert!(read_matrix_market(&b"%%MatrixMarket matrix array real general\n"[..]).is_err());
        assert!(
            read_matrix_market(
                &b"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"[..]
            )
            .is_err(),
            "non-square must be rejected"
        );
        assert!(
            read_matrix_market(
                &b"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"[..]
            )
            .is_err(),
            "nnz mismatch must be rejected"
        );
        assert!(
            read_matrix_market(
                &b"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"[..]
            )
            .is_err(),
            "0-based coordinates must be rejected"
        );
        assert!(
            read_matrix_market(
                &b"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n"[..]
            )
            .is_err(),
            "out-of-range coordinates must be rejected"
        );
    }

    #[test]
    fn one_based_bounds_are_inclusive() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 2\n";
        let (g, _) = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.neighbors(1), &[1]);
    }
}
