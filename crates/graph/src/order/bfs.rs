//! Breadth-first node ordering.

use crate::csr::{Csr, NodeId};
use std::collections::VecDeque;

/// Labels nodes in BFS discovery order starting from the highest
/// out-degree node; remaining components are seeded from the smallest
/// unvisited ID.
///
/// BFS ordering clusters each neighborhood frontier into a contiguous label
/// range, a classical cheap locality transform (cf. Cuthill–McKee).
pub fn bfs_order(graph: &Csr) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    let mut perm = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    let start = (0..n as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0);
    let mut seed_cursor: u32 = 0;
    let mut seed = Some(start);
    while next < n as u32 {
        if queue.is_empty() {
            let s = match seed.take() {
                Some(s) if perm[s as usize] == u32::MAX => s,
                _ => {
                    while perm[seed_cursor as usize] != u32::MAX {
                        seed_cursor += 1;
                    }
                    seed_cursor
                }
            };
            perm[s as usize] = next;
            next += 1;
            queue.push_back(s);
        }
        while let Some(v) = queue.pop_front() {
            for &t in graph.neighbors(v) {
                if perm[t as usize] == u32::MAX {
                    perm[t as usize] = next;
                    next += 1;
                    queue.push_back(t);
                }
            }
        }
    }
    perm
}

/// Re-export friendly alias used by the ordering registry.
pub type BfsOrder = fn(&Csr) -> Vec<NodeId>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::permute::validate_permutation;

    #[test]
    fn valid_on_disconnected_graph() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (3, 4)]).unwrap();
        let perm = bfs_order(&g);
        validate_permutation(5, &perm).unwrap();
    }

    #[test]
    fn frontier_is_contiguous() {
        // Star: center 0 with leaves 1..=4; leaves must be labeled 1..=4.
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let perm = bfs_order(&g);
        assert_eq!(perm[0], 0);
        let mut leaves: Vec<_> = perm[1..].to_vec();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(bfs_order(&g).is_empty());
    }
}
