//! Degree-descending node ordering.

use crate::csr::Csr;

/// Labels nodes by descending in-degree (ties by ascending old ID).
///
/// Clusters hub targets at the front of the ID space, a cheap transform
/// ("hub sorting") that concentrates random accesses into few cache lines.
pub fn degree_order(graph: &Csr) -> Vec<u32> {
    let indeg = graph.in_degrees();
    let mut by_degree: Vec<u32> = (0..graph.num_nodes()).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(indeg[v as usize]), v));
    let mut perm = vec![0u32; graph.num_nodes() as usize];
    for (new, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::permute::validate_permutation;

    #[test]
    fn hubs_get_smallest_labels() {
        // Node 3 has in-degree 3, node 1 has 1, others 0.
        let g = Csr::from_edges(4, &[(0, 3), (1, 3), (2, 3), (0, 1)]).unwrap();
        let perm = degree_order(&g);
        validate_permutation(4, &perm).unwrap();
        assert_eq!(perm[3], 0);
        assert_eq!(perm[1], 1);
    }

    #[test]
    fn ties_break_by_old_id() {
        let g = Csr::from_edges(3, &[]).unwrap();
        assert_eq!(degree_order(&g), vec![0, 1, 2]);
    }
}
