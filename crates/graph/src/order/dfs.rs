//! Depth-first node ordering.

use crate::csr::Csr;

/// Labels nodes in DFS pre-order starting from the highest out-degree
/// node; remaining components are seeded from the smallest unvisited ID.
///
/// Uses an explicit stack, so deep graphs cannot overflow the call stack.
pub fn dfs_order(graph: &Csr) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    let mut perm = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let start = (0..n as u32)
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap_or(0);
    let mut seed_cursor: u32 = 0;
    let mut seed = Some(start);
    while next < n as u32 {
        if stack.is_empty() {
            let s = match seed.take() {
                Some(s) if perm[s as usize] == u32::MAX => s,
                _ => {
                    while perm[seed_cursor as usize] != u32::MAX {
                        seed_cursor += 1;
                    }
                    seed_cursor
                }
            };
            stack.push(s);
        }
        while let Some(v) = stack.pop() {
            if perm[v as usize] != u32::MAX {
                continue;
            }
            perm[v as usize] = next;
            next += 1;
            // Push in reverse so the smallest neighbor is visited first.
            for &t in graph.neighbors(v).iter().rev() {
                if perm[t as usize] == u32::MAX {
                    stack.push(t);
                }
            }
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::permute::validate_permutation;

    #[test]
    fn valid_on_disconnected_graph() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        validate_permutation(6, &dfs_order(&g)).unwrap();
    }

    #[test]
    fn chain_is_labeled_in_walk_order() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // Node 0 has out-degree 1, same as others; max_by_key picks the
        // last max, node 2. But from 2 the chain continues 3, then seeds 0.
        let perm = dfs_order(&g);
        validate_permutation(4, &perm).unwrap();
        // Successor along the chain always gets the next label when
        // unvisited: check monotone run from the start node.
        let start = perm.iter().position(|&p| p == 0).unwrap() as u32;
        let mut v = start;
        let mut label = 0;
        while let Some(&t) = g.neighbors(v).first() {
            if perm[t as usize] != label + 1 {
                break;
            }
            label += 1;
            v = t;
        }
        assert!(label > 0, "no contiguous DFS run found");
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000u32;
        let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = Csr::from_edges(n, &edges).unwrap();
        validate_permutation(n, &dfs_order(&g)).unwrap();
    }
}
