//! Greedy GOrder implementation (Wei, Yu, Lu, Lin — SIGMOD 2016).
//!
//! GOrder places nodes one at a time, always picking the unplaced node with
//! the highest affinity score to a sliding window of the `w` most recently
//! placed nodes:
//!
//! `S(v) = Σ_{u ∈ window} ( |Ni(u) ∩ Ni(v)| + [u → v] + [v → u] )`
//!
//! i.e. sibling score (shared in-neighbors) plus direct adjacency. Because
//! the score only ever changes by unit increments when a node enters or
//! leaves the window, it is maintained with an array of keys plus a lazy
//! max-heap.
//!
//! Hub mitigation: expanding the sibling term of a node `u` touches every
//! out-neighbor of every in-neighbor of `u`. On skewed graphs a single
//! high-degree in-neighbor makes this quadratic, so in-neighbors with
//! out-degree above [`GorderConfig::hub_threshold`] are skipped — the same
//! practical cutoff the reference implementation applies.

use crate::csr::{Csr, NodeId};
use std::collections::BinaryHeap;

/// Tuning knobs for greedy GOrder.
#[derive(Clone, Copy, Debug)]
pub struct GorderConfig {
    /// Sliding-window size `w`; the paper (and Wei et al.) use 5.
    pub window: usize,
    /// In-neighbors with out-degree above this are skipped during sibling
    /// expansion to keep the pass near-linear on power-law graphs.
    pub hub_threshold: u32,
    /// At most this many in-neighbors of a window node are expanded for
    /// the sibling score. Hubs with enormous in-degree would otherwise
    /// make a single window insertion quadratic.
    pub sibling_fanout: usize,
}

impl Default for GorderConfig {
    fn default() -> Self {
        Self {
            window: 5,
            hub_threshold: 256,
            sibling_fanout: 128,
        }
    }
}

/// Computes the GOrder permutation (`perm[old] = new`).
///
/// Isolated and unreached nodes are appended in ascending old-ID order, so
/// the result is always a complete permutation.
///
/// # Examples
///
/// ```
/// use pcpm_graph::{Csr, order::{gorder, GorderConfig}};
///
/// let g = Csr::from_edges(4, &[(0, 1), (0, 2), (3, 1), (3, 2)]).unwrap();
/// let perm = gorder(&g, &GorderConfig::default());
/// assert_eq!(perm.len(), 4);
/// ```
pub fn gorder(graph: &Csr, cfg: &GorderConfig) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Vec::new();
    }
    let transpose = graph.transpose();
    let mut key = vec![0i64; n];
    let mut placed = vec![false; n];
    let mut perm = vec![0u32; n];
    // Lazy max-heap of (key, node) snapshots; stale entries are skipped on
    // pop by comparing against the live key array.
    let mut heap: BinaryHeap<(i64, NodeId)> = BinaryHeap::with_capacity(n * 2);
    let mut window: Vec<NodeId> = Vec::with_capacity(cfg.window + 1);

    // Seed with the highest in-degree node — hubs anchor dense regions.
    let seed = (0..n as u32)
        .max_by_key(|&v| transpose.out_degree(v))
        .unwrap_or(0);
    heap.push((1, seed));
    key[seed as usize] = 1;

    let mut next_label = 0u32;
    while next_label < n as u32 {
        // Pop the best live candidate, or fall back to the smallest
        // unplaced node when the frontier is exhausted (disconnected
        // components, isolated nodes).
        let v = loop {
            match heap.pop() {
                Some((k, v)) if !placed[v as usize] && key[v as usize] == k => break Some(v),
                Some(_) => continue,
                None => break None,
            }
        };
        let v = match v {
            Some(v) => v,
            None => {
                let v = (0..n as u32)
                    .find(|&u| !placed[u as usize])
                    .expect("unplaced exists");
                heap.push((key[v as usize].max(1), v));
                key[v as usize] = key[v as usize].max(1);
                continue;
            }
        };
        placed[v as usize] = true;
        perm[v as usize] = next_label;
        next_label += 1;

        window.push(v);
        adjust(graph, &transpose, cfg, v, 1, &mut key, &placed, &mut heap);
        if window.len() > cfg.window {
            let out = window.remove(0);
            adjust(
                graph, &transpose, cfg, out, -1, &mut key, &placed, &mut heap,
            );
        }
        // The lazy heap accumulates stale snapshots; compact it before it
        // dwarfs the live key set.
        if heap.len() > (8 * n).max(1 << 20) {
            heap = (0..n as u32)
                .filter(|&u| !placed[u as usize] && key[u as usize] > 0)
                .map(|u| (key[u as usize], u))
                .collect();
        }
    }
    perm
}

/// Applies a unit score `delta` for node `u` entering (+1) or leaving (-1)
/// the window, pushing refreshed heap entries for every touched node.
#[allow(clippy::too_many_arguments)]
fn adjust(
    graph: &Csr,
    transpose: &Csr,
    cfg: &GorderConfig,
    u: NodeId,
    delta: i64,
    key: &mut [i64],
    placed: &[bool],
    heap: &mut BinaryHeap<(i64, NodeId)>,
) {
    let bump = |v: NodeId, key: &mut [i64], heap: &mut BinaryHeap<(i64, NodeId)>| {
        if placed[v as usize] {
            return;
        }
        key[v as usize] += delta;
        if delta > 0 {
            heap.push((key[v as usize], v));
        }
        // On decrement the stale (higher) entry is skipped lazily at pop
        // time; pushing the lower key too would only grow the heap.
    };
    // Direct adjacency u -> v and v -> u.
    for &v in graph.neighbors(u) {
        bump(v, key, heap);
    }
    for &v in transpose.neighbors(u) {
        bump(v, key, heap);
    }
    // Sibling score: nodes sharing an in-neighbor with u. Both sides are
    // capped so one celebrity node cannot make this quadratic; the same
    // window node is capped identically on entry and exit, so the +1/-1
    // deltas always cancel.
    for &x in transpose.neighbors(u).iter().take(cfg.sibling_fanout) {
        if graph.out_degree(x) > cfg.hub_threshold {
            continue;
        }
        for &y in graph.neighbors(x) {
            if y != u {
                bump(y, key, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, web_crawl, RmatConfig, WebConfig};
    use crate::order::permute::validate_permutation;

    #[test]
    fn produces_valid_permutation() {
        let g = rmat(&RmatConfig::graph500(9, 8, 13)).unwrap();
        let perm = gorder(&g, &GorderConfig::default());
        validate_permutation(g.num_nodes(), &perm).unwrap();
    }

    #[test]
    fn handles_isolated_nodes() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 0)]).unwrap();
        let perm = gorder(&g, &GorderConfig::default());
        validate_permutation(6, &perm).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(gorder(&g, &GorderConfig::default()).is_empty());
    }

    #[test]
    fn siblings_are_placed_close() {
        // 0 and 3 share both in-neighbors {4, 5}; GOrder should label them
        // adjacently.
        let g = Csr::from_edges(6, &[(4, 0), (4, 3), (5, 0), (5, 3), (1, 2), (2, 1)]).unwrap();
        let perm = gorder(&g, &GorderConfig::default());
        let d = i64::from(perm[0]) - i64::from(perm[3]);
        assert!(d.abs() <= 2, "siblings labeled {} and {}", perm[0], perm[3]);
    }

    #[test]
    fn improves_locality_on_random_relabel_of_web_graph() {
        // Destroy the web generator's natural locality, then check GOrder
        // recovers a labeling where edges are shorter on average.
        use crate::order::{apply_permutation, random_order};
        let g = web_crawl(&WebConfig {
            num_nodes: 1 << 11,
            ..WebConfig::default()
        })
        .unwrap();
        let shuffled = apply_permutation(&g, &random_order(g.num_nodes(), 99)).unwrap();
        let perm = gorder(&shuffled, &GorderConfig::default());
        let ordered = apply_permutation(&shuffled, &perm).unwrap();
        let span = |g: &Csr| -> f64 {
            let s: u64 = g
                .edges()
                .map(|(u, v)| (i64::from(u) - i64::from(v)).unsigned_abs())
                .sum();
            s as f64 / g.num_edges() as f64
        };
        assert!(
            span(&ordered) < span(&shuffled) * 0.7,
            "gorder span {:.0} vs shuffled {:.0}",
            span(&ordered),
            span(&shuffled)
        );
    }
}
