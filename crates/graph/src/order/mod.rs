//! Node relabeling (graph ordering) algorithms.
//!
//! The paper's locality experiments (§5.3.1, Tables 6–7) relabel each graph
//! with GOrder [Wei et al., SIGMOD'16] and show that PCPM — unlike BVGAS —
//! converts the improved locality into less DRAM traffic via a higher
//! compression ratio `r`. This module provides a greedy GOrder
//! implementation plus the cheaper classical orderings used in ablations.
//!
//! A permutation is represented as `perm[old_id] = new_id`.

pub mod bfs;
pub mod degree;
pub mod dfs;
pub mod gorder;
pub mod permute;
pub mod random;
pub mod rcm;

pub use bfs::bfs_order;
pub use degree::degree_order;
pub use dfs::dfs_order;
pub use gorder::{gorder, GorderConfig};
pub use permute::{apply_permutation, inverse_permutation, validate_permutation};
pub use random::random_order;
pub use rcm::rcm_order;

use crate::csr::Csr;
use crate::error::GraphError;

/// The ordering algorithms available to experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// Keep the original labeling.
    Original,
    /// Greedy GOrder (locality-maximizing; the paper's choice).
    Gorder,
    /// Breadth-first order from the highest out-degree node.
    Bfs,
    /// Depth-first order from the highest out-degree node.
    Dfs,
    /// Descending in-degree (hub clustering).
    DegreeSort,
    /// Reverse Cuthill–McKee (bandwidth minimization).
    Rcm,
    /// Uniformly random permutation (locality-destroying control).
    Random,
}

impl OrderingKind {
    /// Human-readable name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Original => "orig",
            OrderingKind::Gorder => "gorder",
            OrderingKind::Bfs => "bfs",
            OrderingKind::Dfs => "dfs",
            OrderingKind::DegreeSort => "degsort",
            OrderingKind::Rcm => "rcm",
            OrderingKind::Random => "random",
        }
    }
}

/// Computes the permutation for `kind` (`perm[old] = new`).
///
/// `seed` is only consulted by [`OrderingKind::Random`].
pub fn compute_order(graph: &Csr, kind: OrderingKind, seed: u64) -> Vec<u32> {
    match kind {
        OrderingKind::Original => (0..graph.num_nodes()).collect(),
        OrderingKind::Gorder => gorder(graph, &GorderConfig::default()),
        OrderingKind::Bfs => bfs_order(graph),
        OrderingKind::Dfs => dfs_order(graph),
        OrderingKind::DegreeSort => degree_order(graph),
        OrderingKind::Rcm => rcm_order(graph),
        OrderingKind::Random => random_order(graph.num_nodes(), seed),
    }
}

/// Computes the order for `kind` and applies it, returning the relabeled
/// graph together with the permutation used.
pub fn reorder(graph: &Csr, kind: OrderingKind, seed: u64) -> Result<(Csr, Vec<u32>), GraphError> {
    let perm = compute_order(graph, kind, seed);
    let g = apply_permutation(graph, &perm)?;
    Ok((g, perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, RmatConfig};

    #[test]
    fn every_kind_yields_a_valid_permutation() {
        let g = rmat(&RmatConfig::graph500(8, 4, 3)).unwrap();
        for kind in [
            OrderingKind::Original,
            OrderingKind::Gorder,
            OrderingKind::Bfs,
            OrderingKind::Dfs,
            OrderingKind::DegreeSort,
            OrderingKind::Rcm,
            OrderingKind::Random,
        ] {
            let perm = compute_order(&g, kind, 42);
            validate_permutation(g.num_nodes(), &perm)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn reorder_preserves_edge_count() {
        let g = rmat(&RmatConfig::graph500(8, 4, 3)).unwrap();
        let (rg, _) = reorder(&g, OrderingKind::Random, 1).unwrap();
        assert_eq!(rg.num_edges(), g.num_edges());
        assert_eq!(rg.num_nodes(), g.num_nodes());
    }
}
