//! Applying and validating node permutations.

use crate::csr::{Csr, NodeId};
use crate::error::GraphError;

/// Checks that `perm` is a bijection on `[0, num_nodes)`.
pub fn validate_permutation(num_nodes: u32, perm: &[u32]) -> Result<(), GraphError> {
    if perm.len() != num_nodes as usize {
        return Err(GraphError::InvalidPermutation("length mismatch"));
    }
    let mut seen = vec![false; num_nodes as usize];
    for &p in perm {
        if p >= num_nodes {
            return Err(GraphError::InvalidPermutation("image out of range"));
        }
        if seen[p as usize] {
            return Err(GraphError::InvalidPermutation("duplicate image"));
        }
        seen[p as usize] = true;
    }
    Ok(())
}

/// Computes the inverse permutation (`inv[new] = old`).
///
/// # Panics
///
/// Panics if `perm` is not a valid permutation (validate first).
pub fn inverse_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    inv
}

/// Relabels every node of `graph` through `perm` (`perm[old] = new`).
///
/// The result is a structurally identical graph whose node `perm[v]` has
/// the (relabeled) neighbors of old node `v`.
pub fn apply_permutation(graph: &Csr, perm: &[u32]) -> Result<Csr, GraphError> {
    validate_permutation(graph.num_nodes(), perm)?;
    let n = graph.num_nodes() as usize;
    let inv = inverse_permutation(perm);
    let mut offsets = vec![0u64; n + 1];
    for new in 0..n {
        let old = inv[new];
        offsets[new + 1] = offsets[new] + u64::from(graph.out_degree(old));
    }
    let mut targets = vec![0 as NodeId; graph.num_edges() as usize];
    for new in 0..n {
        let old = inv[new];
        let row = &mut targets[offsets[new] as usize..offsets[new + 1] as usize];
        for (slot, &t) in row.iter_mut().zip(graph.neighbors(old)) {
            *slot = perm[t as usize];
        }
        row.sort_unstable();
    }
    Csr::from_parts(graph.num_nodes(), offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> Csr {
        Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn identity_is_noop() {
        let g = path();
        let id: Vec<u32> = (0..4).collect();
        assert_eq!(apply_permutation(&g, &id).unwrap(), g);
    }

    #[test]
    fn reversal_relabels_edges() {
        let g = path();
        let rev = vec![3, 2, 1, 0];
        let r = apply_permutation(&g, &rev).unwrap();
        // old edge (0,1) -> new edge (3,2), etc.
        let mut edges: Vec<_> = r.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn validation_rejects_bad_perms() {
        assert!(validate_permutation(3, &[0, 1]).is_err());
        assert!(validate_permutation(3, &[0, 1, 3]).is_err());
        assert!(validate_permutation(3, &[0, 1, 1]).is_err());
        assert!(validate_permutation(3, &[2, 0, 1]).is_ok());
    }

    #[test]
    fn inverse_round_trips() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = inverse_permutation(&perm);
        for old in 0..4usize {
            assert_eq!(inv[perm[old] as usize] as usize, old);
        }
    }

    #[test]
    fn apply_then_inverse_restores_graph() {
        let g = path();
        let perm = vec![2u32, 0, 3, 1];
        let forward = apply_permutation(&g, &perm).unwrap();
        let back = apply_permutation(&forward, &inverse_permutation(&perm)).unwrap();
        assert_eq!(back, g);
    }
}
