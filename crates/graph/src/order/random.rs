//! Random node ordering (locality-destroying control).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A uniformly random permutation of `[0, num_nodes)`, seeded.
///
/// Used as the adversarial control in locality experiments: applying it to
/// a high-locality graph drives the PCPM compression ratio toward its
/// minimum and the pull baseline's cache miss ratio toward its maximum.
pub fn random_order(num_nodes: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..num_nodes).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::permute::validate_permutation;

    #[test]
    fn valid_and_deterministic() {
        let p1 = random_order(100, 7);
        let p2 = random_order(100, 7);
        assert_eq!(p1, p2);
        validate_permutation(100, &p1).unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_order(100, 1), random_order(100, 2));
    }

    #[test]
    fn zero_nodes() {
        assert!(random_order(0, 1).is_empty());
    }
}
