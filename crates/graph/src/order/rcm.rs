//! Reverse Cuthill–McKee ordering.
//!
//! The classical bandwidth-minimizing ordering the paper's related work
//! cites (Liu & Sherman [22]): BFS from a low-degree peripheral node,
//! visiting neighbors in ascending degree order, then reverse the
//! labeling. Cheap, and a useful mid-point between BFS and GOrder in the
//! locality ablations.

use crate::csr::Csr;
use std::collections::VecDeque;

/// Computes the RCM permutation (`perm[old] = new`) over the undirected
/// closure of `graph` (Cuthill–McKee is defined for symmetric matrices).
pub fn rcm_order(graph: &Csr) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    if n == 0 {
        return Vec::new();
    }
    let undirected = graph.symmetrize();
    let degree: Vec<u32> = (0..n as u32).map(|v| undirected.out_degree(v)).collect();
    let mut cm: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut nbrs_buf: Vec<u32> = Vec::new();

    // Seed each component from its minimum-degree unvisited node
    // (cheap stand-in for a true peripheral search).
    loop {
        let seed = (0..n as u32)
            .filter(|&v| !visited[v as usize])
            .min_by_key(|&v| (degree[v as usize], v));
        let seed = match seed {
            Some(s) => s,
            None => break,
        };
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            cm.push(v);
            nbrs_buf.clear();
            nbrs_buf.extend(
                undirected
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&t| !visited[t as usize]),
            );
            nbrs_buf.sort_by_key(|&t| (degree[t as usize], t));
            for &t in &nbrs_buf {
                visited[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    // Reverse: the last Cuthill–McKee node gets label 0.
    let mut perm = vec![0u32; n];
    for (pos, &old) in cm.iter().rev().enumerate() {
        perm[old as usize] = pos as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::permute::{apply_permutation, validate_permutation};

    #[test]
    fn valid_permutation_on_disconnected_graph() {
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]).unwrap();
        let perm = rcm_order(&g);
        validate_permutation(7, &perm).unwrap();
    }

    #[test]
    fn reduces_bandwidth_of_shuffled_chain() {
        use crate::order::random::random_order;
        // A chain has bandwidth 1 under its natural order; shuffle it and
        // check RCM recovers a small bandwidth.
        let n = 256u32;
        let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let chain = Csr::from_edges(n, &edges).unwrap();
        let shuffled = apply_permutation(&chain, &random_order(n, 3)).unwrap();
        let bandwidth = |g: &Csr| -> u64 {
            g.edges()
                .map(|(s, t)| (i64::from(s) - i64::from(t)).unsigned_abs())
                .max()
                .unwrap()
        };
        let before = bandwidth(&shuffled);
        let after = bandwidth(&apply_permutation(&shuffled, &rcm_order(&shuffled)).unwrap());
        assert!(after <= 2, "RCM bandwidth {after} (was {before})");
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(rcm_order(&g).is_empty());
    }

    #[test]
    fn isolated_nodes_are_labeled() {
        let g = Csr::from_edges(3, &[]).unwrap();
        let perm = rcm_order(&g);
        validate_permutation(3, &perm).unwrap();
    }
}
