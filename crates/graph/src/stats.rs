//! Graph statistics used by the harness and the analytical models.

use crate::csr::Csr;

/// Summary statistics for a graph, as printed in Table 4 style rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: u32,
    /// Number of edges.
    pub num_edges: u64,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Number of dangling (out-degree 0) nodes.
    pub dangling: u32,
    /// Average |old_label - neighbor_label| across edges — a cheap proxy
    /// for labeling locality (smaller is more local).
    pub avg_edge_span: f64,
}

/// Computes [`GraphStats`] in two passes.
pub fn stats(graph: &Csr) -> GraphStats {
    let mut span_sum: u64 = 0;
    for (s, t) in graph.edges() {
        span_sum += (i64::from(s) - i64::from(t)).unsigned_abs();
    }
    let m = graph.num_edges();
    GraphStats {
        num_nodes: graph.num_nodes(),
        num_edges: m,
        avg_degree: graph.avg_degree(),
        max_out_degree: graph.out_degrees().into_iter().max().unwrap_or(0),
        max_in_degree: graph.in_degrees().into_iter().max().unwrap_or(0),
        dangling: graph.num_dangling(),
        avg_edge_span: if m == 0 {
            0.0
        } else {
            span_sum as f64 / m as f64
        },
    }
}

/// Out-degree histogram with log2 buckets: `hist[i]` counts nodes whose
/// out-degree `d` satisfies `2^(i-1) < d <= 2^i` (bucket 0 is degree 0..=1).
pub fn degree_histogram(graph: &Csr) -> Vec<u64> {
    let mut hist = vec![0u64; 33];
    for v in 0..graph.num_nodes() {
        let d = graph.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            32 - (d - 1).leading_zeros() as usize
        };
        hist[bucket] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 3), (3, 0)]).unwrap();
        let s = stats(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.dangling, 2);
        assert!((s.avg_edge_span - (1.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: 0, 1, 2, 5
        let g = Csr::from_edges(
            4,
            &[
                (1, 0),
                (2, 0),
                (2, 1),
                (3, 0),
                (3, 1),
                (3, 2),
                (3, 2),
                (3, 1),
            ],
        )
        .unwrap();
        // After dedup in from_edges? from_edges keeps duplicates.
        let h = degree_histogram(&g);
        let total: u64 = h.iter().sum();
        assert_eq!(total, 4);
        assert_eq!(h[0], 2); // degrees 0 and 1
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let s = stats(&g);
        assert_eq!(s.avg_edge_span, 0.0);
        assert_eq!(degree_histogram(&g), vec![0]);
    }
}
