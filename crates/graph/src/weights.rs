//! Edge weights for the weighted-SpMV generalisation (paper §3.5).
//!
//! Weights are stored structure-of-arrays style: a `Vec<f32>` parallel to
//! the CSR targets array. The PCPM engine interleaves them into the
//! destination-ID bins during the first scatter, exactly as the paper
//! describes ("storing the edge weights along with destination IDs").

use crate::csr::Csr;
use crate::error::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Edge weights parallel to a [`Csr`]'s targets array.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeWeights {
    weights: Vec<f32>,
}

impl EdgeWeights {
    /// Wraps a weight vector; must have exactly one entry per edge.
    pub fn new(graph: &Csr, weights: Vec<f32>) -> Result<Self, GraphError> {
        if weights.len() as u64 != graph.num_edges() {
            return Err(GraphError::MalformedOffsets(
                "weights.len() must equal num_edges",
            ));
        }
        Ok(Self { weights })
    }

    /// Uniform weight 1.0 on every edge (makes weighted SpMV equal plain
    /// adjacency SpMV — used to cross-validate the two paths).
    pub fn ones(graph: &Csr) -> Self {
        Self {
            weights: vec![1.0; graph.num_edges() as usize],
        }
    }

    /// Seeded uniform random weights in `(0, 1]`.
    pub fn random(graph: &Csr, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            weights: (0..graph.num_edges())
                .map(|_| 1.0 - rng.gen::<f32>())
                .collect(),
        }
    }

    /// Weight of the `i`-th edge in CSR order.
    #[inline]
    pub fn get(&self, edge_index: u64) -> f32 {
        self.weights[edge_index as usize]
    }

    /// Weights of node `v`'s out-edges, parallel to `graph.neighbors(v)`.
    #[inline]
    pub fn row<'a>(&'a self, graph: &Csr, v: u32) -> &'a [f32] {
        let lo = graph.offsets()[v as usize] as usize;
        let hi = graph.offsets()[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// The full weight slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_is_validated() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(EdgeWeights::new(&g, vec![1.0]).is_err());
        assert!(EdgeWeights::new(&g, vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn row_is_aligned_with_neighbors() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 0)]).unwrap();
        let w = EdgeWeights::new(&g, vec![0.5, 0.25, 0.125]).unwrap();
        assert_eq!(w.row(&g, 0), &[0.5, 0.25]);
        assert_eq!(w.row(&g, 1), &[] as &[f32]);
        assert_eq!(w.row(&g, 2), &[0.125]);
    }

    #[test]
    fn random_is_deterministic_and_positive() {
        let g = Csr::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        let w1 = EdgeWeights::random(&g, 3);
        let w2 = EdgeWeights::random(&g, 3);
        assert_eq!(w1, w2);
        assert!(w1.as_slice().iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn ones_matches_edge_count() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(EdgeWeights::ones(&g).as_slice(), &[1.0]);
    }
}
