//! Failure-injection tests for the I/O layer: arbitrary bytes and text
//! must produce errors, never panics or bogus graphs.

use pcpm_graph::{io, Csr, GraphBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_binary_loader(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok(valid graph) or Err, never panic.
        if let Ok(g) = io::from_bytes(&data) {
            // Anything accepted must satisfy all CSR invariants.
            prop_assert!(g.edges().all(|(s, t)| s < g.num_nodes() && t < g.num_nodes()));
        }
    }

    #[test]
    fn arbitrary_text_never_panics_edge_list_parser(text in "[ -~\n]{0,400}") {
        let _ = io::read_edge_list(text.as_bytes(), None);
    }

    #[test]
    fn corrupting_one_byte_is_detected_or_still_valid(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
        pos_seed in any::<u64>(),
        new_byte in any::<u8>(),
    ) {
        let mut b = GraphBuilder::new(40).unwrap();
        b.extend(edges);
        let g = b.build().unwrap();
        let mut bytes = io::to_bytes(&g).to_vec();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] = new_byte;
        if let Ok(g2) = io::from_bytes(&bytes) {
            // A surviving parse must still be structurally valid.
            prop_assert!(g2.edges().all(|(s, t)| s < g2.num_nodes() && t < g2.num_nodes()));
        }
    }

    #[test]
    fn round_trip_is_lossless(edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200)) {
        let mut b = GraphBuilder::new(60).unwrap();
        b.extend(edges);
        let g = b.build().unwrap();
        prop_assert_eq!(io::from_bytes(&io::to_bytes(&g)).unwrap(), g.clone());
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        prop_assert_eq!(io::read_edge_list(&text[..], Some(60)).unwrap(), g);
    }
}

#[test]
fn truncation_at_every_boundary_is_an_error() {
    let g = Csr::from_edges(5, &[(0, 1), (2, 3), (4, 0)]).unwrap();
    let bytes = io::to_bytes(&g);
    for cut in 0..bytes.len() {
        assert!(
            io::from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut} accepted"
        );
    }
}
