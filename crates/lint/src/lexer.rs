//! A lightweight Rust lexer: just enough token structure for rule
//! passes to match identifier sequences without being fooled by
//! comments, strings, raw strings, char literals or lifetimes.
//!
//! This is deliberately **not** a full Rust grammar (no crates.io, so
//! no `syn`); it only has to classify every byte of a source file as
//! exactly one of: comment, string-ish literal, identifier, number,
//! lifetime, or punctuation. The rule passes then work on the token
//! stream, so `unsafe` inside a string or a comment can never trip the
//! unsafe budget, and `// pcpm-lint:` pragmas are read from the
//! comment stream rather than grepped out of raw text.
//!
//! Handled edge cases (each locked in by `tests/lexer_edge_cases.rs`):
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments;
//! - cooked strings with escapes, byte strings, and raw strings with
//!   any `#` depth (`r"…"`, `r#"…"#`, `br##"…"##`);
//! - raw identifiers (`r#match`) vs raw strings (`r#"…"#`);
//! - char literals (`'a'`, `'\''`, `b'x'`) vs lifetimes (`'a`,
//!   `'static`) — the classic one-token-lookahead disambiguation;
//! - `#[cfg(test)]` region detection (attribute → item → balanced
//!   braces), including `#![cfg(test)]` marking the whole file.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// String literal (cooked, raw or byte); payload is the content
    /// without quotes/hashes, escapes left as written.
    Str(String),
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation byte (`{`, `!`, `:`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

/// A comment (line or block) with its text and start line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether this was a `//`-style comment (pragmas are line-only).
    pub is_line: bool,
}

/// A fully lexed file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Token stream, in source order.
    pub tokens: Vec<Token>,
    /// Comment stream, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// 1-based line numbers (inclusive ranges) covered by
    /// `#[cfg(test)]` items; `#![cfg(test)]` covers the whole file.
    pub fn test_line_ranges(&self) -> Vec<(u32, u32)> {
        test_regions(&self.tokens)
    }

    /// Whether `line` falls inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, regions: &[(u32, u32)], line: u32) -> bool {
        regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Unterminated constructs
/// (string, block comment) consume to end of file rather than erroring:
/// the linter's job is rule matching, not syntax validation.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = s.peek(0) {
        let line = s.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == Some(b'/') => {
                s.bump();
                s.bump();
                let start = s.pos;
                while let Some(c) = s.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                    line,
                    is_line: true,
                });
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.bump();
                s.bump();
                let start = s.pos;
                let mut depth = 1usize;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
                let end = s.pos.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&s.src[start..end]).into_owned(),
                    line,
                    is_line: false,
                });
            }
            b'"' => {
                let content = lex_cooked_string(&mut s);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
            }
            b'\'' => lex_quote(&mut s, &mut out, line),
            b if is_ident_start(b) => {
                let start = s.pos;
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                let ident = &src[start..s.pos];
                // String prefixes: r"…", r#"…"#, b"…", br#"…"#, and the
                // byte-char b'x'. `r#ident` is a raw identifier, not a
                // raw string — only a `#…#"` run makes it a string.
                match ident {
                    "r" | "br" | "rb" if starts_raw_string(&s) => {
                        let content = lex_raw_string(&mut s);
                        out.tokens.push(Token {
                            tok: Tok::Str(content),
                            line,
                        });
                    }
                    "b" if s.peek(0) == Some(b'"') => {
                        let content = lex_cooked_string(&mut s);
                        out.tokens.push(Token {
                            tok: Tok::Str(content),
                            line,
                        });
                    }
                    "b" if s.peek(0) == Some(b'\'') => {
                        s.bump(); // opening '
                        lex_char_body(&mut s);
                        out.tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                    }
                    "r" if s.peek(0) == Some(b'#') && s.peek(1).is_some_and(is_ident_start) => {
                        // Raw identifier r#name: emit the bare name.
                        s.bump(); // '#'
                        let rstart = s.pos;
                        while s.peek(0).is_some_and(is_ident_continue) {
                            s.bump();
                        }
                        out.tokens.push(Token {
                            tok: Tok::Ident(src[rstart..s.pos].to_string()),
                            line,
                        });
                    }
                    _ => out.tokens.push(Token {
                        tok: Tok::Ident(ident.to_string()),
                        line,
                    }),
                }
            }
            b if b.is_ascii_digit() => {
                s.bump();
                loop {
                    match s.peek(0) {
                        Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                            // Exponent sign: 1e-5 / 1E+5.
                            if (c == b'e' || c == b'E')
                                && matches!(s.peek(1), Some(b'+') | Some(b'-'))
                                && s.peek(2).is_some_and(|d| d.is_ascii_digit())
                            {
                                s.bump();
                                s.bump();
                            } else {
                                s.bump();
                            }
                        }
                        // A single '.' continues the number unless it is
                        // a range (`0..10`) or a method call (`1.max(2)`).
                        Some(b'.') if s.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                            s.bump();
                        }
                        _ => break,
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            other => {
                s.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(other as char),
                    line,
                });
            }
        }
    }
    out
}

/// After the `r`/`br` prefix ident: does a raw string start here
/// (zero or more `#` then `"`)?
fn starts_raw_string(s: &Scanner<'_>) -> bool {
    let mut i = 0usize;
    while s.peek(i) == Some(b'#') {
        i += 1;
    }
    s.peek(i) == Some(b'"')
}

/// Consumes a cooked string starting at the opening `"`; returns its
/// content (escapes left as written).
fn lex_cooked_string(s: &mut Scanner<'_>) -> String {
    s.bump(); // opening "
    let start = s.pos;
    loop {
        match s.peek(0) {
            Some(b'\\') => {
                s.bump();
                s.bump();
            }
            Some(b'"') => break,
            Some(_) => {
                s.bump();
            }
            None => break,
        }
    }
    let content = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    s.bump(); // closing "
    content
}

/// Consumes a raw string starting at the `#…#"` run; returns content.
fn lex_raw_string(s: &mut Scanner<'_>) -> String {
    let mut hashes = 0usize;
    while s.peek(0) == Some(b'#') {
        hashes += 1;
        s.bump();
    }
    s.bump(); // opening "
    let start = s.pos;
    let end;
    'outer: loop {
        match s.peek(0) {
            Some(b'"') => {
                // Need `hashes` #s right after to close.
                let mut ok = true;
                for i in 0..hashes {
                    if s.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = s.pos;
                    s.bump(); // "
                    for _ in 0..hashes {
                        s.bump();
                    }
                    break 'outer;
                }
                s.bump();
            }
            Some(_) => {
                s.bump();
            }
            None => {
                end = s.pos;
                break 'outer;
            }
        }
    }
    String::from_utf8_lossy(&s.src[start..end]).into_owned()
}

/// Consumes the body of a char literal after the opening `'` (one char
/// or escape, then the closing `'`).
fn lex_char_body(s: &mut Scanner<'_>) {
    if s.peek(0) == Some(b'\\') {
        // Backslash plus the escaped char — this covers `'\''` and
        // `'\\'`; longer escapes (`\u{…}`, `\x41`) fall through to the
        // scan below.
        s.bump();
        s.bump();
    } else {
        s.bump();
    }
    // Consume up to the closing quote (multi-byte UTF-8, \u{…} tails).
    while s.peek(0).is_some() && s.peek(0) != Some(b'\'') {
        s.bump();
    }
    s.bump(); // closing '
}

/// `'` starts either a char literal or a lifetime. Lifetime iff the
/// next char starts an identifier and the char after that identifier
/// run is not a closing `'`.
fn lex_quote(s: &mut Scanner<'_>, out: &mut Lexed, line: u32) {
    let next = s.peek(1);
    let is_lifetime = match next {
        Some(c) if is_ident_start(c) => {
            // 'a' is a char, 'ab is a lifetime, 'a, is a lifetime.
            let mut i = 2usize;
            while s.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            s.peek(i) != Some(b'\'')
        }
        _ => false,
    };
    if is_lifetime {
        s.bump(); // '
        while s.peek(0).is_some_and(is_ident_continue) {
            s.bump();
        }
        out.tokens.push(Token {
            tok: Tok::Lifetime,
            line,
        });
    } else {
        s.bump(); // '
        lex_char_body(s);
        out.tokens.push(Token {
            tok: Tok::Char,
            line,
        });
    }
}

/// Finds `#[cfg(test)]` (and `#[cfg(all(test, …))]` etc.) regions: the
/// attribute plus the annotated item through its balanced braces (or
/// terminating `;`). An inner `#![cfg(test)]` marks the whole file.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let inner = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
        let bracket = if inner { i + 2 } else { i + 1 };
        if !matches!(tokens.get(bracket).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        // Scan the balanced [...] for `cfg` … `test`.
        let (attr_end, is_cfg_test) = scan_attr(tokens, bracket);
        if !is_cfg_test {
            i = attr_end;
            continue;
        }
        if inner {
            // Whole file is a test region.
            let last = tokens.last().map(|t| t.line).unwrap_or(1);
            regions.push((1, last));
            return regions;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes, then cover the item.
        let mut j = attr_end;
        while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let (e, _) = scan_attr(tokens, j + 1);
            j = e;
        }
        // Find the item's opening `{` (or a `;` ending a braceless
        // item); `{` in an expression position before the item body is
        // not possible at item level, so the first brace wins.
        let mut end_line = tokens.get(j).map(|t| t.line).unwrap_or(start_line);
        while let Some(t) = tokens.get(j) {
            match t.tok {
                Tok::Punct(';') => {
                    end_line = t.line;
                    break;
                }
                Tok::Punct('{') => {
                    let mut depth = 0usize;
                    while let Some(t2) = tokens.get(j) {
                        match t2.tok {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    end_line = t2.line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                _ => {
                    end_line = t.line;
                    j += 1;
                }
            }
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Scans a balanced `[...]` attribute starting at its `[`; returns
/// (index past the closing `]`, whether it is a cfg attr naming `test`).
/// `#[cfg(not(test))]` is production code, not a test region.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_cfg && saw_test && !saw_not);
                }
            }
            Tok::Ident(id) if id == "cfg" => saw_cfg = true,
            Tok::Ident(id) if id == "test" && !saw_not => saw_test = true,
            Tok::Ident(id) if id == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    (tokens.len(), false)
}
