//! pcpm-lint: workspace-native static analysis for the pcpm repo.
//!
//! Four contracts that ordinary `rustc`/clippy lints cannot see, because
//! they are *this repo's* invariants, are enforced over every product
//! source file:
//!
//! * `determinism` — kernel crates (`crates/core`, `crates/graph`,
//!   `crates/algos`, and the compute paths of `shims/rayon` /
//!   `shims/rand`) must not read wall clocks, iterate hash-ordered
//!   containers, or spawn ad-hoc threads. Chunk-order bit-identity is
//!   the repo's central claim; these are the ways it silently breaks.
//!   The telemetry module (`crates/core/src/telemetry.rs`) is the one
//!   sanctioned owner of wall-clock access.
//! * `unsafe-budget` — every `unsafe` token in product code must be
//!   accounted for: either pinned (file + exact count) in
//!   `crates/lint/unsafe-allowlist.txt`, or excused by an in-source
//!   pragma with a reason. New unsafe anywhere else fails the build.
//! * `serve-panic` — `crates/serve/src/{proto,server,metrics}.rs` answer
//!   malformed input with typed errors; `unwrap()` / `expect()` /
//!   `panic!` / `todo!` outside `#[cfg(test)]` are findings.
//! * `telemetry-registry` — span and metric-family name literals must be
//!   unique, registered (`SPAN_NAMES`, `METRIC_FAMILIES`), and
//!   documented, so dashboards and the registry cannot drift apart.
//!
//! Suppression is explicit and audited: `// pcpm-lint: allow(<rule>,
//! reason = "...")` with a mandatory reason; unused pragmas are
//! themselves findings. The linter does not lint its own crate —
//! `crates/lint` sources, docs, and fixtures are built out of rule
//! counter-examples.
//!
//! Std-only by design: a hand-rolled lexer (no `syn`, no crates.io)
//! keeps the tool buildable in the offline environment.

pub mod lexer;
pub mod pragma;
pub mod rules;

use rules::FileAnalysis;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The suppressible rule identifiers. The reserved id `pragma` (used
/// for malformed or unused pragmas) is deliberately absent: pragma
/// hygiene findings cannot be suppressed by more pragmas.
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "unsafe-budget",
    "serve-panic",
    "telemetry-registry",
];

/// Location of the pinned unsafe sites, relative to the workspace root.
pub const ALLOWLIST_REL: &str = "crates/lint/unsafe-allowlist.txt";

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULE_NAMES`], or the reserved `pragma`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Whether an in-source pragma may suppress it.
    pub suppressible: bool,
}

impl Finding {
    /// A finding under a suppressible rule.
    pub fn rule(rule: &str, path: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message: message.into(),
            suppressible: true,
        }
    }

    /// A pragma-hygiene finding (reserved rule id, never suppressible).
    pub fn pragma(path: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            rule: "pragma".to_string(),
            path: path.to_string(),
            line,
            message: message.into(),
            suppressible: false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    pub determinism: bool,
    pub serve_panic: bool,
    pub unsafe_budget: bool,
    pub telemetry: bool,
}

impl Scope {
    pub fn any(&self) -> bool {
        self.determinism || self.serve_panic || self.unsafe_budget || self.telemetry
    }
}

/// Kernel crates: code whose output must be bit-identical run to run.
const KERNEL_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/graph/src/",
    "crates/algos/src/",
    "shims/rayon/src/",
    "shims/rand/src/",
];

/// The serve hot path: files that must never panic a worker.
const SERVE_HOT: &[&str] = &[
    "crates/serve/src/proto.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/metrics.rs",
];

/// The one module allowed to read wall clocks in a kernel crate.
const TELEMETRY_MODULE: &str = "crates/core/src/telemetry.rs";

/// Classifies a workspace-relative path (forward slashes) into rule
/// scopes. Non-product files (tests, benches, examples, fixtures) and
/// the linter's own crate get no scope and are skipped entirely.
pub fn classify(rel: &str) -> Scope {
    let product = rel.ends_with(".rs")
        && (rel.starts_with("src/")
            || ((rel.starts_with("crates/") || rel.starts_with("shims/"))
                && rel.contains("/src/")));
    if !product || rel.starts_with("crates/lint/") {
        return Scope::default();
    }
    Scope {
        determinism: rel != TELEMETRY_MODULE && KERNEL_PREFIXES.iter().any(|p| rel.starts_with(p)),
        serve_panic: SERVE_HOT.contains(&rel),
        unsafe_budget: true,
        telemetry: true,
    }
}

/// One pinned unsafe site: a file and the exact number of `unsafe`
/// tokens it is budgeted for.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub file: String,
    pub count: usize,
    pub reason: String,
    pub line: u32,
}

/// The checked-in unsafe allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Display path for findings that point at the allowlist itself.
    pub path: String,
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty allowlist (fixture tests).
    pub fn empty() -> Self {
        Allowlist {
            path: ALLOWLIST_REL.to_string(),
            entries: Vec::new(),
        }
    }

    /// Parses `<path> <count> <reason…>` lines; `#` starts a comment.
    /// Malformed lines become (non-suppressible) findings against the
    /// allowlist file itself.
    pub fn parse(path: &str, text: &str, findings: &mut Vec<Finding>) -> Self {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.splitn(3, char::is_whitespace);
            let file = parts.next().unwrap_or_default().to_string();
            let count = parts.next().and_then(|c| c.parse::<usize>().ok());
            let reason = parts.next().unwrap_or("").trim().to_string();
            match count {
                Some(count) if !reason.is_empty() => entries.push(AllowEntry {
                    file,
                    count,
                    reason,
                    line,
                }),
                _ => findings.push(Finding {
                    rule: "unsafe-budget".to_string(),
                    path: path.to_string(),
                    line,
                    message: format!(
                        "malformed allowlist entry `{trimmed}` \
                         (want `<path> <count> <reason>`)"
                    ),
                    suppressible: false,
                }),
            }
        }
        Allowlist {
            path: path.to_string(),
            entries,
        }
    }
}

/// An in-memory source file, addressed by its workspace-relative path.
/// The path decides the scope, so fixture tests pick their scope by
/// choosing the synthetic path.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub rel: String,
    pub text: String,
}

/// Lints a set of in-memory files against an allowlist. This is the
/// whole pipeline: per-file passes, workspace-level aggregation
/// (unsafe budget, telemetry registry), pragma application, unused
/// pragma detection, and deterministic ordering.
pub fn lint_files(files: &[SourceFile], allowlist: &Allowlist) -> Vec<Finding> {
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for f in files {
        let scope = classify(&f.rel);
        if !scope.any() {
            continue;
        }
        analyses.push(rules::analyze(&f.rel, &f.text, scope));
    }

    let mut findings: Vec<Finding> = Vec::new();
    for a in &analyses {
        findings.extend(a.findings.iter().cloned());
    }
    check_unsafe_budget(&analyses, allowlist, &mut findings);
    check_telemetry(&analyses, &mut findings);
    apply_pragmas(&analyses, &mut findings);

    findings.sort_by(|x, y| {
        (x.path.as_str(), x.line, x.rule.as_str(), x.message.as_str()).cmp(&(
            y.path.as_str(),
            y.line,
            y.rule.as_str(),
            y.message.as_str(),
        ))
    });
    findings.dedup();
    findings
}

/// Every non-test `unsafe` token must be either pinned in the
/// allowlist (file + exact count, so the budget cannot creep) or
/// excused by a pragma. Allowlist entries that no longer match reality
/// are stale and fail too.
fn check_unsafe_budget(
    analyses: &[FileAnalysis],
    allowlist: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    let by_file: BTreeMap<&str, &AllowEntry> = allowlist
        .entries
        .iter()
        .map(|e| (e.file.as_str(), e))
        .collect();
    for a in analyses {
        if !classify(&a.rel).unsafe_budget {
            continue;
        }
        match by_file.get(a.rel.as_str()) {
            Some(entry) => {
                if entry.count != a.unsafe_lines.len() {
                    findings.push(Finding::rule(
                        "unsafe-budget",
                        &a.rel,
                        a.unsafe_lines.first().copied().unwrap_or(1),
                        format!(
                            "file has {} `unsafe` token(s) but the allowlist pins \
                             exactly {} — update {} deliberately",
                            a.unsafe_lines.len(),
                            entry.count,
                            allowlist.path
                        ),
                    ));
                }
            }
            None => {
                for &line in &a.unsafe_lines {
                    findings.push(Finding::rule(
                        "unsafe-budget",
                        &a.rel,
                        line,
                        format!(
                            "`unsafe` outside the checked-in allowlist ({}); \
                             pin the site there or excuse it with a pragma",
                            allowlist.path
                        ),
                    ));
                }
            }
        }
    }
    for e in &allowlist.entries {
        let live = analyses
            .iter()
            .any(|a| a.rel == e.file && !a.unsafe_lines.is_empty());
        if !live {
            findings.push(Finding {
                rule: "unsafe-budget".to_string(),
                path: allowlist.path.clone(),
                line: e.line,
                message: format!(
                    "stale allowlist entry: `{}` has no non-test `unsafe` tokens \
                     (or was not scanned); remove the entry",
                    e.file
                ),
                suppressible: false,
            });
        }
    }
}

/// Span names must be registered in `SPAN_NAMES`, opened at exactly one
/// call site, and documented (appear in backticks in the registry
/// file's comments). Metric-family literals must match
/// `METRIC_FAMILIES` (modulo histogram `_bucket`/`_sum`/`_count`
/// suffixes). Registered spans nobody opens are dead weight.
fn check_telemetry(analyses: &[FileAnalysis], findings: &mut Vec<Finding>) {
    // Merge registries (the workspace has one of each; fixtures may
    // supply their own).
    let mut registry: Vec<(String, String, u32)> = Vec::new(); // (name, file, line)
    let mut families: Vec<(String, String, u32)> = Vec::new();
    let mut registry_docs = String::new();
    for a in analyses {
        if let Some(r) = &a.span_registry {
            registry.extend(r.iter().map(|(n, l)| (n.clone(), a.rel.clone(), *l)));
            registry_docs.push_str(&a.comment_text);
            registry_docs.push('\n');
        }
        if let Some(f) = &a.metric_families {
            families.extend(f.iter().map(|(n, l)| (n.clone(), a.rel.clone(), *l)));
        }
    }

    // Duplicate registry / family entries.
    for (list, what) in [(&registry, "span"), (&families, "metric family")] {
        let mut seen: BTreeMap<&str, &(String, String, u32)> = BTreeMap::new();
        for entry in list.iter() {
            if let Some(first) = seen.get(entry.0.as_str()) {
                findings.push(Finding::rule(
                    "telemetry-registry",
                    &entry.1,
                    entry.2,
                    format!(
                        "duplicate {what} `{}` (first registered at {}:{})",
                        entry.0, first.1, first.2
                    ),
                ));
            } else {
                seen.insert(entry.0.as_str(), entry);
            }
        }
    }

    // Span call sites: registered, and unique across the workspace.
    let mut sites: Vec<(&str, &str, u32)> = Vec::new();
    for a in analyses {
        for (name, line) in &a.span_sites {
            sites.push((name.as_str(), a.rel.as_str(), *line));
        }
    }
    sites.sort();
    if !registry.is_empty() {
        for &(name, file, line) in &sites {
            if !registry.iter().any(|(n, _, _)| n == name) {
                findings.push(Finding::rule(
                    "telemetry-registry",
                    file,
                    line,
                    format!(
                        "span `{name}` is not registered in SPAN_NAMES \
                         ({TELEMETRY_MODULE})"
                    ),
                ));
            }
        }
        for (name, file, line) in &registry {
            if !sites.iter().any(|&(n, _, _)| n == name) {
                findings.push(Finding::rule(
                    "telemetry-registry",
                    file,
                    *line,
                    format!("registered span `{name}` is never opened; remove it"),
                ));
            }
            if !registry_docs.contains(&format!("`{name}`")) {
                findings.push(Finding::rule(
                    "telemetry-registry",
                    file,
                    *line,
                    format!(
                        "registered span `{name}` is not documented \
                         (no `{name}` in the registry module's comments)"
                    ),
                ));
            }
        }
    }
    for w in sites.windows(2) {
        if w[0].0 == w[1].0 {
            findings.push(Finding::rule(
                "telemetry-registry",
                w[1].1,
                w[1].2,
                format!(
                    "span `{}` is also opened at {}:{}; span names identify one \
                     call site",
                    w[1].0, w[0].1, w[0].2
                ),
            ));
        }
    }

    // Metric-family literals.
    if !families.is_empty() {
        for a in analyses {
            for (lit, line) in &a.metric_literals {
                let base = lit
                    .strip_suffix("_bucket")
                    .or_else(|| lit.strip_suffix("_sum"))
                    .or_else(|| lit.strip_suffix("_count"))
                    .unwrap_or(lit.as_str());
                if !families.iter().any(|(n, _, _)| n == lit || n == base) {
                    findings.push(Finding::rule(
                        "telemetry-registry",
                        &a.rel,
                        *line,
                        format!(
                            "metric literal `{lit}` is not registered in \
                             METRIC_FAMILIES"
                        ),
                    ));
                }
            }
        }
    }
}

/// Applies pragmas: a suppressible finding is dropped when its file has
/// a pragma for the same rule targeting its line (or the whole file).
/// Pragmas that suppress nothing become findings themselves.
fn apply_pragmas(analyses: &[FileAnalysis], findings: &mut Vec<Finding>) {
    let pragmas: Vec<(&str, &pragma::Pragma)> = analyses
        .iter()
        .flat_map(|a| a.pragmas.iter().map(move |p| (a.rel.as_str(), p)))
        .collect();
    let mut used = vec![false; pragmas.len()];

    findings.retain(|f| {
        if !f.suppressible {
            return true;
        }
        let mut keep = true;
        for (i, (file, p)) in pragmas.iter().enumerate() {
            if *file == f.path && p.rule == f.rule && p.target.is_none_or(|t| t == f.line) {
                keep = false;
                used[i] = true;
            }
        }
        keep
    });

    for (i, (file, p)) in pragmas.iter().enumerate() {
        if !used[i] {
            findings.push(Finding::pragma(
                file,
                p.line,
                format!(
                    "unused pragma: no `{}` finding {} to suppress",
                    p.rule,
                    match p.target {
                        Some(t) => format!("on line {t}"),
                        None => "in this file".to_string(),
                    }
                ),
            ));
        }
    }
}

/// Walks the workspace at `root`, reads the allowlist, and lints every
/// product `.rs` file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut pre = Vec::new();
    let allowlist = match std::fs::read_to_string(root.join(ALLOWLIST_REL)) {
        Ok(text) => Allowlist::parse(ALLOWLIST_REL, &text, &mut pre),
        Err(_) => {
            pre.push(Finding {
                rule: "unsafe-budget".to_string(),
                path: ALLOWLIST_REL.to_string(),
                line: 1,
                message: "unsafe allowlist is missing".to_string(),
                suppressible: false,
            });
            Allowlist::empty()
        }
    };

    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut findings = lint_files(&files, &allowlist);
    findings.extend(pre);
    findings.sort_by(|x, y| (x.path.as_str(), x.line).cmp(&(y.path.as_str(), y.line)));
    Ok(findings)
}

/// Directories that can never hold product sources.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures", "testdata"];

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if !classify(&rel).any() {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            out.push(SourceFile { rel, text });
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Renders findings as `path:line: rule — message` lines.
pub fn render_human(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    s
}

/// Renders findings as a JSON array (std-only serializer).
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(&f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
