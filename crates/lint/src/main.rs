//! `pcpm-lint` CLI: lint the workspace, print findings, exit non-zero
//! when any remain. Exit codes: 0 clean, 1 findings, 2 usage/io error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: pcpm-lint [--json] [--root <dir>]
  --json        emit findings as a JSON array instead of human lines
  --root <dir>  workspace root (default: nearest [workspace] Cargo.toml)";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("pcpm-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pcpm-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| pcpm_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pcpm-lint: no [workspace] Cargo.toml above the current directory");
            return ExitCode::from(2);
        }
    };

    let findings = match pcpm_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pcpm-lint: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", pcpm_lint::render_json(&findings));
    } else {
        print!("{}", pcpm_lint::render_human(&findings));
        if findings.is_empty() {
            eprintln!("pcpm-lint: clean");
        } else {
            eprintln!("pcpm-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
