//! In-source suppression pragmas.
//!
//! Grammar (inside a `//` line comment):
//!
//! ```text
//! pcpm-lint: allow(<rule>, reason = "<non-empty text>")
//! pcpm-lint: allow-file(<rule>, reason = "<non-empty text>")
//! ```
//!
//! The reason is **mandatory** — a pragma without one is itself a
//! finding — and a pragma that suppresses nothing is an `unused-pragma`
//! finding, so stale exemptions cannot linger after the code they
//! excused is gone. `allow` targets the pragma's own line (trailing
//! comment) or, for a comment on its own line, the next line holding
//! any token; `allow-file` exempts the whole file from one rule.

use crate::lexer::{Comment, Token};
use crate::{Finding, RULE_NAMES};

/// One parsed, well-formed pragma.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// `None` for `allow-file`; `Some(line)` the pragma targets.
    pub target: Option<u32>,
}

/// Extracts pragmas from the comment stream. Malformed pragmas (bad
/// syntax, unknown rule, missing/empty reason) become findings
/// immediately; those findings use the reserved rule id `pragma` and
/// are not themselves suppressible.
pub fn parse_pragmas(
    path: &str,
    comments: &[Comment],
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("pcpm-lint:") else {
            continue;
        };
        if !c.is_line {
            findings.push(Finding::pragma(
                path,
                c.line,
                "pragmas must be `//` line comments",
            ));
            continue;
        }
        let rest = c.text[at + "pcpm-lint:".len()..].trim();
        match parse_body(rest) {
            Ok((rule, reason, file_wide)) => {
                if !RULE_NAMES.contains(&rule.as_str()) {
                    findings.push(Finding::pragma(
                        path,
                        c.line,
                        format!("unknown rule `{rule}` (known: {})", RULE_NAMES.join(", ")),
                    ));
                    continue;
                }
                let target = if file_wide {
                    None
                } else {
                    Some(target_line(tokens, c.line))
                };
                out.push(Pragma {
                    rule,
                    reason,
                    line: c.line,
                    target,
                });
            }
            Err(msg) => findings.push(Finding::pragma(path, c.line, msg)),
        }
    }
    out
}

/// Parses `allow(<rule>, reason = "<text>")` / `allow-file(…)`.
/// Returns (rule, reason, is_file_wide).
fn parse_body(rest: &str) -> Result<(String, String, bool), String> {
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        return Err("expected `allow(...)` or `allow-file(...)`".into());
    };
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after allow")?;
    let rest = rest.strip_suffix(')').ok_or("expected closing `)`")?.trim();
    let (rule, rest) = match rest.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => {
            return Err(format!(
                "missing mandatory `reason = \"...\"` for rule `{}`",
                rest.trim()
            ))
        }
    };
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("bad rule name `{rule}`"));
    }
    let rest = rest
        .strip_prefix("reason")
        .ok_or("expected `reason = \"...\"`")?
        .trim_start();
    let rest = rest
        .strip_prefix('=')
        .ok_or("expected `=` after reason")?
        .trim_start();
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if inner.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rule.to_string(), inner.to_string(), file_wide))
}

/// The line an `allow` pragma applies to: its own line when that line
/// holds code tokens (trailing comment), otherwise the next line with
/// any token.
fn target_line(tokens: &[Token], pragma_line: u32) -> u32 {
    if tokens.iter().any(|t| t.line == pragma_line) {
        return pragma_line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > pragma_line)
        .min()
        .unwrap_or(pragma_line)
}
