//! The rule passes. Each pass walks the token stream of one file
//! (comments and string contents can never trip a rule) and the
//! workspace runner aggregates the cross-file checks (unsafe allowlist,
//! telemetry registry).

use crate::lexer::{lex, Tok, Token};
use crate::pragma::{parse_pragmas, Pragma};
use crate::{Finding, Scope};

/// Everything one file contributes to the workspace-level verdict.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Per-file findings (determinism, serve-panic, pragma syntax).
    pub findings: Vec<Finding>,
    /// Well-formed pragmas awaiting application.
    pub pragmas: Vec<Pragma>,
    /// Lines of non-test `unsafe` tokens (for the budget rule).
    pub unsafe_lines: Vec<u32>,
    /// Non-test `span("…")` / `span_n("…", …)` call sites.
    pub span_sites: Vec<(String, u32)>,
    /// Non-test `pcpm_*` metric-family string literals.
    pub metric_literals: Vec<(String, u32)>,
    /// `SPAN_NAMES` registry entries, when this file declares them.
    pub span_registry: Option<Vec<(String, u32)>>,
    /// `METRIC_FAMILIES` entries, when this file declares them.
    pub metric_families: Option<Vec<(String, u32)>>,
    /// Concatenated comment text (registry-docs check).
    pub comment_text: String,
}

/// Lexes and analyzes one file under `scope`.
pub fn analyze(rel: &str, src: &str, scope: Scope) -> FileAnalysis {
    let lexed = lex(src);
    let regions = lexed.test_line_ranges();
    let in_test = |line: u32| lexed.is_test_line(&regions, line);
    let toks = &lexed.tokens;

    let mut a = FileAnalysis {
        rel: rel.to_string(),
        comment_text: lexed
            .comments
            .iter()
            .map(|c| c.text.as_str())
            .collect::<Vec<_>>()
            .join("\n"),
        ..FileAnalysis::default()
    };
    a.pragmas = parse_pragmas(rel, &lexed.comments, toks, &mut a.findings);

    for (i, t) in toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) => {
                if scope.determinism {
                    determinism_at(rel, toks, i, id, &mut a.findings);
                }
                if scope.serve_panic {
                    serve_panic_at(rel, toks, i, id, &mut a.findings);
                }
                if scope.unsafe_budget && id == "unsafe" {
                    a.unsafe_lines.push(t.line);
                }
                if scope.telemetry {
                    if (id == "span" || id == "span_n") && !is_fn_def(toks, i) {
                        if let Some(name) = call_str_arg(toks, i) {
                            a.span_sites.push((name, t.line));
                        }
                    }
                    if id == "SPAN_NAMES" && a.span_registry.is_none() {
                        a.span_registry = Some(str_array_after(toks, i));
                    }
                    if id == "METRIC_FAMILIES" && a.metric_families.is_none() {
                        a.metric_families = Some(str_array_after(toks, i));
                    }
                }
            }
            Tok::Str(s) if scope.telemetry && s.starts_with("pcpm_") => {
                let family: String = s
                    .bytes()
                    .take_while(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_')
                    .map(|b| b as char)
                    .collect();
                a.metric_literals.push((family, t.line));
            }
            _ => {}
        }
    }
    a
}

/// `determinism`: no wall-clock, hash-order or ad-hoc threading inside
/// kernel crates — chunk-order bit-identity is the repo's central
/// invariant, and every one of these smuggles scheduler or hasher state
/// into a result or a code path that must not depend on it.
fn determinism_at(rel: &str, toks: &[Token], i: usize, id: &str, out: &mut Vec<Finding>) {
    let line = toks[i].line;
    match id {
        "HashMap" | "HashSet" => out.push(Finding::rule(
            "determinism",
            rel,
            line,
            format!(
                "`{id}` in a kernel crate: iteration order is nondeterministic; \
                 use `BTreeMap`/`BTreeSet`/`Vec`, or suppress with a reason if no \
                 iteration order can reach a result"
            ),
        )),
        "SystemTime" => out.push(Finding::rule(
            "determinism",
            rel,
            line,
            "`SystemTime` in a kernel crate: wall-clock reads belong in the \
             telemetry module",
        )),
        "Instant" if path_seq(toks, i, &["Instant", "now"]) => out.push(Finding::rule(
            "determinism",
            rel,
            line,
            "`Instant::now()` in a kernel crate: time kernels with \
             `telemetry::stopwatch()` (the telemetry module owns wall-clock access)",
        )),
        "thread"
            if path_seq(toks, i, &["thread", "spawn"])
                || path_seq(toks, i, &["thread", "Builder"]) =>
        {
            out.push(Finding::rule(
                "determinism",
                rel,
                line,
                "ad-hoc thread creation in a kernel crate: all parallelism must \
                 flow through the deterministic chunk-order pool",
            ))
        }
        _ => {}
    }
}

/// `serve-panic`: the serve hot path answers malformed input with a
/// typed reply and never takes a worker down.
fn serve_panic_at(rel: &str, toks: &[Token], i: usize, id: &str, out: &mut Vec<Finding>) {
    let line = toks[i].line;
    let next = toks.get(i + 1).map(|t| &t.tok);
    match id {
        "unwrap" | "expect" if next == Some(&Tok::Punct('(')) => out.push(Finding::rule(
            "serve-panic",
            rel,
            line,
            format!(
                "`{id}()` on the serve hot path: propagate a typed \
                 `ProtoError`/wire error instead of panicking a worker"
            ),
        )),
        "panic" | "todo" if next == Some(&Tok::Punct('!')) => out.push(Finding::rule(
            "serve-panic",
            rel,
            line,
            format!("`{id}!` on the serve hot path: answer with a typed error instead"),
        )),
        _ => {}
    }
}

/// Matches `seg0 :: seg1` starting at token `i` (which holds `seg0`).
fn path_seq(toks: &[Token], i: usize, segs: &[&str; 2]) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(id)) if id == segs[0])
        && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(id)) if id == segs[1])
}

/// Is token `i` the name in `fn span(...)` rather than a call?
fn is_fn_def(toks: &[Token], i: usize) -> bool {
    i > 0 && matches!(&toks[i - 1].tok, Tok::Ident(id) if id == "fn")
}

/// For `name("literal"…)`: the string literal directly after the `(`.
fn call_str_arg(toks: &[Token], i: usize) -> Option<String> {
    if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
        return None;
    }
    match toks.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Collects the string literals of the first bracketed `[…]` after
/// token `i` (the shape of `const NAMES: [&str; N] = [ "a", "b" ];`).
fn str_array_after(toks: &[Token], i: usize) -> Vec<(String, u32)> {
    let mut j = i;
    // Skip to the `=`, stepping over the `[&str; N]` type ascription —
    // its internal `;` must not read as end-of-item and its bracket
    // must not be mistaken for the initializer.
    let mut depth = 0usize;
    loop {
        match toks.get(j).map(|t| &t.tok) {
            Some(Tok::Punct('[')) => depth += 1,
            Some(Tok::Punct(']')) => depth = depth.saturating_sub(1),
            Some(Tok::Punct('=')) if depth == 0 => break,
            Some(Tok::Punct(';')) if depth == 0 => return Vec::new(),
            Some(_) => {}
            None => return Vec::new(),
        }
        j += 1;
    }
    while let Some(t) = toks.get(j) {
        if t.tok == Tok::Punct('[') {
            break;
        }
        j += 1;
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Str(s) => out.push((s.clone(), t.line)),
            _ => {}
        }
        j += 1;
    }
    out
}
