pub fn f() {
    // pcpm-lint: allow(determinism, reason = "fixture: suppress exactly one line")
    let _t = std::time::Instant::now();
    let _u = std::time::Instant::now();
    let _v = std::time::Instant::now(); // pcpm-lint: allow(determinism, reason = "fixture: trailing-comment form")
}
