use std::collections::HashMap;
use std::time::{Instant, SystemTime};
pub fn f() {
    let _m: HashMap<u32, u32> = HashMap::new();
    let _t = Instant::now();
    let _w = SystemTime::now();
    let _h = std::thread::spawn(|| {});
}
#[cfg(test)]
mod tests {
    #[test]
    fn hash_in_tests_is_fine() {
        let _m = std::collections::HashMap::<u32, u32>::new();
        let _t = std::time::Instant::now();
    }
}
