// pcpm-lint: allow-file(determinism, reason = "fixture: the whole file exercises file-wide suppression")
use std::collections::HashMap;
pub fn f() {
    let _m: HashMap<u32, u32> = HashMap::new();
    let _t = std::time::Instant::now();
}
