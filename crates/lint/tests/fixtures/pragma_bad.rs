// pcpm-lint: allow(bogus-rule, reason = "x")
pub fn a() {}
// pcpm-lint: allow(determinism)
pub fn b() {}
// pcpm-lint: allow(determinism, reason = "")
pub fn c() {}
// pcpm-lint: allow(determinism, reason = "valid but nothing here to suppress")
pub fn d() {}
/* pcpm-lint: allow(determinism, reason = "block comments are not pragma carriers") */
pub fn e() {}
