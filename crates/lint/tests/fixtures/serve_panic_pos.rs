pub fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("boom");
    if a > b {
        panic!("no");
    }
    todo!()
}
pub fn ok(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::ok(None).checked_add(1).unwrap(), 1);
    }
}
