pub fn f(v: Option<u32>) -> u32 {
    // pcpm-lint: allow(serve-panic, reason = "fixture: value is Some by construction")
    v.unwrap()
}
