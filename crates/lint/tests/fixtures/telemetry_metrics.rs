pub const METRIC_FAMILIES: [&str; 2] = ["pcpm_good_total", "pcpm_latency_seconds"];
pub fn g() -> [&'static str; 3] {
    ["pcpm_good_total", "pcpm_latency_seconds_bucket", "pcpm_rogue_total"]
}
