//! Fixture span registry. Taxonomy: `alpha` covers phase A, `beta`
//! covers phase B, `gamma` is registered and documented but never
//! opened; omega is registered but neither documented nor opened.
pub const SPAN_NAMES: [&str; 4] = ["alpha", "beta", "gamma", "omega"];
