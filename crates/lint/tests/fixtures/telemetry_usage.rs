pub fn f() {
    let _a = telemetry::span("alpha");
    let _b = telemetry::span("beta");
    let _b2 = telemetry::span_n("beta", 1);
    let _d = telemetry::span("delta");
}
