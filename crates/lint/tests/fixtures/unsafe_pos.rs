pub unsafe fn danger() {}
pub fn f() {
    unsafe { danger() }
}
#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_not_budgeted() {
        unsafe { super::danger() }
    }
}
