// pcpm-lint: allow-file(unsafe-budget, reason = "fixture: exercises the pragma escape hatch for unsafe")
pub unsafe fn danger() {}
pub fn f() {
    unsafe { danger() }
}
