//! Edge cases the hand-rolled lexer must get right for the rules to be
//! sound: `unsafe` hidden in strings/comments must not become a token,
//! raw strings and nested block comments must be skipped whole, and
//! `#[cfg(test)]` region detection must track item braces.

use pcpm_lint::lexer::{lex, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn unsafe_in_string_is_not_a_token() {
    let src = r#"let s = "unsafe { HashMap }"; let n = 1;"#;
    assert_eq!(idents(src), vec!["let", "s", "let", "n"]);
    let lexed = lex(src);
    let strs: Vec<&str> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(strs, vec!["unsafe { HashMap }"]);
}

#[test]
fn unsafe_in_comments_is_not_a_token() {
    let src = "// unsafe here\n/* and unsafe there */\nfn safe_fn() {}\n";
    assert_eq!(idents(src), vec!["fn", "safe_fn"]);
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(lexed.comments[0].is_line);
    assert!(!lexed.comments[1].is_line);
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
    assert_eq!(idents(src), vec!["fn", "f"]);
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner unsafe"));
}

#[test]
fn raw_strings_any_hash_depth() {
    // The "# inside a single-hash raw string must not close a
    // double-hash one, and quotes inside need no escaping.
    let src = r####"let a = r"unsafe"; let b = r#"has "quotes" and unsafe"#; let c = r##"ends "# not yet"##;"####;
    assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
    let strs: Vec<String> = lex(src)
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        strs,
        vec![
            "unsafe".to_string(),
            "has \"quotes\" and unsafe".to_string(),
            "ends \"# not yet".to_string(),
        ]
    );
}

#[test]
fn byte_strings_and_byte_chars() {
    let src = "let a = b\"unsafe\"; let c = b'u'; let d = br#\"raw unsafe\"#;";
    assert_eq!(idents(src), vec!["let", "a", "let", "c", "let", "d"]);
    let lexed = lex(src);
    let kinds: Vec<&Tok> = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.tok, Tok::Str(_) | Tok::Char))
        .map(|t| &t.tok)
        .collect();
    assert!(matches!(kinds[0], Tok::Str(s) if s == "unsafe"));
    assert!(matches!(kinds[1], Tok::Char));
    assert!(matches!(kinds[2], Tok::Str(s) if s == "raw unsafe"));
}

#[test]
fn raw_identifier_is_an_ident_not_a_string() {
    // r#match lexes to the bare name; r#"…"# stays a string.
    let src = "fn r#match(r#unsafe: u32) {} let s = r#\"text\"#;";
    assert_eq!(
        idents(src),
        vec!["fn", "match", "unsafe", "u32", "let", "s"]
    );
}

#[test]
fn char_vs_lifetime_disambiguation() {
    let src = "let c: char = 'a'; fn f<'a>(x: &'a str) -> &'static str { x }";
    let lexed = lex(src);
    let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
    let lifetimes = lexed
        .tokens
        .iter()
        .filter(|t| t.tok == Tok::Lifetime)
        .count();
    assert_eq!(chars, 1, "only 'a' is a char literal");
    assert_eq!(lifetimes, 3, "<'a>, &'a, &'static");
}

#[test]
fn escaped_char_literals() {
    for src in ["let q = '\\'';", "let b = '\\\\';", "let u = '\\u{1F600}';"] {
        let lexed = lex(src);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count(),
            1,
            "{src}"
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.tok == Tok::Lifetime)
                .count(),
            0,
            "{src}"
        );
    }
}

#[test]
fn multi_line_raw_string_keeps_line_numbers() {
    let src = "let a = r#\"line one\nline two\nline three\"#;\nfn after() {}\n";
    let lexed = lex(src);
    let after = lexed
        .tokens
        .iter()
        .find(|t| t.tok == Tok::Ident("after".into()))
        .expect("after token");
    assert_eq!(after.line, 4, "raw string newlines must advance the line");
}

#[test]
fn cfg_test_region_covers_item_braces() {
    let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n    }\n}\nfn prod2() {}\n";
    let lexed = lex(src);
    let regions = lexed.test_line_ranges();
    assert_eq!(regions, vec![(2, 6)]);
    assert!(!lexed.is_test_line(&regions, 1));
    assert!(lexed.is_test_line(&regions, 4));
    assert!(!lexed.is_test_line(&regions, 7));
}

#[test]
fn cfg_not_test_is_not_a_test_region() {
    let src = "#[cfg(not(test))]\nfn prod() {}\n#[cfg(all(test, feature))]\nfn gated() {}\n";
    let regions = lex(src).test_line_ranges();
    assert_eq!(
        regions,
        vec![(3, 4)],
        "not(test) excluded, all(test,…) included"
    );
}

#[test]
fn inner_cfg_test_marks_whole_file() {
    let src = "#![cfg(test)]\nfn anything() {\n    let x = 1;\n}\n";
    let lexed = lex(src);
    let regions = lexed.test_line_ranges();
    assert_eq!(regions.len(), 1);
    assert!(lexed.is_test_line(&regions, 1));
    assert!(lexed.is_test_line(&regions, 4));
}

#[test]
fn cfg_test_with_extra_attributes_between() {
    // #[cfg(test)] #[allow(dead_code)] mod … — the region must extend
    // over the item even with attributes stacked after the cfg.
    let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
    let regions = lex(src).test_line_ranges();
    assert_eq!(regions, vec![(1, 5)]);
}
