//! Fixture-driven rule tests: every rule gets a positive fixture (the
//! violation is found) and a suppressed fixture (the pragma hides it,
//! and only it). Fixtures live under `tests/fixtures/` and are fed to
//! [`lint_files`] under synthetic workspace-relative paths — the path
//! chooses the scope, so one fixture can be tested as kernel code and
//! again as out-of-scope code.

use pcpm_lint::{classify, lint_files, Allowlist, Finding, SourceFile};

fn file(rel: &str, text: &str) -> SourceFile {
    SourceFile {
        rel: rel.to_string(),
        text: text.to_string(),
    }
}

fn run(files: &[SourceFile]) -> Vec<Finding> {
    lint_files(files, &Allowlist::empty())
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

const KERNEL: &str = "crates/core/src/fixture.rs";
const SERVE: &str = "crates/serve/src/proto.rs";

// ---------------------------------------------------------------- scope

#[test]
fn scope_classification() {
    assert!(classify("crates/core/src/engine.rs").determinism);
    assert!(classify("shims/rayon/src/pool.rs").determinism);
    // The telemetry module owns wall-clock access.
    assert!(!classify("crates/core/src/telemetry.rs").determinism);
    assert!(classify("crates/core/src/telemetry.rs").telemetry);
    // Serve hot path: panic rule, not determinism.
    let serve = classify("crates/serve/src/server.rs");
    assert!(serve.serve_panic && !serve.determinism);
    // Non-product files have no scope at all.
    assert!(!classify("tests/serve_e2e.rs").any());
    assert!(!classify("crates/core/tests/repair.rs").any());
    assert!(!classify("crates/bench/benches/serve.rs").any());
    // The linter does not lint itself.
    assert!(!classify("crates/lint/src/lib.rs").any());
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_positive() {
    let f = run(&[file(KERNEL, include_str!("fixtures/determinism_pos.rs"))]);
    let det: Vec<&Finding> = f.iter().filter(|x| x.rule == "determinism").collect();
    // HashMap (use + body; the body's two same-line mentions dedup to
    // one finding), SystemTime ×2, Instant::now ×1, thread::spawn ×1.
    assert_eq!(det.len(), 6, "{f:#?}");
    // Nothing inside the #[cfg(test)] mod (lines 9..) is flagged.
    assert!(det.iter().all(|x| x.line < 9), "{det:#?}");
}

#[test]
fn determinism_out_of_scope_path_is_clean() {
    // The same source under a serve path has no determinism scope.
    let f = run(&[file(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/determinism_pos.rs"),
    )]);
    assert!(
        f.iter().all(|x| x.rule != "determinism"),
        "determinism rule leaked outside kernel crates: {f:#?}"
    );
}

#[test]
fn determinism_suppressed_file_wide() {
    let f = run(&[file(
        KERNEL,
        include_str!("fixtures/determinism_suppressed.rs"),
    )]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn determinism_line_pragmas() {
    let f = run(&[file(
        KERNEL,
        include_str!("fixtures/determinism_line_pragma.rs"),
    )]);
    // Line 3 (preceding-comment form) and line 5 (trailing form) are
    // suppressed; line 4 is the one survivor.
    assert_eq!(rules(&f), vec!["determinism"], "{f:#?}");
    assert_eq!(f[0].line, 4);
}

#[test]
fn deleting_a_pragma_resurfaces_the_finding() {
    let with = include_str!("fixtures/determinism_suppressed.rs");
    let without: String = with
        .lines()
        .filter(|l| !l.contains("pcpm-lint:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(run(&[file(KERNEL, with)]).is_empty());
    assert!(!run(&[file(KERNEL, &without)]).is_empty());
}

// -------------------------------------------------------- unsafe-budget

#[test]
fn unsafe_outside_allowlist_is_found() {
    let f = run(&[file(KERNEL, include_str!("fixtures/unsafe_pos.rs"))]);
    assert_eq!(rules(&f), vec!["unsafe-budget", "unsafe-budget"], "{f:#?}");
    assert_eq!((f[0].line, f[1].line), (1, 3), "test-mod unsafe exempt");
}

#[test]
fn unsafe_with_exact_allowlist_count_is_clean() {
    let mut pre = Vec::new();
    let al = Allowlist::parse(
        "crates/lint/unsafe-allowlist.txt",
        &format!("{KERNEL} 2 fixture has exactly two unsafe tokens\n"),
        &mut pre,
    );
    assert!(pre.is_empty());
    let f = lint_files(&[file(KERNEL, include_str!("fixtures/unsafe_pos.rs"))], &al);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn unsafe_count_drift_is_found() {
    let mut pre = Vec::new();
    let al = Allowlist::parse(
        "crates/lint/unsafe-allowlist.txt",
        &format!("{KERNEL} 1 count pinned too low\n"),
        &mut pre,
    );
    let f = lint_files(&[file(KERNEL, include_str!("fixtures/unsafe_pos.rs"))], &al);
    assert_eq!(rules(&f), vec!["unsafe-budget"], "{f:#?}");
    assert!(f[0].message.contains("pins exactly 1"), "{f:#?}");
}

#[test]
fn stale_allowlist_entry_is_found() {
    let mut pre = Vec::new();
    let al = Allowlist::parse(
        "crates/lint/unsafe-allowlist.txt",
        "crates/core/src/gone.rs 3 file no longer has unsafe\n",
        &mut pre,
    );
    let f = lint_files(&[file(KERNEL, "pub fn safe() {}\n")], &al);
    assert_eq!(rules(&f), vec!["unsafe-budget"], "{f:#?}");
    assert!(f[0].message.contains("stale"), "{f:#?}");
    assert_eq!(f[0].path, "crates/lint/unsafe-allowlist.txt");
}

#[test]
fn malformed_allowlist_line_is_found() {
    let mut pre = Vec::new();
    let _ = Allowlist::parse(
        "crates/lint/unsafe-allowlist.txt",
        "crates/core/src/x.rs not-a-number reason\ncrates/core/src/y.rs 2\n",
        &mut pre,
    );
    assert_eq!(pre.len(), 2, "bad count and missing reason: {pre:#?}");
}

#[test]
fn unsafe_suppressed_by_pragma() {
    let f = run(&[file(KERNEL, include_str!("fixtures/unsafe_suppressed.rs"))]);
    assert!(f.is_empty(), "{f:#?}");
}

// ---------------------------------------------------------- serve-panic

#[test]
fn serve_panic_positive() {
    let f = run(&[file(SERVE, include_str!("fixtures/serve_panic_pos.rs"))]);
    let sp: Vec<&Finding> = f.iter().filter(|x| x.rule == "serve-panic").collect();
    assert_eq!(sp.len(), 4, "unwrap, expect, panic!, todo!: {f:#?}");
    assert_eq!(
        sp.iter().map(|x| x.line).collect::<Vec<_>>(),
        vec![2, 3, 5, 7],
        "unwrap_or (line 10) and test-mod unwrap (line 16) are exempt"
    );
}

#[test]
fn serve_panic_only_on_serve_hot_path() {
    let f = run(&[file(KERNEL, include_str!("fixtures/serve_panic_pos.rs"))]);
    assert!(
        f.iter().all(|x| x.rule != "serve-panic"),
        "serve-panic leaked into kernel scope: {f:#?}"
    );
}

#[test]
fn serve_panic_suppressed() {
    let f = run(&[file(
        SERVE,
        include_str!("fixtures/serve_panic_suppressed.rs"),
    )]);
    assert!(f.is_empty(), "{f:#?}");
}

// --------------------------------------------------- telemetry-registry

#[test]
fn telemetry_registry_cross_file_checks() {
    let f = run(&[
        file(
            "crates/core/src/telemetry.rs",
            include_str!("fixtures/telemetry_registry.rs"),
        ),
        file(
            "crates/algos/src/fixture.rs",
            include_str!("fixtures/telemetry_usage.rs"),
        ),
        file(
            "crates/serve/src/metrics.rs",
            include_str!("fixtures/telemetry_metrics.rs"),
        ),
    ]);
    assert!(f.iter().all(|x| x.rule == "telemetry-registry"), "{f:#?}");
    let has = |s: &str| f.iter().any(|x| x.message.contains(s));
    // `delta` is opened but unregistered.
    assert!(has("span `delta` is not registered"), "{f:#?}");
    // `beta` is opened at two sites.
    assert!(has("span `beta` is also opened"), "{f:#?}");
    // `gamma` and omega are registered but never opened.
    assert!(has("span `gamma` is never opened"), "{f:#?}");
    assert!(has("span `omega` is never opened"), "{f:#?}");
    // omega is additionally undocumented (gamma is documented).
    assert!(has("span `omega` is not documented"), "{f:#?}");
    assert!(!has("span `gamma` is not documented"), "{f:#?}");
    // The rogue metric literal is not in METRIC_FAMILIES; the histogram
    // `_bucket` suffix on a registered family is fine.
    assert!(has("metric literal `pcpm_rogue_total`"), "{f:#?}");
    assert!(!has("pcpm_latency_seconds_bucket"), "{f:#?}");
    assert_eq!(f.len(), 6, "{f:#?}");
}

// --------------------------------------------------------------- pragma

#[test]
fn bad_and_unused_pragmas_are_findings() {
    let f = run(&[file(KERNEL, include_str!("fixtures/pragma_bad.rs"))]);
    assert!(f.iter().all(|x| x.rule == "pragma"), "{f:#?}");
    let has = |s: &str| f.iter().any(|x| x.message.contains(s));
    assert!(has("unknown rule `bogus-rule`"), "{f:#?}");
    assert!(has("missing mandatory `reason"), "{f:#?}");
    assert!(has("reason must not be empty"), "{f:#?}");
    assert!(has("unused pragma"), "{f:#?}");
    assert!(has("must be `//` line comments"), "{f:#?}");
    assert_eq!(f.len(), 5, "{f:#?}");
}

#[test]
fn pragma_findings_are_not_suppressible() {
    // A pragma cannot hide another pragma's hygiene finding: the
    // reserved rule id `pragma` is not a legal pragma rule.
    let src = "// pcpm-lint: allow(pragma, reason = \"nice try\")\npub fn f() {}\n";
    let f = run(&[file(KERNEL, src)]);
    assert_eq!(rules(&f), vec!["pragma"], "{f:#?}");
    assert!(f[0].message.contains("unknown rule `pragma`"), "{f:#?}");
}

// ---------------------------------------------------- workspace contract

/// The real workspace must lint clean — this is the same check CI runs,
/// wired into tier-1 so `cargo test` catches a regression first.
#[test]
fn workspace_is_clean() {
    let cwd = std::env::current_dir().unwrap();
    let root = pcpm_lint::find_workspace_root(&cwd).expect("workspace root");
    let findings = pcpm_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        pcpm_lint::render_human(&findings)
    );
}

/// The checked-in unsafe allowlist pins exactly the two known sites:
/// serve's signal(2) shim and the rayon shim's merge sort.
#[test]
fn allowlist_pins_exactly_the_known_sites() {
    let cwd = std::env::current_dir().unwrap();
    let root = pcpm_lint::find_workspace_root(&cwd).expect("workspace root");
    let text = std::fs::read_to_string(root.join(pcpm_lint::ALLOWLIST_REL)).unwrap();
    let mut pre = Vec::new();
    let al = Allowlist::parse(pcpm_lint::ALLOWLIST_REL, &text, &mut pre);
    assert!(pre.is_empty(), "{pre:#?}");
    let files: Vec<(&str, usize)> = al
        .entries
        .iter()
        .map(|e| (e.file.as_str(), e.count))
        .collect();
    assert_eq!(
        files,
        vec![
            ("crates/serve/src/server.rs", 1),
            ("shims/rayon/src/sort.rs", 7)
        ]
    );
}

// ------------------------------------------------------------ rendering

#[test]
fn json_rendering_escapes_and_shapes() {
    let f = vec![Finding::rule(
        "determinism",
        "crates/core/src/x.rs",
        7,
        "uses `HashMap` with \"quotes\"",
    )];
    let json = pcpm_lint::render_json(&f);
    assert!(json.starts_with('['), "{json}");
    assert!(json.contains("\\\"quotes\\\""), "{json}");
    assert!(json.contains("\"line\":7"), "{json}");
    assert_eq!(pcpm_lint::render_json(&[]), "[]\n");
}

#[test]
fn injected_violation_fails_like_the_ci_self_test() {
    // The CI self-test writes a violating file into the tree and
    // asserts non-zero exit; this is the same assertion in-process.
    let f = run(&[file(
        "crates/core/src/zz_lint_selftest.rs",
        "pub fn f() { let _t = std::time::Instant::now(); }\n",
    )]);
    assert_eq!(rules(&f), vec!["determinism"], "{f:#?}");
}
