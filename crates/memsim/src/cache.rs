//! Set-associative LRU cache model.
//!
//! Write-back, write-allocate, true-LRU replacement. The default geometry
//! matches the shared L3 of the paper's Xeon E5-2650 v2: 25 MB, 64-byte
//! lines, 20 ways (Table 3). Only the last level matters for DRAM-traffic
//! accounting, so the inner levels are not modeled.

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes (must be a power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl Default for CacheConfig {
    /// The paper machine's shared L3: 25 MB, 64 B lines, 20 ways.
    fn default() -> Self {
        Self {
            capacity: 25 * 1024 * 1024,
            line: 64,
            ways: 20,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.capacity / self.line / self.ways).max(1)
    }
}

/// Outcome of a single cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// The access missed and a line was fetched from DRAM.
    pub miss: bool,
    /// A dirty line was evicted (one line written back to DRAM).
    pub writeback: bool,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    dirty: bool,
    valid: bool,
}

/// A set-associative write-back LRU cache.
///
/// # Examples
///
/// ```
/// use pcpm_memsim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { capacity: 1024, line: 64, ways: 2 });
/// assert!(c.read(0).miss);       // cold miss
/// assert!(!c.read(0).miss);      // hit
/// assert!(!c.read(32).miss);     // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    num_sets: usize,
    /// `num_sets * ways` entries; within a set, index 0 is most recent.
    sets: Vec<Way>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry
    /// yields zero ways.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be positive");
        let num_sets = cfg.num_sets();
        Self {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            num_sets,
            sets: vec![
                Way {
                    tag: 0,
                    dirty: false,
                    valid: false
                };
                num_sets * cfg.ways
            ],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total dirty-line writebacks so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio over all accesses (0 when nothing was accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Performs a read of one datum at `addr` (within one line).
    pub fn read(&mut self, addr: u64) -> AccessResult {
        self.access(addr, false)
    }

    /// Performs a write of one datum at `addr` (write-allocate).
    pub fn write(&mut self, addr: u64) -> AccessResult {
        self.access(addr, true)
    }

    fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        let line = addr >> self.line_shift;
        let set = (line % self.num_sets as u64) as usize;
        let ways = self.cfg.ways;
        let base = set * ways;
        let slot = self.sets[base..base + ways]
            .iter()
            .position(|w| w.valid && w.tag == line);
        match slot {
            Some(i) => {
                self.hits += 1;
                // Move to front (most recently used), preserving order.
                let mut way = self.sets[base + i];
                way.dirty |= write;
                self.sets.copy_within(base..base + i, base + 1);
                self.sets[base] = way;
                AccessResult {
                    miss: false,
                    writeback: false,
                }
            }
            None => {
                self.misses += 1;
                let victim = self.sets[base + ways - 1];
                let writeback = victim.valid && victim.dirty;
                if writeback {
                    self.writebacks += 1;
                }
                self.sets.copy_within(base..base + ways - 1, base + 1);
                self.sets[base] = Way {
                    tag: line,
                    dirty: write,
                    valid: true,
                };
                AccessResult {
                    miss: true,
                    writeback,
                }
            }
        }
    }

    /// Writes back and invalidates every dirty line, returning the number
    /// of lines flushed to DRAM (end-of-phase accounting).
    pub fn flush(&mut self) -> u64 {
        let mut flushed = 0;
        for w in &mut self.sets {
            if w.valid && w.dirty {
                flushed += 1;
            }
            w.valid = false;
            w.dirty = false;
        }
        self.writebacks += flushed;
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheConfig {
            capacity: 512,
            line: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.read(100).miss);
        assert!(!c.read(100).miss);
        assert!(c.read(200).miss); // different line (line 3)
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.read(0);
        assert!(!c.read(4).miss);
        assert!(!c.write(60).miss);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set index = (addr/64) % 4. Lines 0, 1024, 2048 all map to set 0.
        c.read(0);
        c.read(1024);
        c.read(0); // refresh line 0
        c.read(2048); // evicts 1024 (LRU)
        assert!(!c.read(0).miss, "line 0 must survive");
        assert!(c.read(1024).miss, "line 1024 must have been evicted");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.write(0);
        c.read(1024);
        let r = c.read(2048); // evicts dirty line 0
        assert!(r.miss && r.writeback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.read(0);
        c.read(1024);
        let r = c.read(2048);
        assert!(r.miss && !r.writeback);
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny();
        c.write(0);
        c.write(64);
        c.read(128);
        assert_eq!(c.flush(), 2);
        // After flush everything is cold again.
        assert!(c.read(0).miss);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.read(0);
        c.read(0);
        c.read(0);
        c.read(0);
        assert!((c.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn working_set_within_capacity_has_only_cold_misses() {
        let mut c = Cache::new(CacheConfig {
            capacity: 4096,
            line: 64,
            ways: 4,
        });
        for round in 0..10 {
            for addr in (0..4096u64).step_by(64) {
                let r = c.read(addr);
                assert_eq!(r.miss, round == 0, "addr {addr} round {round}");
            }
        }
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig {
            capacity: 512,
            line: 64,
            ways: 2,
        });
        // 16 lines over a 8-line cache, scanned repeatedly: LRU gives 0 hits.
        for _ in 0..3 {
            for addr in (0..1024u64).step_by(64) {
                c.read(addr);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn default_geometry_matches_paper_l3() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.capacity, 25 * 1024 * 1024);
        assert_eq!(cfg.num_sets(), 20480);
    }
}
