//! DRAM energy model (Fig. 10).
//!
//! The paper reports DRAM energy per edge measured by Intel PCM. We
//! substitute a first-order DDR3 energy model:
//!
//! `E = bytes · E_BYTE + random_accesses · E_ACT`
//!
//! where `E_BYTE` covers the I/O + burst energy of moving one byte and
//! `E_ACT` the activate/precharge cost of opening a new row (charged per
//! non-consecutive access, which is what breaks row-buffer hits). The
//! constants are representative DDR3-1866 figures (Micron power
//! calculator ballpark); the *ratios* between kernels — which is what
//! Fig. 10 shows — depend only on the traffic and randomness profiles,
//! not on the absolute constants.

use crate::memory::TrafficReport;

/// Energy to move one byte through the DRAM interface, in picojoules.
pub const E_BYTE_PJ: f64 = 70.0;

/// Energy of one row activate + precharge cycle, in picojoules.
pub const E_ACT_PJ: f64 = 2000.0;

/// Estimated DRAM energy of a replayed iteration, in microjoules.
pub fn dram_energy_uj(traffic: &TrafficReport) -> f64 {
    (traffic.total_bytes() as f64 * E_BYTE_PJ + traffic.random_accesses as f64 * E_ACT_PJ) / 1e6
}

/// Fig. 10 metric: microjoules per edge.
pub fn energy_per_edge_uj(traffic: &TrafficReport, num_edges: u64) -> f64 {
    if num_edges == 0 {
        0.0
    } else {
        dram_energy_uj(traffic) / num_edges as f64
    }
}

/// Fig. 9 metric: sustained bandwidth in GB/s given the measured
/// wall-clock time of the phase the traffic belongs to.
pub fn sustained_bandwidth_gbs(traffic: &TrafficReport, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        traffic.total_bytes() as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::memory::{MemoryModel, Region};

    fn report(bytes: u64, jumps: u64) -> TrafficReport {
        let mut mm = MemoryModel::new(CacheConfig {
            capacity: 1024,
            line: 64,
            ways: 2,
        });
        mm.stream_write_jumps(bytes, jumps, Region::Updates);
        mm.report()
    }

    #[test]
    fn energy_scales_with_bytes_and_randomness() {
        let smooth = report(1_000_000, 10);
        let rough = report(1_000_000, 100_000);
        assert!(dram_energy_uj(&rough) > dram_energy_uj(&smooth));
        let double = report(2_000_000, 10);
        assert!(dram_energy_uj(&double) > 1.9 * dram_energy_uj(&smooth));
    }

    #[test]
    fn per_edge_normalization() {
        let t = report(64_000_000, 0);
        // 64 MB * 70 pJ/B = 4480 µJ over 1M edges = 4.48e-3 µJ/edge.
        assert!((energy_per_edge_uj(&t, 1_000_000) - 4.48e-3).abs() < 1e-5);
        assert_eq!(energy_per_edge_uj(&t, 0), 0.0);
    }

    #[test]
    fn bandwidth_definition() {
        let t = report(10_000_000_000, 0);
        assert!((sustained_bandwidth_gbs(&t, 2.0) - 5.0).abs() < 1e-9);
        assert_eq!(sustained_bandwidth_gbs(&t, 0.0), 0.0);
    }
}
