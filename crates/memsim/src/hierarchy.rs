//! Two-level cache hierarchy with a latency model.
//!
//! The traffic replays in [`crate::replay`] only need the last level —
//! DRAM volume is what PCM measures. But one phenomenon in the paper is
//! *latency*, not volume: for partitions between 256 KB and 1 MB,
//! "communication volume decreases but execution time increases … many
//! requests are served from the larger shared L3 which is slower than the
//! private L1 and L2" (§5.3.2, Fig. 13). This module reproduces that with
//! a private-L2 + shared-L3 hierarchy and per-level hit costs.
//!
//! The hierarchy is modeled exclusive-read, inclusive-fill: an access
//! probes L2, then L3, then DRAM; fills install into both levels; dirty
//! L2 victims write back into L3, dirty L3 victims to DRAM.

use crate::cache::{Cache, CacheConfig};
use pcpm_core::png::Png;
use pcpm_graph::Csr;

/// Which level served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
    /// Served from DRAM.
    Dram,
}

/// Representative access costs in core cycles (Ivy Bridge ballpark:
/// L2 ≈ 12, L3 ≈ 35, DRAM ≈ 200).
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// L2 hit cost.
    pub l2_cycles: u64,
    /// L3 hit cost.
    pub l3_cycles: u64,
    /// DRAM access cost.
    pub dram_cycles: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l2_cycles: 12,
            l3_cycles: 35,
            dram_cycles: 200,
        }
    }
}

/// Per-level hit counters of one replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses served by DRAM.
    pub dram: u64,
}

impl LatencySummary {
    /// Total modeled cycles under `model`.
    pub fn cycles(&self, model: &LatencyModel) -> u64 {
        self.l2_hits * model.l2_cycles
            + self.l3_hits * model.l3_cycles
            + self.dram * model.dram_cycles
    }

    /// Average cycles per access.
    pub fn cycles_per_access(&self, model: &LatencyModel) -> f64 {
        let total = self.l2_hits + self.l3_hits + self.dram;
        if total == 0 {
            0.0
        } else {
            self.cycles(model) as f64 / total as f64
        }
    }
}

/// A private L2 in front of a shared L3.
pub struct CacheHierarchy {
    l2: Cache,
    l3: Cache,
    summary: LatencySummary,
}

impl CacheHierarchy {
    /// Builds the hierarchy from the two geometries.
    pub fn new(l2: CacheConfig, l3: CacheConfig) -> Self {
        Self {
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            summary: LatencySummary::default(),
        }
    }

    /// The paper machine scaled like the rest of the suite: 2 KB private
    /// L2 share, 128 KB shared L3 (256 KB / 25 MB divided by 128).
    pub fn paper_scaled() -> Self {
        Self::new(
            CacheConfig {
                capacity: 2 * 1024,
                line: 64,
                ways: 8,
            },
            CacheConfig {
                capacity: 128 * 1024,
                line: 64,
                ways: 16,
            },
        )
    }

    /// Accumulated per-level counters.
    pub fn summary(&self) -> LatencySummary {
        self.summary
    }

    /// Performs one read, returning the serving level.
    pub fn read(&mut self, addr: u64) -> Level {
        self.access(addr, false)
    }

    /// Performs one write (write-allocate through both levels).
    pub fn write(&mut self, addr: u64) -> Level {
        self.access(addr, true)
    }

    fn access(&mut self, addr: u64, write: bool) -> Level {
        let r2 = if write {
            self.l2.write(addr)
        } else {
            self.l2.read(addr)
        };
        if !r2.miss {
            self.summary.l2_hits += 1;
            return Level::L2;
        }
        // An L2 dirty victim lands in L3 (its line is resident there under
        // inclusion, so this is an L3 write touch, not a DRAM one).
        let r3 = if write {
            self.l3.write(addr)
        } else {
            self.l3.read(addr)
        };
        if !r3.miss {
            self.summary.l3_hits += 1;
            Level::L3
        } else {
            self.summary.dram += 1;
            Level::Dram
        }
    }
}

/// Replays the latency-critical random accesses of one PCPM iteration —
/// the source-value reads during scatter and the partial-sum updates
/// during gather — through the hierarchy, returning the per-level counts.
///
/// Structure streams (PNG, bins) are skipped: they prefetch perfectly and
/// contribute bandwidth, not latency.
pub fn pcpm_value_latency(graph: &Csr, png: &Png, mut hierarchy: CacheHierarchy) -> LatencySummary {
    const VALUES_BASE: u64 = 0x1_0000_0000;
    const SUMS_BASE: u64 = 0x2_0000_0000;
    // Scatter: per compressed edge, one read of the (cached) source value.
    for s in png.src_parts().iter() {
        let part = png.part(s);
        for p in png.dst_parts().iter() {
            for &u in part.row(p) {
                hierarchy.read(VALUES_BASE + u64::from(u) * 4);
            }
        }
    }
    // Gather: per raw edge, one read-modify-write of the partial sum, in
    // message order.
    for p in png.dst_parts().iter() {
        let range = png.dst_parts().range(p);
        let (p_lo, p_hi) = (range.start, range.end);
        for s in png.src_parts().iter() {
            for &u in png.part(s).row(p) {
                let nbrs = graph.neighbors(u);
                let lo = nbrs.partition_point(|&t| t < p_lo);
                let hi = nbrs.partition_point(|&t| t < p_hi);
                for &t in &nbrs[lo..hi] {
                    hierarchy.write(SUMS_BASE + u64::from(t) * 4);
                }
            }
        }
    }
    hierarchy.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_core::partition::Partitioner;
    use pcpm_core::png::EdgeView;
    use pcpm_graph::gen::{rmat, RmatConfig};

    fn tiny_hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(
            CacheConfig {
                capacity: 256,
                line: 64,
                ways: 2,
            }, // 4 lines
            CacheConfig {
                capacity: 1024,
                line: 64,
                ways: 4,
            }, // 16 lines
        )
    }

    #[test]
    fn l2_hit_after_fill() {
        let mut h = tiny_hierarchy();
        assert_eq!(h.read(0), Level::Dram);
        assert_eq!(h.read(0), Level::L2);
        assert_eq!(h.read(32), Level::L2);
    }

    #[test]
    fn l3_serves_what_l2_evicted() {
        let mut h = tiny_hierarchy();
        // Fill far more lines than L2 holds but within L3.
        for addr in (0..1024u64).step_by(64) {
            h.read(addr);
        }
        // Line 0 was evicted from the 4-line L2 but lives in the L3.
        assert_eq!(h.read(0), Level::L3);
    }

    #[test]
    fn dram_when_beyond_both() {
        let mut h = tiny_hierarchy();
        for addr in (0..8192u64).step_by(64) {
            h.read(addr);
        }
        assert_eq!(h.read(0), Level::Dram);
    }

    #[test]
    fn cycles_are_weighted() {
        let s = LatencySummary {
            l2_hits: 10,
            l3_hits: 2,
            dram: 1,
        };
        let m = LatencyModel::default();
        assert_eq!(s.cycles(&m), 10 * 12 + 2 * 35 + 200);
        assert!(s.cycles_per_access(&m) > 12.0);
    }

    #[test]
    fn fig13_shape_mid_partitions_shift_hits_from_l2_to_l3() {
        // Paper §5.3.2: partitions that outgrow the private L2 but fit the
        // shared L3 keep DRAM traffic flat while latency rises.
        let g = rmat(&RmatConfig::graph500(12, 16, 13)).unwrap();
        let replay = |q: u32| {
            let parts = Partitioner::new(g.num_nodes(), q).unwrap();
            let png = Png::build(EdgeView::from_csr(&g), parts, parts);
            pcpm_value_latency(&g, &png, CacheHierarchy::paper_scaled())
        };
        let small = replay(512); // 2 KB: fits the scaled L2
        let mid = replay(8192); // 32 KB: L2-resident no more, L3 yes
        let model = LatencyModel::default();
        // Mid partitions must cost more cycles per access...
        assert!(
            mid.cycles_per_access(&model) > small.cycles_per_access(&model) * 1.2,
            "no L3 latency penalty: {:?} vs {:?}",
            mid,
            small
        );
        // ...without a significant DRAM increase (the Fig. 13 signature:
        // time up, Fig. 12 traffic flat-to-down).
        assert!(
            mid.dram < small.dram * 2,
            "mid partitions should not thrash DRAM: {} vs {}",
            mid.dram,
            small.dram
        );
    }
}
