//! Software memory-hierarchy simulation for the PCPM reproduction.
//!
//! The paper measures DRAM traffic, sustained bandwidth and DRAM energy
//! with Intel Performance Counter Monitor on a dual-socket Xeon. Hardware
//! counters are not available in this reproduction, so this crate
//! substitutes a deterministic software model:
//!
//! - [`cache`] — a set-associative, write-back, write-allocate LRU cache
//!   standing in for the shared L3 (25 MB, 64 B lines, 20 ways by
//!   default, matching the paper's machine);
//! - [`memory`] — a [`memory::MemoryModel`] combining the cache with
//!   streaming (cache-bypassing) traffic counters and per-region
//!   attribution;
//! - [`replay`] — faithful replays of the address streams issued by the
//!   PDPR, BVGAS and PCPM kernels, producing the DRAM bytes, random-access
//!   counts and per-region splits behind Figs. 1, 8, 12 and Table 7;
//! - [`model`] — the paper's closed-form communication and random-access
//!   models (Eqs. 3–10) and the predicted-traffic-vs-`r` curve of Fig. 6;
//! - [`energy`] — a DRAM energy model (per-byte plus per-row-activation)
//!   for Fig. 10;
//! - [`predict`] — closed-form gather-kernel cost estimates behind the
//!   engine's `KernelKind::Auto` selection (the decision itself is
//!   shared with `pcpm_core`, so prediction and engine never disagree).
//!
//! Traffic volumes are deterministic functions of the access pattern, so
//! the replays reproduce what PCM would count, modulo prefetcher effects
//! documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod energy;
pub mod hierarchy;
pub mod memory;
pub mod model;
pub mod predict;
pub mod replay;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{CacheHierarchy, LatencyModel, LatencySummary};
pub use memory::{MemoryModel, Region, TrafficReport};
pub use predict::{predict_kernel, KernelPrediction};
pub use replay::{
    replay_bvgas, replay_edge_centric, replay_grid, replay_pcpm, replay_pdpr, replay_push,
};
