//! DRAM traffic accounting: cache-filtered plus streaming accesses.
//!
//! [`MemoryModel`] distinguishes two access classes, mirroring how the
//! kernels actually touch memory:
//!
//! - **cached** accesses go through the simulated LLC; only misses and
//!   dirty writebacks reach DRAM. Used for the vertex-value and
//!   partial-sum arrays, whose locality is the whole point of the paper.
//! - **streaming** accesses model sequential scans of structure arrays
//!   (CSR offsets/edges, PNG, bins) and non-temporal stores. They always
//!   move their full byte count to/from DRAM but do not disturb the cache
//!   (hardware prefetchers and NT stores make these effectively
//!   cache-neutral; see DESIGN.md).
//!
//! Every access is attributed to a [`Region`], which is how Fig. 1's
//! "fraction of traffic due to vertex values" is computed. A *random*
//! DRAM access is a non-consecutive jump in the DRAM-visible address
//! stream (paper §4.1); the model counts one for each cache miss whose
//! line is not adjacent to the previous miss, and lets streaming callers
//! report their own jump counts (e.g. one per bin switch).

use crate::cache::{Cache, CacheConfig};

/// What a memory access belongs to, for traffic attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// CSR/CSC offset arrays.
    Offsets,
    /// CSR/CSC edge (adjacency) arrays.
    Edges,
    /// Source vertex values (`PR` / scaled values).
    Values,
    /// Partial-sum / output vertex values.
    Sums,
    /// Update bins.
    Updates,
    /// Destination-ID bins (including weights when present).
    DestIds,
    /// PNG layout arrays (offsets + compressed-edge sources).
    Png,
}

impl Region {
    /// All regions, for report iteration.
    pub const ALL: [Region; 7] = [
        Region::Offsets,
        Region::Edges,
        Region::Values,
        Region::Sums,
        Region::Updates,
        Region::DestIds,
        Region::Png,
    ];

    /// Short label for table output.
    pub fn name(self) -> &'static str {
        match self {
            Region::Offsets => "offsets",
            Region::Edges => "edges",
            Region::Values => "values",
            Region::Sums => "sums",
            Region::Updates => "updates",
            Region::DestIds => "destids",
            Region::Png => "png",
        }
    }

    fn index(self) -> usize {
        match self {
            Region::Offsets => 0,
            Region::Edges => 1,
            Region::Values => 2,
            Region::Sums => 3,
            Region::Updates => 4,
            Region::DestIds => 5,
            Region::Png => 6,
        }
    }
}

/// Aggregated DRAM traffic of one replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Non-consecutive DRAM accesses (paper §4.1).
    pub random_accesses: u64,
    /// Per-region `(read, write)` byte split.
    pub per_region: [(u64, u64); 7],
}

impl TrafficReport {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Bytes attributed to `region`.
    pub fn region_bytes(&self, region: Region) -> u64 {
        let (r, w) = self.per_region[region.index()];
        r + w
    }

    /// Fraction of all traffic attributed to `region` (Fig. 1 metric).
    pub fn region_fraction(&self, region: Region) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.region_bytes(region) as f64 / total as f64
        }
    }

    /// Bytes per edge (Figs. 8 and 12 metric).
    pub fn bytes_per_edge(&self, num_edges: u64) -> f64 {
        if num_edges == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / num_edges as f64
        }
    }
}

/// The combined cache + streaming DRAM model.
pub struct MemoryModel {
    cache: Cache,
    report: TrafficReport,
    last_miss_line: Option<u64>,
    line: u64,
}

impl MemoryModel {
    /// Creates a model over a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let line = cfg.line as u64;
        Self {
            cache: Cache::new(cfg),
            report: TrafficReport::default(),
            last_miss_line: None,
            line,
        }
    }

    /// Model with the paper machine's L3.
    pub fn paper_l3() -> Self {
        Self::new(CacheConfig::default())
    }

    /// Access to the underlying cache statistics.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Sequential streaming read of `bytes` from DRAM.
    pub fn stream_read(&mut self, bytes: u64, region: Region) {
        self.report.read_bytes += bytes;
        self.report.per_region[region.index()].0 += bytes;
        // A stream is one jump to its start, then consecutive.
        if bytes > 0 {
            self.report.random_accesses += 1;
            self.last_miss_line = None;
        }
    }

    /// Sequential streaming write of `bytes` to DRAM (non-temporal).
    pub fn stream_write(&mut self, bytes: u64, region: Region) {
        self.report.write_bytes += bytes;
        self.report.per_region[region.index()].1 += bytes;
        if bytes > 0 {
            self.report.random_accesses += 1;
            self.last_miss_line = None;
        }
    }

    /// Streaming write with an explicit number of non-consecutive jumps
    /// (e.g. one per bin switch or per write-combining flush).
    pub fn stream_write_jumps(&mut self, bytes: u64, jumps: u64, region: Region) {
        self.report.write_bytes += bytes;
        self.report.per_region[region.index()].1 += bytes;
        self.report.random_accesses += jumps;
    }

    /// Cached read of one datum at `addr`; misses fetch a full line.
    pub fn cached_read(&mut self, addr: u64, region: Region) {
        let r = self.cache.read(addr);
        self.account_cache(addr, r, region);
    }

    /// Cached write of one datum at `addr` (write-allocate: a miss reads
    /// the line; the writeback is charged on eviction).
    pub fn cached_write(&mut self, addr: u64, region: Region) {
        let r = self.cache.write(addr);
        self.account_cache(addr, r, region);
    }

    /// Cached write that installs the line *without* a DRAM read on miss.
    ///
    /// Models zero-fill / full-line streaming stores: `ys.fill(0.0)` at
    /// the start of a gather dirties the partial-sum lines without
    /// fetching them. Dirty evictions are still charged as writebacks, so
    /// a partition larger than the cache correctly thrashes.
    pub fn cached_write_noread(&mut self, addr: u64, region: Region) {
        let r = self.cache.write(addr);
        if r.writeback {
            self.report.write_bytes += self.line;
            self.report.per_region[region.index()].1 += self.line;
        }
        if r.miss {
            let miss_line = addr / self.line;
            if self.last_miss_line != Some(miss_line.wrapping_sub(1)) {
                self.report.random_accesses += 1;
            }
            self.last_miss_line = Some(miss_line);
        }
    }

    fn account_cache(&mut self, addr: u64, r: crate::cache::AccessResult, region: Region) {
        if r.miss {
            self.report.read_bytes += self.line;
            self.report.per_region[region.index()].0 += self.line;
            let miss_line = addr / self.line;
            if self.last_miss_line != Some(miss_line.wrapping_sub(1)) {
                self.report.random_accesses += 1;
            }
            self.last_miss_line = Some(miss_line);
        }
        if r.writeback {
            self.report.write_bytes += self.line;
            // Writebacks of value lines are attributed to the same region.
            self.report.per_region[region.index()].1 += self.line;
        }
    }

    /// Flushes remaining dirty lines (end of run), charging their
    /// writebacks to `region`, and returns the final report.
    pub fn finish(mut self, dirty_region: Region) -> TrafficReport {
        let flushed = self.cache.flush();
        let bytes = flushed * self.line;
        self.report.write_bytes += bytes;
        self.report.per_region[dirty_region.index()].1 += bytes;
        self.report
    }

    /// The report accumulated so far, without flushing.
    pub fn report(&self) -> TrafficReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryModel {
        MemoryModel::new(CacheConfig {
            capacity: 1024,
            line: 64,
            ways: 2,
        })
    }

    #[test]
    fn streaming_counts_bytes_exactly() {
        let mut mm = small();
        mm.stream_read(1000, Region::Edges);
        mm.stream_write(500, Region::Updates);
        let r = mm.report();
        assert_eq!(r.read_bytes, 1000);
        assert_eq!(r.write_bytes, 500);
        assert_eq!(r.region_bytes(Region::Edges), 1000);
        assert_eq!(r.region_bytes(Region::Updates), 500);
    }

    #[test]
    fn cached_hit_moves_no_bytes() {
        let mut mm = small();
        mm.cached_read(0, Region::Values);
        mm.cached_read(4, Region::Values);
        assert_eq!(mm.report().read_bytes, 64); // one line for both
    }

    #[test]
    fn consecutive_misses_are_not_random() {
        let mut mm = small();
        mm.cached_read(0, Region::Values); // random (first)
        mm.cached_read(64, Region::Values); // consecutive line
        mm.cached_read(128, Region::Values); // consecutive line
        mm.cached_read(4096, Region::Values); // jump
        assert_eq!(mm.report().random_accesses, 2);
    }

    #[test]
    fn finish_flushes_dirty_lines() {
        let mut mm = small();
        mm.cached_write(0, Region::Sums);
        mm.cached_write(64, Region::Sums);
        let r = mm.finish(Region::Sums);
        // 2 line fills (write-allocate) + 2 writebacks.
        assert_eq!(r.read_bytes, 128);
        assert_eq!(r.write_bytes, 128);
        assert_eq!(r.region_bytes(Region::Sums), 256);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut mm = small();
        mm.stream_read(300, Region::Edges);
        mm.stream_read(700, Region::Offsets);
        let r = mm.report();
        let total: f64 = Region::ALL.iter().map(|&reg| r.region_fraction(reg)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_per_edge() {
        let mut mm = small();
        mm.stream_read(640, Region::Edges);
        assert!((mm.report().bytes_per_edge(10) - 64.0).abs() < 1e-12);
        assert_eq!(mm.report().bytes_per_edge(0), 0.0);
    }

    #[test]
    fn stream_write_jumps_counts_randoms() {
        let mut mm = small();
        mm.stream_write_jumps(4096, 32, Region::Updates);
        assert_eq!(mm.report().random_accesses, 32);
        assert_eq!(mm.report().write_bytes, 4096);
    }
}
