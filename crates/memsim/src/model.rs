//! The paper's closed-form communication and random-access models (§4).
//!
//! All quantities are DRAM bytes (or access counts) for **one** PageRank
//! iteration. Parameter names follow Table 2: `n` nodes, `m` edges, `k`
//! partitions, `r` compression ratio, `cmr` cache miss ratio for PDPR's
//! source-value reads, `l` cache line bytes, `di`/`dv` index/value sizes.

/// Model parameters (Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Number of nodes `n`.
    pub n: f64,
    /// Number of edges `m`.
    pub m: f64,
    /// Number of partitions `k` (PCPM) or bins (BVGAS).
    pub k: f64,
    /// Cache line size `l` in bytes.
    pub l: f64,
    /// Index size `di` in bytes.
    pub di: f64,
    /// Value size `dv` in bytes.
    pub dv: f64,
}

impl ModelParams {
    /// The paper's constants (`l = 64`, `di = dv = 4`) for a given graph.
    pub fn paper(n: f64, m: f64, k: f64) -> Self {
        Self {
            n,
            m,
            k,
            l: 64.0,
            di: 4.0,
            dv: 4.0,
        }
    }

    /// The kron dataset of Fig. 6: `n = 33.5 M`, `m = 1070 M`, `k = 512`.
    pub fn fig6_kron() -> Self {
        Self::paper(33.5e6, 1070e6, 512.0)
    }
}

/// Eq. 3 — PDPR communication volume: `m(di + cmr·l) + n(di + dv)`.
pub fn pdpr_comm(p: &ModelParams, cmr: f64) -> f64 {
    p.m * (p.di + cmr * p.l) + p.n * (p.di + p.dv)
}

/// Eq. 4 — BVGAS communication volume: `2m(di + dv) + n(di + 2dv)`.
pub fn bvgas_comm(p: &ModelParams) -> f64 {
    2.0 * p.m * (p.di + p.dv) + p.n * (p.di + 2.0 * p.dv)
}

/// Eq. 5 — PCPM communication volume:
/// `m(di(1 + 1/r) + 2dv/r) + k²·di + 2n·dv`.
pub fn pcpm_comm(p: &ModelParams, r: f64) -> f64 {
    assert!(r >= 1.0, "compression ratio must be >= 1");
    p.m * (p.di * (1.0 + 1.0 / r) + 2.0 * p.dv / r) + p.k * p.k * p.di + 2.0 * p.n * p.dv
}

/// Eq. 6 — the `cmr` above which BVGAS beats PDPR: `(di + 2dv) / l`.
pub fn bvgas_crossover_cmr(p: &ModelParams) -> f64 {
    (p.di + 2.0 * p.dv) / p.l
}

/// Eq. 7 — the `cmr` above which PCPM beats PDPR: `(di + 2dv) / (r·l)`.
pub fn pcpm_crossover_cmr(p: &ModelParams, r: f64) -> f64 {
    (p.di + 2.0 * p.dv) / (r * p.l)
}

/// Eq. 8 — PDPR random DRAM accesses: `O(m · cmr)`.
pub fn pdpr_random(p: &ModelParams, cmr: f64) -> f64 {
    p.m * cmr
}

/// Eq. 9 — BVGAS random DRAM accesses: `O(m · dv / l)`.
pub fn bvgas_random(p: &ModelParams) -> f64 {
    p.m * p.dv / p.l
}

/// Eq. 10 — PCPM random DRAM accesses: `O(k²)`.
pub fn pcpm_random(p: &ModelParams) -> f64 {
    p.k * p.k
}

/// One point of the Fig. 6 curve: predicted PCPM DRAM traffic (GB) for a
/// given compression ratio.
pub fn fig6_point(p: &ModelParams, r: f64) -> f64 {
    pcpm_comm(p, r) / 1e9
}

/// The full Fig. 6 sweep: `(r, predicted GB)` pairs.
pub fn fig6_curve(p: &ModelParams, rs: &[f64]) -> Vec<(f64, f64)> {
    rs.iter().map(|&r| (r, fig6_point(p, r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reference_values() {
        // Fig. 6 annotates r = 3.13 for kron's original labeling and shows
        // ~24 GB at r = 1, dropping below 8 GB for large r.
        let p = ModelParams::fig6_kron();
        let at_1 = fig6_point(&p, 1.0);
        assert!((16.0..20.0).contains(&at_1), "traffic at r=1: {at_1} GB");
        let at_313 = fig6_point(&p, 3.13);
        assert!(
            (7.5..10.0).contains(&at_313),
            "traffic at r=3.13: {at_313} GB"
        );
        let at_32 = fig6_point(&p, 32.0);
        assert!(at_32 < 6.0, "traffic at r=32: {at_32} GB");
    }

    #[test]
    fn fig6_curve_is_decreasing_and_convex_shaped() {
        let p = ModelParams::fig6_kron();
        let rs: Vec<f64> = (1..=35).map(f64::from).collect();
        let curve = fig6_curve(&p, &rs);
        for w in curve.windows(2) {
            assert!(w[1].1 < w[0].1, "not decreasing at r={}", w[0].0);
        }
        // Rapid drop below r = 5, slow convergence after (paper §4).
        let drop_low = curve[0].1 - curve[4].1;
        let drop_high = curve[9].1 - curve[29].1;
        assert!(drop_low > drop_high * 2.0);
    }

    #[test]
    fn pcpm_at_r1_close_to_bvgas() {
        // §4: in the worst case (r = 1) PCPM is still as good as BVGAS.
        let p = ModelParams::fig6_kron();
        let pc = pcpm_comm(&p, 1.0);
        let bv = bvgas_comm(&p);
        assert!(pc <= bv * 1.02, "pcpm {pc} vs bvgas {bv}");
    }

    #[test]
    fn pcpm_lower_bound_matches_pdpr_best_case() {
        // §4: at r = m/n (perfect compression), PCPM approaches m·di like
        // best-case PDPR.
        let p = ModelParams::paper(1e6, 32e6, 64.0);
        let r = p.m / p.n;
        let pc = pcpm_comm(&p, r);
        let pdpr_best = pdpr_comm(&p, p.n * p.dv / (p.m * p.l));
        assert!(pc < pdpr_best * 1.6, "pcpm {pc} vs best pdpr {pdpr_best}");
    }

    #[test]
    fn crossover_thresholds() {
        let p = ModelParams::paper(1e6, 16e6, 64.0);
        // di=4, dv=4, l=64: BVGAS crossover at cmr = 12/64 = 0.1875.
        assert!((bvgas_crossover_cmr(&p) - 0.1875).abs() < 1e-12);
        // PCPM relaxes it by 1/r.
        assert!((pcpm_crossover_cmr(&p, 3.0) - 0.0625).abs() < 1e-12);
        // Consistency: at exactly the crossover cmr, volumes match.
        let cmr = bvgas_crossover_cmr(&p);
        let diff = (pdpr_comm(&p, cmr) - bvgas_comm(&p)).abs();
        assert!(
            diff / bvgas_comm(&p) < 0.05,
            "crossover inconsistent: {diff}"
        );
    }

    #[test]
    fn random_access_example_from_section_4_1() {
        // §4.1: kron with dv=4, l=64, k=512 gives BVGAS_ra ≈ 66.9 M and
        // PCPM_ra ≈ 0.26 M.
        let p = ModelParams::fig6_kron();
        assert!((bvgas_random(&p) / 1e6 - 66.9).abs() < 0.5);
        assert!((pcpm_random(&p) / 1e6 - 0.262).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn pcpm_comm_rejects_r_below_one() {
        pcpm_comm(&ModelParams::fig6_kron(), 0.5);
    }
}
