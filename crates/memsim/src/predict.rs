//! Closed-form gather-kernel selection: predicts whether the scalar or
//! the unrolled/batched kernel wins for a given graph shape and bin
//! format, in the same cost-model spirit as [`crate::model`].
//!
//! The engine's [`KernelKind::Auto`] resolution and this predictor share
//! one decision function — [`pcpm_core::kernel::resolve_auto`] — so the
//! simulator's prediction and the engine's auto-selection can never
//! disagree. What this module adds on top of the shared decision is the
//! *cost estimates* behind it: per-edge gather-nanosecond predictions
//! for each concrete kernel, validated against `BENCH_kernels.json` by
//! the `kernels` bench.

use pcpm_core::format::BinFormatKind;
use pcpm_core::kernel::{resolve_auto, KernelKind, SCRATCH_BYTES_PER_EDGE, SCRATCH_CACHE_BUDGET};

/// Calibration constants for the per-edge kernel cost model, all in
/// nanoseconds. Calibrated against the committed
/// `bench-baselines/BENCH_kernels.json` numbers (scale-12 RMAT); they
/// only need to *rank* the kernels correctly, not hit wall-clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCosts {
    /// Per-entry overhead of the scalar apply loop (bounds check +
    /// branch + flag arithmetic).
    pub scalar_loop_ns: f64,
    /// Per-entry overhead of the 4-wide unrolled apply loop.
    pub unrolled_loop_ns: f64,
    /// Per encoded byte cost of the inline varint decode's
    /// data-dependent continuation branch (scalar delta path).
    pub varint_branch_ns: f64,
    /// Per encoded byte cost of the batched branch-reduced decode
    /// (unrolled delta path).
    pub batched_decode_ns: f64,
    /// Per-entry cost of the scratch-buffer round trip (one `u64`
    /// write + read) while the segment's scratch stays cache-resident.
    pub scratch_hit_ns: f64,
    /// Per-entry cost of the same round trip once the decoded segment
    /// spills the cache and pays DRAM write + read latency.
    pub scratch_spill_ns: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            scalar_loop_ns: 1.6,
            unrolled_loop_ns: 1.0,
            varint_branch_ns: 0.9,
            batched_decode_ns: 0.35,
            scratch_hit_ns: 0.4,
            scratch_spill_ns: 3.0,
        }
    }
}

/// The predictor's verdict for one `(graph, format)` point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelPrediction {
    /// Predicted gather cost of the scalar kernel, ns per raw edge.
    pub scalar_ns_per_edge: f64,
    /// Predicted gather cost of the unrolled kernel, ns per raw edge.
    pub unrolled_ns_per_edge: f64,
    /// The kernel [`KernelKind::Auto`] resolves to for this point —
    /// delegated to [`resolve_auto`], so it is always exactly what the
    /// engine would pick. Never [`KernelKind::Auto`].
    pub choice: KernelKind,
    /// Average decoded entries per delta bin segment (0 for the
    /// fixed-width formats), the quantity the spill test is about.
    pub avg_segment_edges: u64,
}

impl KernelPrediction {
    /// Predicted speedup of the chosen kernel over the other one
    /// (>= 1.0 when the cost model and the shared decision agree).
    pub fn predicted_speedup(&self) -> f64 {
        let (win, lose) = match self.choice {
            KernelKind::Scalar => (self.scalar_ns_per_edge, self.unrolled_ns_per_edge),
            _ => (self.unrolled_ns_per_edge, self.scalar_ns_per_edge),
        };
        lose / win.max(f64::MIN_POSITIVE)
    }
}

/// Number of partitions a dimension of `n` nodes splits into at
/// partition size `q` (matching `pcpm_core::partition::Partitioner`).
fn num_partitions(n: u64, q: u64) -> u64 {
    n.div_ceil(q.max(1)).max(1)
}

/// Predicts the winning gather kernel for an `n`-node, `raw_edges`-edge
/// square graph under bin format `format` with partition size `q`
/// (nodes per partition, `PcpmConfig::partition_nodes`).
///
/// The `choice` field delegates to [`resolve_auto`] — the decision the
/// engine makes at build time — while the per-kernel ns/edge estimates
/// expose *why*: for the fixed-width formats the unrolled apply loop
/// strictly shaves loop overhead, and for delta the batched decode wins
/// until the average segment's decoded scratch
/// ([`SCRATCH_BYTES_PER_EDGE`] per entry) outgrows the cache budget
/// ([`SCRATCH_CACHE_BUDGET`]) and every entry pays a spill round trip.
pub fn predict_kernel(n: u64, raw_edges: u64, format: BinFormatKind, q: u64) -> KernelPrediction {
    predict_kernel_with(n, raw_edges, format, q, &KernelCosts::default())
}

/// [`predict_kernel`] with explicit calibration constants.
pub fn predict_kernel_with(
    n: u64,
    raw_edges: u64,
    format: BinFormatKind,
    q: u64,
    costs: &KernelCosts,
) -> KernelPrediction {
    let k = num_partitions(n, q);
    // Encoded bytes per delta entry: 1–2 in practice (partition-local
    // gaps); 1.3 matches the measured delta compression on RMAT graphs.
    const DELTA_BYTES_PER_EDGE: f64 = 1.3;
    let (scalar, unrolled, avg_segment_edges) = match format {
        BinFormatKind::Wide | BinFormatKind::Compact => {
            (costs.scalar_loop_ns, costs.unrolled_loop_ns, 0)
        }
        BinFormatKind::Delta => {
            let segments = k * k;
            let avg = raw_edges / segments.max(1);
            let spills = avg * SCRATCH_BYTES_PER_EDGE > SCRATCH_CACHE_BUDGET;
            let scratch = if spills {
                costs.scratch_spill_ns
            } else {
                costs.scratch_hit_ns
            };
            (
                costs.scalar_loop_ns + DELTA_BYTES_PER_EDGE * costs.varint_branch_ns,
                costs.unrolled_loop_ns + DELTA_BYTES_PER_EDGE * costs.batched_decode_ns + scratch,
                avg,
            )
        }
    };
    let k32 = u32::try_from(k).unwrap_or(u32::MAX);
    KernelPrediction {
        scalar_ns_per_edge: scalar,
        unrolled_ns_per_edge: unrolled,
        choice: resolve_auto(format, raw_edges, k32, k32),
        avg_segment_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_always_picks_unrolled() {
        for format in [BinFormatKind::Wide, BinFormatKind::Compact] {
            let p = predict_kernel(1 << 20, 1 << 24, format, 1 << 16);
            assert_eq!(p.choice, KernelKind::Unrolled);
            assert!(p.unrolled_ns_per_edge < p.scalar_ns_per_edge);
            assert!(p.predicted_speedup() >= 1.0);
        }
    }

    #[test]
    fn delta_cache_resident_picks_unrolled() {
        // Scale-12-ish: 4096 nodes, 32 K edges, q = 512 -> 8x8 segments,
        // ~512 entries (~4 KB scratch) per segment: firmly cache-resident.
        let p = predict_kernel(4096, 1 << 15, BinFormatKind::Delta, 512);
        assert_eq!(p.choice, KernelKind::Unrolled);
        assert!(p.unrolled_ns_per_edge < p.scalar_ns_per_edge);
    }

    #[test]
    fn delta_spilling_picks_scalar() {
        // One giant partition: the whole edge list decodes into one
        // scratch segment far beyond the cache budget.
        let n = 1u64 << 24;
        let p = predict_kernel(n, 1 << 28, BinFormatKind::Delta, n);
        assert_eq!(p.choice, KernelKind::Scalar);
        assert!(p.scalar_ns_per_edge < p.unrolled_ns_per_edge);
        assert!(p.avg_segment_edges * SCRATCH_BYTES_PER_EDGE > SCRATCH_CACHE_BUDGET);
    }

    #[test]
    fn choice_always_matches_engine_resolution() {
        // The predictor may never disagree with the engine's Auto: both
        // call resolve_auto with the same (format, edges, k, k).
        for format in BinFormatKind::ALL {
            for (n, m, q) in [
                (1u64 << 12, 1u64 << 15, 512u64),
                (1 << 20, 1 << 24, 1 << 16),
                (1 << 24, 1 << 28, 1 << 24),
                (100, 0, 7),
            ] {
                let k = u32::try_from(n.div_ceil(q).max(1)).unwrap();
                let p = predict_kernel(n, m, format, q);
                assert_eq!(p.choice, resolve_auto(format, m, k, k));
            }
        }
    }

    #[test]
    fn cost_model_ranks_consistently_with_choice() {
        // Wherever the shared decision picks a kernel, the descriptive
        // cost estimates must rank that kernel as (weakly) cheaper —
        // otherwise the constants drifted from the decision rule.
        for format in BinFormatKind::ALL {
            for (n, m, q) in [
                (1u64 << 12, 1u64 << 15, 512u64),
                (1 << 16, 1 << 22, 1 << 10),
                (1 << 24, 1 << 30, 1 << 24),
            ] {
                let p = predict_kernel(n, m, format, q);
                match p.choice {
                    KernelKind::Scalar => {
                        assert!(p.scalar_ns_per_edge <= p.unrolled_ns_per_edge)
                    }
                    _ => assert!(p.unrolled_ns_per_edge <= p.scalar_ns_per_edge),
                }
            }
        }
    }
}
