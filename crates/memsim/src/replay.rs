//! Per-kernel DRAM access replays.
//!
//! Each replay issues the same address stream as one PageRank iteration of
//! the corresponding kernel (steady state: destination IDs already
//! written, so they are read- but never write-accounted, matching the
//! paper's model assumptions in §4). Structure arrays are streamed;
//! vertex-value and partial-sum arrays go through the simulated cache.
//!
//! All index and value sizes are 4 bytes (`di = dv = 4`), as in the paper.
//!
//! The replays are single-threaded: DRAM *volume* is
//! schedule-independent, and multi-core cache pressure is modeled by
//! handing the replay an appropriately sized effective cache (the harness
//! divides the L3 by the worker count; see `pcpm-bench`).

use crate::cache::CacheConfig;
use crate::memory::{MemoryModel, Region, TrafficReport};
use pcpm_core::partition::Partitioner;
use pcpm_core::png::{EdgeView, Png};
use pcpm_graph::Csr;

/// Size of one index in bytes (paper `di`).
pub const DI: u64 = 4;
/// Size of one value in bytes (paper `dv`).
pub const DV: u64 = 4;

/// Virtual base address of the source-value array.
const VALUES_BASE: u64 = 0x1_0000_0000;
/// Virtual base address of the partial-sum / output array.
const SUMS_BASE: u64 = 0x2_0000_0000;

/// Replays one Pull-Direction PageRank iteration (Algorithm 1).
///
/// Returns the traffic report and the cache miss ratio of the
/// source-value reads (the paper's `cmr` parameter). The `Values` region
/// fraction of the report is the Fig. 1 metric.
pub fn replay_pdpr(graph: &Csr, cache: CacheConfig) -> (TrafficReport, f64) {
    let n = u64::from(graph.num_nodes());
    let m = graph.num_edges();
    let mut mm = MemoryModel::new(cache);
    // CSC offsets and in-edge source indices: sequential scans.
    mm.stream_read((n + 1) * DI, Region::Offsets);
    mm.stream_read(m * DI, Region::Edges);
    // Source-value reads: random, through the cache. The pull traversal
    // walks destinations in order; its reads follow in-neighbor lists.
    let csc = graph.transpose();
    for v in 0..graph.num_nodes() {
        for &u in csc.neighbors(v) {
            mm.cached_read(VALUES_BASE + u64::from(u) * DV, Region::Values);
        }
    }
    // New PageRank values: one sequential write per node.
    mm.stream_write(n * DV, Region::Sums);
    let cmr = mm.cache().miss_ratio();
    (mm.finish(Region::Values), cmr)
}

/// Replays one BVGAS iteration (Algorithm 5 with the §5.2 details:
/// write-combining buffers, destination IDs written once).
///
/// `bin_nodes` is the bin width in nodes, `wc_entries` the write-combining
/// buffer capacity in updates (32 = 128 bytes, the paper's buffer).
pub fn replay_bvgas(
    graph: &Csr,
    bin_nodes: u32,
    wc_entries: usize,
    cache: CacheConfig,
) -> TrafficReport {
    assert!(bin_nodes > 0, "bin width must be positive");
    let n = u64::from(graph.num_nodes());
    let m = graph.num_edges();
    let mut mm = MemoryModel::new(cache);
    let num_bins = if n == 0 {
        0
    } else {
        (graph.num_nodes() - 1) / bin_nodes + 1
    } as usize;

    // --- Scatter ---
    mm.stream_read((n + 1) * DI, Region::Offsets);
    mm.stream_read(m * DI, Region::Edges);
    // x[v] is scanned in vertex order: sequential.
    mm.stream_read(n * DV, Region::Values);
    // Updates leave through per-bin write-combining buffers; each flush is
    // one non-consecutive streaming store of a full buffer.
    let mut pending = vec![0u64; num_bins];
    let mut flushes = 0u64;
    for v in 0..graph.num_nodes() {
        for &u in graph.neighbors(v) {
            let b = (u / bin_nodes) as usize;
            pending[b] += 1;
            if pending[b] == wc_entries as u64 {
                flushes += 1;
                pending[b] = 0;
            }
        }
    }
    flushes += pending.iter().filter(|&&p| p > 0).count() as u64;
    mm.stream_write_jumps(m * DV, flushes, Region::Updates);

    // --- Gather ---
    // Reconstruct the true per-bin message order: destinations appear in
    // scatter-traversal order (by source vertex), *not* sorted, so the
    // partial-sum accesses jump around within the bin — this is what makes
    // oversized bins thrash.
    let mut bin_counts = vec![0u64; num_bins];
    for (_, u) in graph.edges() {
        bin_counts[(u / bin_nodes) as usize] += 1;
    }
    let mut bin_off = vec![0usize; num_bins + 1];
    for b in 0..num_bins {
        bin_off[b + 1] = bin_off[b] + bin_counts[b] as usize;
    }
    let mut dest_sorted = vec![0u32; m as usize];
    let mut cursor = bin_off.clone();
    for (_, u) in graph.edges() {
        let b = (u / bin_nodes) as usize;
        dest_sorted[cursor[b]] = u;
        cursor[b] += 1;
    }
    for b in 0..num_bins {
        let slice = &dest_sorted[bin_off[b]..bin_off[b + 1]];
        mm.stream_read(slice.len() as u64 * DI, Region::DestIds);
        mm.stream_read(slice.len() as u64 * DV, Region::Updates);
        // Partial sums: zero-filled at bin start (no read), then updated
        // in message order through the cache.
        let lo = b as u32 * bin_nodes;
        let hi = (lo + bin_nodes).min(graph.num_nodes());
        for v in lo..hi {
            mm.cached_write_noread(SUMS_BASE + u64::from(v) * DV, Region::Sums);
        }
        for &u in slice {
            mm.cached_write_noread(SUMS_BASE + u64::from(u) * DV, Region::Sums);
        }
    }
    // Apply: dirty partial-sum lines drain to DRAM as the new PR vector.
    mm.finish(Region::Sums)
}

/// Replays one PCPM iteration over a pre-built PNG (Algorithms 3 and 4).
pub fn replay_pcpm_png(graph: &Csr, png: &Png, cache: CacheConfig) -> TrafficReport {
    replay_pcpm_png_with(graph, png, cache, DI)
}

/// As [`replay_pcpm_png`] with an explicit destination-ID width in bytes:
/// pass `2` for the compact 16-bit bins (`pcpm_core::compact`), which
/// halves the `m·di` gather-scan term of Eq. 5.
pub fn replay_pcpm_png_with(
    graph: &Csr,
    png: &Png,
    cache: CacheConfig,
    dest_id_bytes: u64,
) -> TrafficReport {
    debug_assert_eq!(png.num_raw_edges(), graph.num_edges());
    let k = u64::from(png.dst_parts().num_partitions());
    let e_comp = png.num_compressed_edges();
    let mut mm = MemoryModel::new(cache);

    // --- Scatter (Algorithm 3) ---
    // PNG offsets (k per partition, k partitions) and compressed-edge
    // source indices: sequential.
    mm.stream_read(k * (k + 1) * DI, Region::Png);
    mm.stream_read(e_comp * DI, Region::Png);
    for s in png.src_parts().iter() {
        let part = png.part(s);
        for p in png.dst_parts().iter() {
            let row = part.row(p);
            // Source values: random within the cached source partition.
            for &u in row {
                mm.cached_read(VALUES_BASE + u64::from(u) * DV, Region::Values);
            }
            // Updates stream to bin p: one jump per non-empty row.
            if !row.is_empty() {
                mm.stream_write_jumps(row.len() as u64 * DV, 1, Region::Updates);
            }
        }
    }

    // --- Gather (Algorithm 4) ---
    for p in png.dst_parts().iter() {
        // Zero-fill the partial sums of this partition.
        let range = png.dst_parts().range(p);
        for v in range.clone() {
            mm.cached_write_noread(SUMS_BASE + u64::from(v) * DV, Region::Sums);
        }
        let p_lo = range.start;
        let p_hi = range.end;
        // Segment scans: destination IDs (all raw edges into p) and
        // updates (compressed edges into p), one pass per source segment,
        // applying messages in the exact bin order (per source node run).
        for s in png.src_parts().iter() {
            let part = png.part(s);
            let did = part.did_off[p as usize + 1] - part.did_off[p as usize];
            let upd = part.upd_off[p as usize + 1] - part.upd_off[p as usize];
            if did == 0 {
                continue;
            }
            mm.stream_read(did * dest_id_bytes, Region::DestIds);
            mm.stream_read(upd * DV, Region::Updates);
            for &u in part.row(p) {
                // The message of u carries u's neighbors inside partition
                // p — a contiguous run of u's sorted adjacency list.
                let nbrs = graph.neighbors(u);
                let lo = nbrs.partition_point(|&t| t < p_lo);
                let hi = nbrs.partition_point(|&t| t < p_hi);
                for &t in &nbrs[lo..hi] {
                    mm.cached_write_noread(SUMS_BASE + u64::from(t) * DV, Region::Sums);
                }
            }
        }
    }
    mm.finish(Region::Sums)
}

/// Convenience: builds the PNG for `partition_nodes` and replays PCPM.
pub fn replay_pcpm(graph: &Csr, partition_nodes: u32, cache: CacheConfig) -> TrafficReport {
    let parts = Partitioner::new(graph.num_nodes(), partition_nodes)
        .expect("partition size must be positive");
    let png = Png::build(EdgeView::from_csr(graph), parts, parts);
    replay_pcpm_png(graph, &png, cache)
}

/// Replays one push-direction iteration: CSR scan plus one random
/// read-modify-write of a partial sum per edge (the atomics path). The
/// RMW charges a full-line read on miss — unlike the zero-filled GAS
/// bins, a partial sum evicted mid-iteration must be fetched back.
pub fn replay_push(graph: &Csr, cache: CacheConfig) -> TrafficReport {
    let n = u64::from(graph.num_nodes());
    let m = graph.num_edges();
    let mut mm = MemoryModel::new(cache);
    mm.stream_read((n + 1) * DI, Region::Offsets);
    mm.stream_read(m * DI, Region::Edges);
    mm.stream_read(n * DV, Region::Values); // x scanned in vertex order
    for v in 0..graph.num_nodes() {
        for &t in graph.neighbors(v) {
            mm.cached_write(SUMS_BASE + u64::from(t) * DV, Region::Sums);
        }
    }
    mm.finish(Region::Sums)
}

/// Replays one edge-centric iteration (bin-sorted COO): both endpoints
/// are read per edge (`2·di`, the §2.2 overhead vs CSR), source values
/// are random cached reads, partial sums stay within the active bin.
pub fn replay_edge_centric(graph: &Csr, bin_nodes: u32, cache: CacheConfig) -> TrafficReport {
    assert!(bin_nodes > 0, "bin width must be positive");
    let m = graph.num_edges();
    let mut mm = MemoryModel::new(cache);
    // Bin-sorted COO: one (src, dst) pair per edge, streamed per bin.
    mm.stream_read(m * 2 * DI, Region::Edges);
    // Bucket edges by destination bin to reproduce the traversal order.
    let num_bins = ((graph.num_nodes().max(1) - 1) / bin_nodes + 1) as usize;
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_bins];
    for (s, t) in graph.edges() {
        buckets[(t / bin_nodes) as usize].push((s, t));
    }
    for (b, bucket) in buckets.iter().enumerate() {
        let lo = b as u32 * bin_nodes;
        let hi = (lo + bin_nodes).min(graph.num_nodes());
        for v in lo..hi {
            mm.cached_write_noread(SUMS_BASE + u64::from(v) * DV, Region::Sums);
        }
        for &(s, t) in bucket {
            // Source value: random read; destination sum: bin-local.
            mm.cached_read(VALUES_BASE + u64::from(s) * DV, Region::Values);
            mm.cached_write_noread(SUMS_BASE + u64::from(t) * DV, Region::Sums);
        }
    }
    mm.finish(Region::Sums)
}

/// Replays one cache-blocked / GridGraph-style 2D iteration: per
/// destination stripe, every source block's sub-CSR is re-scanned
/// (`k·(q+1)` offsets per stripe — the sparse-block overhead of §2.2) and
/// the source values of the active block are re-read each stripe.
pub fn replay_grid(graph: &Csr, partition_nodes: u32, cache: CacheConfig) -> TrafficReport {
    assert!(partition_nodes > 0, "partition size must be positive");
    let parts = Partitioner::new(graph.num_nodes(), partition_nodes).expect("partitioner");
    let mut mm = MemoryModel::new(cache);
    for j in parts.iter() {
        let (d_lo, d_hi) = {
            let r = parts.range(j);
            (r.start, r.end)
        };
        for v in d_lo..d_hi {
            mm.cached_write_noread(SUMS_BASE + u64::from(v) * DV, Region::Sums);
        }
        for i in parts.iter() {
            // Block (i, j) structure: block-local offsets plus its edges.
            let src = parts.range(i);
            let mut block_edges = 0u64;
            for v in src.clone() {
                let nbrs = graph.neighbors(v);
                let lo = nbrs.partition_point(|&t| t < d_lo);
                let hi = nbrs.partition_point(|&t| t < d_hi);
                if hi > lo {
                    // Source value re-read for this stripe (cached while
                    // the block is active).
                    mm.cached_read(VALUES_BASE + u64::from(v) * DV, Region::Values);
                }
                for &t in &nbrs[lo..hi] {
                    mm.cached_write_noread(SUMS_BASE + u64::from(t) * DV, Region::Sums);
                }
                block_edges += (hi - lo) as u64;
            }
            mm.stream_read(u64::from(src.end - src.start + 1) * DI, Region::Offsets);
            mm.stream_read(block_edges * DI, Region::Edges);
        }
    }
    mm.finish(Region::Sums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{erdos_renyi, rmat, RmatConfig};
    use pcpm_graph::order::{apply_permutation, random_order};

    /// A cache big enough that only cold misses occur.
    fn huge_cache() -> CacheConfig {
        CacheConfig {
            capacity: 64 * 1024 * 1024,
            line: 64,
            ways: 16,
        }
    }

    /// A cache far smaller than the vertex arrays.
    fn tiny_cache() -> CacheConfig {
        CacheConfig {
            capacity: 8 * 1024,
            line: 64,
            ways: 8,
        }
    }

    #[test]
    fn pdpr_traffic_bounds_match_model() {
        // Paper §4: PDPR_comm ∈ [m·di, m·(di + l)] + n·(di + dv) terms.
        // The values array (256 KB) must exceed the tiny cache for the
        // miss-ratio contrast to show.
        let g = erdos_renyi(1 << 16, 1 << 19, 7).unwrap();
        let n = u64::from(g.num_nodes());
        let m = g.num_edges();
        let (lo_traffic, lo_cmr) = replay_pdpr(&g, huge_cache());
        let (hi_traffic, hi_cmr) = replay_pdpr(&g, tiny_cache());
        assert!(lo_cmr < hi_cmr, "bigger cache must lower cmr");
        assert!(lo_traffic.total_bytes() < hi_traffic.total_bytes());
        let fixed = (n + 1) * DI + m * DI + n * DV;
        // Upper bound: every value read misses a full line.
        assert!(hi_traffic.total_bytes() <= fixed + m * 64 + n * 64);
        // Lower bound: at least the structure and output traffic.
        assert!(lo_traffic.total_bytes() >= fixed);
    }

    #[test]
    fn pdpr_values_dominate_on_low_locality_graph() {
        // Fig. 1: vertex-value accesses are the bulk of PDPR DRAM traffic
        // when the values array does not fit in cache (64 KB values over
        // an 8 KB cache here).
        let g = rmat(&RmatConfig::graph500(14, 16, 3)).unwrap();
        let (traffic, cmr) = replay_pdpr(&g, tiny_cache());
        assert!(cmr > 0.5, "cmr {cmr}");
        assert!(
            traffic.region_fraction(Region::Values) > 0.5,
            "values fraction {}",
            traffic.region_fraction(Region::Values)
        );
    }

    #[test]
    fn bvgas_traffic_matches_closed_form() {
        // With zero-fill sums and a bin that fits in cache, the replay
        // must land exactly on Eq. 4 (plus the one-off offsets entry):
        // 2m(di+dv) + n(di + 2dv).
        let g = erdos_renyi(1024, 8192, 9).unwrap();
        let n = u64::from(g.num_nodes());
        let m = g.num_edges();
        let traffic = replay_bvgas(&g, 256, 32, huge_cache());
        let expected = ((n + 1) * DI + m * DI) // offsets + edges
            + n * DV                           // x scan
            + m * DV                           // update writes
            + m * (DI + DV)                    // gather bin scan
            + n * DV; // new PR writeback
        assert_eq!(traffic.total_bytes(), expected);
    }

    #[test]
    fn bvgas_traffic_is_locality_insensitive() {
        // Table 7: BVGAS communicates the same regardless of labeling.
        let g = rmat(&RmatConfig::graph500(11, 8, 5)).unwrap();
        let shuffled = apply_permutation(&g, &random_order(g.num_nodes(), 4)).unwrap();
        let a = replay_bvgas(&g, 512, 32, tiny_cache());
        let b = replay_bvgas(&shuffled, 512, 32, tiny_cache());
        let rel = (a.total_bytes() as f64 - b.total_bytes() as f64).abs() / a.total_bytes() as f64;
        assert!(rel < 0.01, "BVGAS traffic moved {rel:.3} under relabeling");
    }

    #[test]
    fn pcpm_traffic_matches_closed_form_when_partition_fits() {
        // Eq. 5: m(di(1 + 1/r) + 2dv/r) + k²di + 2n·dv.
        let g = erdos_renyi(1024, 8192, 2).unwrap();
        let n = u64::from(g.num_nodes());
        let m = g.num_edges();
        let q = 128u32;
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let traffic = replay_pcpm_png(&g, &png, huge_cache());
        let k = u64::from(png.dst_parts().num_partitions());
        let e_comp = png.num_compressed_edges();
        let expected = k * (k + 1) * DI + e_comp * DI // PNG scan
            + n * DV                                  // cold value reads
            + e_comp * DV                             // update writes
            + m * DI + e_comp * DV                    // gather bin scans
            + n * DV; // new PR writeback
                      // Value reads are line-granular: a 64 B line holding only dangling
                      // nodes is never fetched, so allow a small slack below the model.
        let got = traffic.total_bytes() as f64;
        let want = expected as f64;
        assert!((got - want).abs() / want < 0.01, "{got} vs {want}");
    }

    #[test]
    fn pcpm_beats_bvgas_on_traffic() {
        let g = rmat(&RmatConfig::graph500(12, 16, 8)).unwrap();
        let pcpm = replay_pcpm(&g, 512, tiny_cache());
        let bv = replay_bvgas(&g, 512, 32, tiny_cache());
        assert!(
            pcpm.total_bytes() < bv.total_bytes(),
            "pcpm {} >= bvgas {}",
            pcpm.total_bytes(),
            bv.total_bytes()
        );
    }

    #[test]
    fn pcpm_random_accesses_far_below_bvgas() {
        // §4.1: PCPM_ra = O(k²) vs BVGAS_ra = O(m·dv / l).
        let g = rmat(&RmatConfig::graph500(12, 16, 8)).unwrap();
        let pcpm = replay_pcpm(&g, 1024, huge_cache());
        let bv = replay_bvgas(&g, 1024, 32, huge_cache());
        assert!(
            pcpm.random_accesses * 4 < bv.random_accesses,
            "pcpm {} vs bvgas {}",
            pcpm.random_accesses,
            bv.random_accesses
        );
    }

    #[test]
    fn oversized_partition_thrashes_cache() {
        // Fig. 12: once a partition exceeds the cache, PCPM traffic rises.
        let g = rmat(&RmatConfig::graph500(12, 8, 6)).unwrap();
        let cache = CacheConfig {
            capacity: 4 * 1024,
            line: 64,
            ways: 8,
        };
        // 512-node partitions: 2 KB of values, fits the 4 KB cache.
        let fits = replay_pcpm(&g, 512, cache);
        // Whole graph as one partition: 16 KB of values, 4x the cache.
        let blown = replay_pcpm(&g, g.num_nodes(), cache);
        assert!(
            blown.bytes_per_edge(g.num_edges()) > fits.bytes_per_edge(g.num_edges()),
            "no thrash detected: {} vs {}",
            blown.bytes_per_edge(g.num_edges()),
            fits.bytes_per_edge(g.num_edges())
        );
    }

    #[test]
    fn push_pays_rmw_traffic_on_low_locality_graphs() {
        // Push randomly read-modify-writes the sums: on a skewed graph
        // with a small cache it must move more bytes than PDPR's
        // read-only randomness plus the GAS methods.
        let g = rmat(&RmatConfig::graph500(14, 16, 31)).unwrap();
        let (pdpr, _) = replay_pdpr(&g, tiny_cache());
        let push = replay_push(&g, tiny_cache());
        let pcpm = replay_pcpm(&g, 512, tiny_cache());
        assert!(push.total_bytes() > pdpr.total_bytes());
        assert!(push.total_bytes() > pcpm.total_bytes());
    }

    #[test]
    fn edge_centric_reads_more_structure_than_bvgas() {
        // §2.2: COO streaming reads 2·di per edge vs CSR's amortized di.
        let g = rmat(&RmatConfig::graph500(13, 12, 32)).unwrap();
        let ec = replay_edge_centric(&g, 512, huge_cache());
        let bv = replay_bvgas(&g, 512, 32, huge_cache());
        assert!(
            ec.region_bytes(Region::Edges)
                > bv.region_bytes(Region::Edges) + bv.region_bytes(Region::Offsets)
        );
    }

    #[test]
    fn grid_pays_block_offset_overhead() {
        // §2.2 / Nishtala: many extremely sparse blocks inflate the
        // offset traffic quadratically in k.
        let g = rmat(&RmatConfig::graph500(12, 8, 33)).unwrap();
        let coarse = replay_grid(&g, 2048, huge_cache());
        let fine = replay_grid(&g, 64, huge_cache());
        assert!(
            fine.region_bytes(Region::Offsets) > 4 * coarse.region_bytes(Region::Offsets),
            "fine {} vs coarse {}",
            fine.region_bytes(Region::Offsets),
            coarse.region_bytes(Region::Offsets)
        );
    }

    #[test]
    fn pcpm_beats_grid_on_traffic() {
        let g = rmat(&RmatConfig::graph500(13, 16, 34)).unwrap();
        let grid = replay_grid(&g, 512, tiny_cache());
        let pcpm = replay_pcpm(&g, 512, tiny_cache());
        assert!(pcpm.total_bytes() < grid.total_bytes());
    }

    #[test]
    fn grid_edges_covered_exactly_once() {
        // All m edges must appear in exactly one block: edge-region reads
        // total m·di.
        let g = pcpm_graph::gen::erdos_renyi(500, 4000, 11).unwrap();
        let grid = replay_grid(&g, 64, huge_cache());
        assert_eq!(grid.region_bytes(Region::Edges), g.num_edges() * DI);
    }

    #[test]
    fn pcpm_traffic_improves_with_locality() {
        // Table 7 shape: destroying locality (random relabel) must
        // increase PCPM traffic (lower r).
        let g = pcpm_graph::gen::web_crawl(&pcpm_graph::gen::WebConfig {
            num_nodes: 1 << 12,
            ..Default::default()
        })
        .unwrap();
        let shuffled = apply_permutation(&g, &random_order(g.num_nodes(), 12)).unwrap();
        let local = replay_pcpm(&g, 256, tiny_cache());
        let random = replay_pcpm(&shuffled, 256, tiny_cache());
        assert!(
            local.total_bytes() < random.total_bytes(),
            "locality not exploited: {} vs {}",
            local.total_bytes(),
            random.total_bytes()
        );
    }
}
