//! Property-based validation of the cache model against reference
//! implementations of LRU.

use pcpm_memsim::{Cache, CacheConfig};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference fully-associative LRU over line numbers.
struct RefLru {
    capacity_lines: usize,
    stack: VecDeque<(u64, bool)>, // (line, dirty), front = most recent
}

impl RefLru {
    fn new(capacity_lines: usize) -> Self {
        Self {
            capacity_lines,
            stack: VecDeque::new(),
        }
    }

    /// Returns (miss, writeback).
    fn access(&mut self, line: u64, write: bool) -> (bool, bool) {
        if let Some(pos) = self.stack.iter().position(|&(l, _)| l == line) {
            let (_, dirty) = self.stack.remove(pos).unwrap();
            self.stack.push_front((line, dirty | write));
            (false, false)
        } else {
            let mut wb = false;
            if self.stack.len() == self.capacity_lines {
                let (_, dirty) = self.stack.pop_back().unwrap();
                wb = dirty;
            }
            self.stack.push_front((line, write));
            (true, wb)
        }
    }
}

fn trace_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..4096, any::<bool>()), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fully_associative_cache_equals_reference_lru(trace in trace_strategy()) {
        // One set holding 16 lines: ways == total lines.
        let cfg = CacheConfig { capacity: 16 * 64, line: 64, ways: 16 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefLru::new(16);
        for &(addr, write) in &trace {
            let r = if write { cache.write(addr) } else { cache.read(addr) };
            let (want_miss, want_wb) = reference.access(addr / 64, write);
            prop_assert_eq!(r.miss, want_miss, "addr {}", addr);
            prop_assert_eq!(r.writeback, want_wb, "addr {}", addr);
        }
    }

    #[test]
    fn more_ways_never_more_misses_per_set_count(trace in trace_strategy()) {
        // LRU stack inclusion: with the same set indexing, doubling
        // associativity cannot increase misses on any trace.
        let small = CacheConfig { capacity: 4 * 64 * 2, line: 64, ways: 2 }; // 4 sets x 2
        let big = CacheConfig { capacity: 4 * 64 * 4, line: 64, ways: 4 }; // 4 sets x 4
        assert_eq!(small.num_sets(), big.num_sets());
        let mut a = Cache::new(small);
        let mut b = Cache::new(big);
        for &(addr, write) in &trace {
            if write {
                a.write(addr);
                b.write(addr);
            } else {
                a.read(addr);
                b.read(addr);
            }
        }
        prop_assert!(b.misses() <= a.misses(), "{} > {}", b.misses(), a.misses());
    }

    #[test]
    fn hits_plus_misses_equals_accesses(trace in trace_strategy()) {
        let mut c = Cache::new(CacheConfig { capacity: 1024, line: 64, ways: 4 });
        for &(addr, write) in &trace {
            if write { c.write(addr); } else { c.read(addr); }
        }
        prop_assert_eq!(c.hits() + c.misses(), trace.len() as u64);
    }

    #[test]
    fn write_once_lines_write_back_exactly_once(lines in proptest::collection::btree_set(0u64..512, 1..100)) {
        // Write each distinct line once; after flush, the number of
        // writebacks equals the number of distinct lines.
        let mut c = Cache::new(CacheConfig { capacity: 512, line: 64, ways: 2 });
        for &l in &lines {
            c.write(l * 64);
        }
        c.flush();
        prop_assert_eq!(c.writebacks(), lines.len() as u64);
    }

    #[test]
    fn flush_then_everything_misses(trace in trace_strategy()) {
        let mut c = Cache::new(CacheConfig { capacity: 2048, line: 64, ways: 4 });
        for &(addr, _) in &trace {
            c.read(addr);
        }
        c.flush();
        let misses_before = c.misses();
        // Re-touch the first few addresses: all must miss again.
        for &(addr, _) in trace.iter().take(5) {
            // Dedup within the probe window: a line may repeat in trace.
            let _ = addr;
        }
        let mut seen = std::collections::HashSet::new();
        for &(addr, _) in trace.iter().take(5) {
            if seen.insert(addr / 64) {
                prop_assert!(c.read(addr).miss);
            }
        }
        prop_assert!(c.misses() > misses_before || seen.is_empty());
    }
}
