//! Blocking client for the pcpm-serve protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol is strictly request/reply per connection). Typed
//! error replies from the server surface as [`ServeError::Server`];
//! transport and framing failures as [`ServeError::Io`] /
//! [`ServeError::Protocol`].

use crate::proto::{
    read_frame, send_request, ErrorCode, ProtoError, QueryParams, Request, Response, ServerStats,
    UpdateReply, PROTOCOL_VERSION,
};
use pcpm_core::UpdateBatch;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (connect, read, write).
    Io(io::Error),
    /// The peer sent something that is not a valid reply.
    Protocol(String),
    /// The server answered with a typed error reply.
    Server {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

/// An epoch-tagged rank vector (PageRank or personalized PageRank).
#[derive(Debug, Clone)]
pub struct Ranks {
    /// The serving epoch the answer was computed at.
    pub epoch: u64,
    /// Power iterations actually run.
    pub iterations: u32,
    /// Whether the tolerance (if any) was met before the iteration cap.
    pub converged: bool,
    /// Per-node scores, indexed by node ID.
    pub scores: Vec<f32>,
}

/// A blocking connection to a `pcpm serve` instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving instance.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Connects with a deadline, and bounds every subsequent read and
    /// write by the same `timeout`.
    ///
    /// `TcpStream::connect` alone can hang for the OS default (minutes)
    /// against a black-holed address, and a plain connection blocks
    /// forever on a server that accepts but never replies. With a
    /// timeout, both fail with [`ServeError::Io`]
    /// (`TimedOut`/`WouldBlock`) within the configured deadline.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let mut last_err: Option<io::Error> = None;
        let addrs = addr.to_socket_addrs()?;
        for a in addrs {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(Self { stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ServeError::Io(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// One request/reply round trip; typed error replies become `Err`.
    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        send_request(&mut self.stream, req)?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))?;
        if frame.version != PROTOCOL_VERSION {
            return Err(ServeError::Protocol(format!(
                "server replied with protocol version {} (client speaks {PROTOCOL_VERSION})",
                frame.version
            )));
        }
        match Response::decode(frame.kind, &frame.payload)? {
            Response::Error { code, message } => Err(ServeError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected(resp: &Response) -> ServeError {
        ServeError::Protocol(format!("unexpected reply kind {}", resp.kind()))
    }

    /// Liveness probe: returns `(epoch, engine_count)`.
    pub fn health(&mut self) -> Result<(u64, u16), ServeError> {
        match self.call(&Request::Health)? {
            Response::Health { epoch, engines } => Ok((epoch, engines)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Server metrics: per-kind counters, latency histograms, engine
    /// provenance.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Full PageRank over engine `engine`.
    pub fn pagerank(&mut self, engine: u16, params: &QueryParams) -> Result<Ranks, ServeError> {
        self.ranks(&Request::Pagerank {
            engine,
            params: *params,
        })
    }

    /// Personalized PageRank restricted to `seeds`.
    pub fn personalized_pagerank(
        &mut self,
        engine: u16,
        params: &QueryParams,
        seeds: &[u32],
    ) -> Result<Ranks, ServeError> {
        self.ranks(&Request::Ppr {
            engine,
            params: *params,
            seeds: seeds.to_vec(),
        })
    }

    fn ranks(&mut self, req: &Request) -> Result<Ranks, ServeError> {
        match self.call(req)? {
            Response::Ranks {
                epoch,
                iterations,
                converged,
                scores,
            } => Ok(Ranks {
                epoch,
                iterations,
                converged,
                scores,
            }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// BFS levels from `source`; returns `(epoch, levels)`.
    pub fn bfs(&mut self, engine: u16, source: u32) -> Result<(u64, Vec<u32>), ServeError> {
        match self.call(&Request::Bfs { engine, source })? {
            Response::Levels { epoch, levels } => Ok((epoch, levels)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Shortest-path distances from `source` (weighted engines only);
    /// returns `(epoch, distances)`.
    pub fn sssp(&mut self, engine: u16, source: u32) -> Result<(u64, Vec<f32>), ServeError> {
        match self.call(&Request::Sssp { engine, source })? {
            Response::Distances { epoch, distances } => Ok((epoch, distances)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Applies an update batch through the writer; blocks until the new
    /// epoch is published and returns the [`UpdateReply`].
    pub fn update(&mut self, engine: u16, batch: &UpdateBatch) -> Result<UpdateReply, ServeError> {
        match self.call(&Request::Update {
            engine,
            batch: batch.clone(),
        })? {
            Response::Updated(reply) => Ok(reply),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the server to drain and stop; returns the final epoch.
    pub fn shutdown(&mut self) -> Result<u64, ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck { epoch } => Ok(epoch),
            other => Err(Self::unexpected(&other)),
        }
    }
}
