//! pcpm-serve: a long-lived query dataplane over snapshot-loaded PCPM
//! engines.
//!
//! The offline toolchain builds a `.pcpmc` snapshot once (`pcpm
//! build-cache`); this crate keeps rehydrated engines resident and
//! answers queries over a small length-prefixed TCP protocol, so the
//! O(E) bin-construction cost is paid at load time instead of per
//! request — the serve-side counterpart of the paper's "partition once,
//! iterate many" argument.
//!
//! - [`proto`] — the wire protocol: versioned frames, request/response
//!   codecs, typed error replies, stats structures. The module docs are
//!   the protocol spec.
//! - [`server`] — the dataplane: accept loop, worker pool with
//!   per-epoch engine caches, single writer thread applying
//!   [`pcpm_core::Engine::update`] and publishing new epochs RCU-style.
//! - [`client`] — a blocking client used by `pcpm query`, the tests,
//!   and the benches.
//! - [`metrics`] — lock-free per-request-kind counters and latency
//!   histograms surfaced by the `stats` request.

#![deny(unsafe_code)] // one documented allow: the signal(2) shim in `server`
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, Ranks, ServeError};
pub use metrics::{Metrics, METRIC_FAMILIES};
pub use proto::{
    ErrorCode, QueryParams, QueryStat, Request, Response, ServerStats, SlowQuery, UpdateReply,
    PROTOCOL_VERSION,
};
pub use server::{install_termination_handler, EngineSpec, Server, ServerConfig, ServerHandle};
