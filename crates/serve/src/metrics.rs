//! Lock-free per-request metrics: counters plus a fixed-bucket latency
//! histogram per request kind, snapshotted by the `stats` request.

use crate::proto::{QueryStat, NUM_LATENCY_BUCKETS, NUM_REQUEST_KINDS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One request kind's counters.
struct KindMetrics {
    count: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; NUM_LATENCY_BUCKETS],
}

impl KindMetrics {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Shared server metrics; every handler records into this through an
/// `Arc`, with relaxed atomics (the stats snapshot tolerates torn
/// cross-counter reads — each counter itself is exact).
pub struct Metrics {
    start: Instant,
    kinds: [KindMetrics; NUM_REQUEST_KINDS],
}

impl Metrics {
    /// Fresh metrics starting the uptime clock now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            kinds: std::array::from_fn(|_| KindMetrics::new()),
        }
    }

    /// Records one handled request of `kind` that took `latency`;
    /// `error` marks requests answered with a typed error reply.
    pub fn record(&self, kind: u8, latency: Duration, error: bool) {
        let Some(k) = self.kinds.get(kind as usize) else {
            return;
        };
        k.count.fetch_add(1, Ordering::Relaxed);
        if error {
            k.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket i counts latencies < 2^i us; 64 - leading_zeros gives
        // the index of the first power of two strictly above `us`.
        let idx = (64 - us.leading_zeros() as usize).min(NUM_LATENCY_BUCKETS - 1);
        k.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Snapshot every kind's counters into wire rows.
    pub fn snapshot(&self) -> Vec<QueryStat> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(kind, k)| QueryStat {
                kind: kind as u8,
                count: k.count.load(Ordering::Relaxed),
                errors: k.errors.load(Ordering::Relaxed),
                buckets: std::array::from_fn(|i| k.buckets[i].load(Ordering::Relaxed)),
            })
            .collect()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_bucket() {
        let m = Metrics::new();
        m.record(2, Duration::from_micros(0), false); // < 1 us -> bucket 0
        m.record(2, Duration::from_micros(1), false); // < 2 us -> bucket 1
        m.record(2, Duration::from_micros(7), false); // < 8 us -> bucket 3
        m.record(2, Duration::from_micros(8), true); // < 16 us -> bucket 4
        m.record(2, Duration::from_secs(3600), false); // clamps to last
        let snap = m.snapshot();
        let row = &snap[2];
        assert_eq!(row.count, 5);
        assert_eq!(row.errors, 1);
        assert_eq!(row.buckets[0], 1);
        assert_eq!(row.buckets[1], 1);
        assert_eq!(row.buckets[3], 1);
        assert_eq!(row.buckets[4], 1);
        assert_eq!(row.buckets[NUM_LATENCY_BUCKETS - 1], 1);
        // Unknown kinds are dropped, not panicked on.
        m.record(250, Duration::from_micros(1), false);
    }
}
