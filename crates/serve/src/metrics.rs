//! Lock-free per-request metrics: counters plus a fixed-bucket latency
//! histogram per request kind, snapshotted by the `stats` request and
//! rendered as Prometheus text exposition for `--metrics-addr`.

use crate::proto::{QueryStat, ServerStats, SlowQuery, NUM_LATENCY_BUCKETS, NUM_REQUEST_KINDS};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Capacity of the slow-query ring buffer; the oldest entry is evicted
/// once it is full.
pub const SLOW_QUERY_RING_CAPACITY: usize = 32;

/// Execution-time threshold above which a request is captured in the
/// slow-query ring.
pub const SLOW_QUERY_THRESHOLD: Duration = Duration::from_micros(1000);

/// One request kind's counters.
struct KindMetrics {
    count: AtomicU64,
    errors: AtomicU64,
    exec_us_total: AtomicU64,
    buckets: [AtomicU64; NUM_LATENCY_BUCKETS],
}

impl KindMetrics {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            exec_us_total: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Shared server metrics; every handler records into this through an
/// `Arc`, with relaxed atomics (the stats snapshot tolerates torn
/// cross-counter reads — each counter itself is exact).
pub struct Metrics {
    start: Instant,
    kinds: [KindMetrics; NUM_REQUEST_KINDS],
    /// Total time connections spent queued between accept and dispatch.
    queue_wait_us_total: AtomicU64,
    /// Connections handed from the acceptor to a worker.
    connections_dispatched: AtomicU64,
    /// Connections accepted but not yet picked up by a worker.
    queue_depth: AtomicU64,
    /// Update batches published by the writer thread.
    writer_publishes: AtomicU64,
    /// Total wall-clock the writer spent swapping in new epochs.
    writer_publish_us_total: AtomicU64,
    /// Bounded ring of the slowest recent requests (exec time over
    /// [`SLOW_QUERY_THRESHOLD`]).
    slow: Mutex<VecDeque<SlowQuery>>,
}

impl Metrics {
    /// Fresh metrics starting the uptime clock now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            kinds: std::array::from_fn(|_| KindMetrics::new()),
            queue_wait_us_total: AtomicU64::new(0),
            connections_dispatched: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            writer_publishes: AtomicU64::new(0),
            writer_publish_us_total: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_QUERY_RING_CAPACITY)),
        }
    }

    /// Records one handled request of `kind` whose handler ran for
    /// `exec`; `error` marks requests answered with a typed error reply.
    /// Requests over [`SLOW_QUERY_THRESHOLD`] also land in the
    /// slow-query ring tagged with the serving `epoch`.
    pub fn record(&self, kind: u8, exec: Duration, error: bool, epoch: u64) {
        let Some(k) = self.kinds.get(kind as usize) else {
            return;
        };
        k.count.fetch_add(1, Ordering::Relaxed);
        if error {
            k.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = exec.as_micros().min(u128::from(u64::MAX)) as u64;
        k.exec_us_total.fetch_add(us, Ordering::Relaxed);
        // Bucket i counts latencies < 2^i us; 64 - leading_zeros gives
        // the index of the first power of two strictly above `us`.
        let idx = (64 - us.leading_zeros() as usize).min(NUM_LATENCY_BUCKETS - 1);
        k.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if exec >= SLOW_QUERY_THRESHOLD {
            if let Ok(mut ring) = self.slow.lock() {
                if ring.len() == SLOW_QUERY_RING_CAPACITY {
                    ring.pop_front();
                }
                ring.push_back(SlowQuery {
                    kind,
                    exec_us: us,
                    epoch,
                });
            }
        }
    }

    /// Called by the acceptor when a connection enters the dispatch
    /// queue.
    pub fn connection_queued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Called by a worker when it picks a connection up, with the time
    /// the connection spent waiting in the queue.
    pub fn connection_dispatched(&self, wait: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.connections_dispatched.fetch_add(1, Ordering::Relaxed);
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        self.queue_wait_us_total.fetch_add(us, Ordering::Relaxed);
    }

    /// Called by the writer thread after publishing a new epoch, with
    /// the wall-clock the swap took.
    pub fn writer_published(&self, took: Duration) {
        self.writer_publishes.fetch_add(1, Ordering::Relaxed);
        let us = took.as_micros().min(u128::from(u64::MAX)) as u64;
        self.writer_publish_us_total
            .fetch_add(us, Ordering::Relaxed);
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Snapshot every kind's counters into wire rows.
    pub fn snapshot(&self) -> Vec<QueryStat> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(kind, k)| QueryStat {
                kind: kind as u8,
                count: k.count.load(Ordering::Relaxed),
                errors: k.errors.load(Ordering::Relaxed),
                exec_us_total: k.exec_us_total.load(Ordering::Relaxed),
                buckets: std::array::from_fn(|i| k.buckets[i].load(Ordering::Relaxed)),
            })
            .collect()
    }

    /// Snapshot the queue/writer/slow-query side of the metrics into
    /// the extended [`ServerStats`] fields (everything except `epoch`,
    /// `queries` and `engines`, which the caller owns).
    pub fn fill_stats(&self, stats: &mut ServerStats) {
        stats.uptime = self.uptime();
        stats.queue_wait_us_total = self.queue_wait_us_total.load(Ordering::Relaxed);
        stats.connections_dispatched = self.connections_dispatched.load(Ordering::Relaxed);
        stats.queue_depth = self.queue_depth.load(Ordering::Relaxed);
        stats.writer_publishes = self.writer_publishes.load(Ordering::Relaxed);
        stats.writer_publish_us_total = self.writer_publish_us_total.load(Ordering::Relaxed);
        stats.slow_queries = self
            .slow
            .lock()
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default();
    }

    /// Render the full metric set as Prometheus text exposition
    /// (version 0.0.4). `epoch` is the current serving epoch.
    pub fn render_prometheus(&self, epoch: u64) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(8192);

        out.push_str("# HELP pcpm_requests_total Requests handled, by request kind.\n");
        out.push_str("# TYPE pcpm_requests_total counter\n");
        for q in &snap {
            push_labeled(&mut out, "pcpm_requests_total", q.name(), None, q.count);
        }

        out.push_str("# HELP pcpm_request_errors_total Requests answered with a typed error.\n");
        out.push_str("# TYPE pcpm_request_errors_total counter\n");
        for q in &snap {
            push_labeled(
                &mut out,
                "pcpm_request_errors_total",
                q.name(),
                None,
                q.errors,
            );
        }

        out.push_str(
            "# HELP pcpm_request_latency_seconds Request handler latency, by request kind.\n",
        );
        out.push_str("# TYPE pcpm_request_latency_seconds histogram\n");
        for q in &snap {
            let name = q.name();
            let mut cumulative = 0u64;
            for (i, &b) in q.buckets.iter().enumerate() {
                cumulative += b;
                // Bucket i counts latencies < 2^i us; re-express the
                // upper bound in seconds for the `le` label.
                let le = format!("{:.6}", (1u64 << i) as f64 / 1e6);
                push_labeled(
                    &mut out,
                    "pcpm_request_latency_seconds_bucket",
                    name,
                    Some(&le),
                    cumulative,
                );
            }
            push_labeled(
                &mut out,
                "pcpm_request_latency_seconds_bucket",
                name,
                Some("+Inf"),
                cumulative,
            );
            out.push_str(&format!(
                "pcpm_request_latency_seconds_sum{{kind=\"{}\"}} {:.6}\n",
                name,
                q.exec_us_total as f64 / 1e6
            ));
            push_labeled(
                &mut out,
                "pcpm_request_latency_seconds_count",
                name,
                None,
                q.count,
            );
        }

        out.push_str(
            "# HELP pcpm_queue_wait_seconds_total Total time connections waited between accept and dispatch.\n",
        );
        out.push_str("# TYPE pcpm_queue_wait_seconds_total counter\n");
        out.push_str(&format!(
            "pcpm_queue_wait_seconds_total {:.6}\n",
            self.queue_wait_us_total.load(Ordering::Relaxed) as f64 / 1e6
        ));

        out.push_str(
            "# HELP pcpm_connections_dispatched_total Connections handed from the acceptor to a worker.\n",
        );
        out.push_str("# TYPE pcpm_connections_dispatched_total counter\n");
        out.push_str(&format!(
            "pcpm_connections_dispatched_total {}\n",
            self.connections_dispatched.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP pcpm_queue_depth Connections accepted but not yet dispatched.\n");
        out.push_str("# TYPE pcpm_queue_depth gauge\n");
        out.push_str(&format!(
            "pcpm_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP pcpm_epoch Current serving epoch.\n");
        out.push_str("# TYPE pcpm_epoch gauge\n");
        out.push_str(&format!("pcpm_epoch {epoch}\n"));

        out.push_str(
            "# HELP pcpm_writer_publishes_total Update batches published by the writer thread.\n",
        );
        out.push_str("# TYPE pcpm_writer_publishes_total counter\n");
        out.push_str(&format!(
            "pcpm_writer_publishes_total {}\n",
            self.writer_publishes.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP pcpm_writer_publish_seconds_total Total wall-clock the writer spent swapping in new epochs.\n",
        );
        out.push_str("# TYPE pcpm_writer_publish_seconds_total counter\n");
        out.push_str(&format!(
            "pcpm_writer_publish_seconds_total {:.6}\n",
            self.writer_publish_us_total.load(Ordering::Relaxed) as f64 / 1e6
        ));

        out.push_str("# HELP pcpm_uptime_seconds Time since the server started.\n");
        out.push_str("# TYPE pcpm_uptime_seconds gauge\n");
        out.push_str(&format!(
            "pcpm_uptime_seconds {:.3}\n",
            self.uptime().as_secs_f64()
        ));

        out
    }
}

fn push_labeled(out: &mut String, family: &str, kind: &str, le: Option<&str>, value: u64) {
    match le {
        Some(le) => out.push_str(&format!(
            "{family}{{kind=\"{kind}\",le=\"{le}\"}} {value}\n"
        )),
        None => out.push_str(&format!("{family}{{kind=\"{kind}\"}} {value}\n")),
    }
}

/// The fixed set of metric family names served by the exposition
/// endpoint, for tests and smoke scripts to assert against.
pub const METRIC_FAMILIES: [&str; 10] = [
    "pcpm_requests_total",
    "pcpm_request_errors_total",
    "pcpm_request_latency_seconds",
    "pcpm_queue_wait_seconds_total",
    "pcpm_connections_dispatched_total",
    "pcpm_queue_depth",
    "pcpm_epoch",
    "pcpm_writer_publishes_total",
    "pcpm_writer_publish_seconds_total",
    "pcpm_uptime_seconds",
];

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_bucket() {
        let m = Metrics::new();
        m.record(2, Duration::from_micros(0), false, 0); // < 1 us -> bucket 0
        m.record(2, Duration::from_micros(1), false, 0); // < 2 us -> bucket 1
        m.record(2, Duration::from_micros(7), false, 0); // < 8 us -> bucket 3
        m.record(2, Duration::from_micros(8), true, 0); // < 16 us -> bucket 4
        m.record(2, Duration::from_secs(3600), false, 0); // clamps to last
        let snap = m.snapshot();
        let row = &snap[2];
        assert_eq!(row.count, 5);
        assert_eq!(row.errors, 1);
        assert_eq!(row.buckets[0], 1);
        assert_eq!(row.buckets[1], 1);
        assert_eq!(row.buckets[3], 1);
        assert_eq!(row.buckets[4], 1);
        assert_eq!(row.buckets[NUM_LATENCY_BUCKETS - 1], 1);
        assert_eq!(row.exec_us_total, 16 + 3_600_000_000);
        // Unknown kinds are dropped, not panicked on.
        m.record(250, Duration::from_micros(1), false, 0);
    }

    #[test]
    fn slow_query_ring_is_bounded_and_ordered() {
        let m = Metrics::new();
        // Below threshold: not captured.
        m.record(2, Duration::from_micros(999), false, 1);
        // Overfill the ring; the oldest entries must be evicted.
        for i in 0..(SLOW_QUERY_RING_CAPACITY as u64 + 5) {
            m.record(4, Duration::from_micros(1000 + i), false, i);
        }
        let mut stats = ServerStats::empty();
        m.fill_stats(&mut stats);
        assert_eq!(stats.slow_queries.len(), SLOW_QUERY_RING_CAPACITY);
        // Oldest surviving entry is the 6th recorded one (5 evicted).
        assert_eq!(stats.slow_queries[0].epoch, 5);
        assert_eq!(stats.slow_queries[0].exec_us, 1005);
        let last = stats.slow_queries.last().unwrap();
        assert_eq!(last.kind, 4);
        assert_eq!(last.epoch, SLOW_QUERY_RING_CAPACITY as u64 + 4);
    }

    #[test]
    fn queue_accounting_tracks_depth_and_wait() {
        let m = Metrics::new();
        m.connection_queued();
        m.connection_queued();
        let mut stats = ServerStats::empty();
        m.fill_stats(&mut stats);
        assert_eq!(stats.queue_depth, 2);
        m.connection_dispatched(Duration::from_micros(150));
        m.connection_dispatched(Duration::from_micros(50));
        m.fill_stats(&mut stats);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.connections_dispatched, 2);
        assert_eq!(stats.queue_wait_us_total, 200);
    }

    #[test]
    fn prometheus_exposition_golden() {
        let m = Metrics::new();
        m.record(2, Duration::from_micros(7), false, 0); // pagerank, bucket 3
        m.record(2, Duration::from_micros(3), true, 0); // pagerank error, bucket 2
        m.record(0, Duration::from_micros(0), false, 0); // health, bucket 0
        m.connection_queued();
        m.connection_dispatched(Duration::from_micros(500));
        m.writer_published(Duration::from_micros(2500));
        let text = m.render_prometheus(7);

        // Every family is present with HELP/TYPE headers.
        for family in METRIC_FAMILIES {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "missing TYPE for {family} in:\n{text}"
            );
        }
        // Exact counter lines.
        assert!(text.contains("pcpm_requests_total{kind=\"pagerank\"} 2\n"));
        assert!(text.contains("pcpm_requests_total{kind=\"health\"} 1\n"));
        assert!(text.contains("pcpm_request_errors_total{kind=\"pagerank\"} 1\n"));
        // Histogram buckets are cumulative: bucket le=4us (2^2) sees the
        // 3us request, le=8us (2^3) sees both.
        assert!(text.contains(
            "pcpm_request_latency_seconds_bucket{kind=\"pagerank\",le=\"0.000004\"} 1\n"
        ));
        assert!(text.contains(
            "pcpm_request_latency_seconds_bucket{kind=\"pagerank\",le=\"0.000008\"} 2\n"
        ));
        assert!(
            text.contains("pcpm_request_latency_seconds_bucket{kind=\"pagerank\",le=\"+Inf\"} 2\n")
        );
        assert!(text.contains("pcpm_request_latency_seconds_sum{kind=\"pagerank\"} 0.000010\n"));
        assert!(text.contains("pcpm_request_latency_seconds_count{kind=\"pagerank\"} 2\n"));
        // Gauges and writer counters.
        assert!(text.contains("pcpm_epoch 7\n"));
        assert!(text.contains("pcpm_queue_depth 0\n"));
        assert!(text.contains("pcpm_connections_dispatched_total 1\n"));
        assert!(text.contains("pcpm_queue_wait_seconds_total 0.000500\n"));
        assert!(text.contains("pcpm_writer_publishes_total 1\n"));
        assert!(text.contains("pcpm_writer_publish_seconds_total 0.002500\n"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
    }
}
